/root/repo/target/debug/deps/trap_semantics-aa352cf84f22531d.d: tests/trap_semantics.rs

/root/repo/target/debug/deps/trap_semantics-aa352cf84f22531d: tests/trap_semantics.rs

tests/trap_semantics.rs:
