/root/repo/target/debug/deps/nascent_rangecheck-8e5007b8b5e7793e.d: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_rangecheck-8e5007b8b5e7793e.rmeta: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cig.rs:
crates/core/src/dataflow.rs:
crates/core/src/discharge.rs:
crates/core/src/elim.rs:
crates/core/src/fold.rs:
crates/core/src/inx.rs:
crates/core/src/justify.rs:
crates/core/src/lcm.rs:
crates/core/src/mcm.rs:
crates/core/src/preheader.rs:
crates/core/src/report.rs:
crates/core/src/strength.rs:
crates/core/src/universe.rs:
crates/core/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
