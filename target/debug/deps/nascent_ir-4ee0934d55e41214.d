/root/repo/target/debug/deps/nascent_ir-4ee0934d55e41214.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_ir-4ee0934d55e41214.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/check.rs:
crates/ir/src/expr.rs:
crates/ir/src/linform.rs:
crates/ir/src/pretty.rs:
crates/ir/src/stmt.rs:
crates/ir/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
