/root/repo/target/debug/deps/robustness-b575e2e965e98cd3.d: crates/frontend/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-b575e2e965e98cd3.rmeta: crates/frontend/tests/robustness.rs Cargo.toml

crates/frontend/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
