/root/repo/target/debug/deps/figures-9ebf0134624de120.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9ebf0134624de120: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
