/root/repo/target/debug/deps/table3-208ec9b90e2916c8.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-208ec9b90e2916c8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
