/root/repo/target/debug/deps/nascent_interp-e4eb2e5c90cead4c.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/debug/deps/libnascent_interp-e4eb2e5c90cead4c.rlib: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/debug/deps/libnascent_interp-e4eb2e5c90cead4c.rmeta: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
