/root/repo/target/debug/deps/vra_props-fc7255f433e51d73.d: crates/verify/tests/vra_props.rs

/root/repo/target/debug/deps/vra_props-fc7255f433e51d73: crates/verify/tests/vra_props.rs

crates/verify/tests/vra_props.rs:
