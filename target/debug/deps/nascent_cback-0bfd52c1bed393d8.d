/root/repo/target/debug/deps/nascent_cback-0bfd52c1bed393d8.d: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/debug/deps/nascent_cback-0bfd52c1bed393d8: crates/cback/src/lib.rs crates/cback/src/runner.rs

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
