/root/repo/target/debug/deps/bench_snapshot-f433df35aeab475d.d: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libbench_snapshot-f433df35aeab475d.rmeta: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

crates/bench/src/bin/bench_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
