/root/repo/target/debug/deps/pipeline-4178a1f4e74f851d.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-4178a1f4e74f851d.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
