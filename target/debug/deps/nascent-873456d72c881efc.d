/root/repo/target/debug/deps/nascent-873456d72c881efc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent-873456d72c881efc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
