/root/repo/target/debug/deps/nascentc-ae1887f1d885e836.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-ae1887f1d885e836: src/bin/nascentc.rs

src/bin/nascentc.rs:
