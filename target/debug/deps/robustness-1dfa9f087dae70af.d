/root/repo/target/debug/deps/robustness-1dfa9f087dae70af.d: crates/frontend/tests/robustness.rs

/root/repo/target/debug/deps/robustness-1dfa9f087dae70af: crates/frontend/tests/robustness.rs

crates/frontend/tests/robustness.rs:
