/root/repo/target/debug/deps/context-6ffe2d34ba5ecb69.d: crates/analysis/tests/context.rs Cargo.toml

/root/repo/target/debug/deps/libcontext-6ffe2d34ba5ecb69.rmeta: crates/analysis/tests/context.rs Cargo.toml

crates/analysis/tests/context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
