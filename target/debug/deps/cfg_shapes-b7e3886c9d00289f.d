/root/repo/target/debug/deps/cfg_shapes-b7e3886c9d00289f.d: crates/analysis/tests/cfg_shapes.rs

/root/repo/target/debug/deps/cfg_shapes-b7e3886c9d00289f: crates/analysis/tests/cfg_shapes.rs

crates/analysis/tests/cfg_shapes.rs:
