/root/repo/target/debug/deps/semantics-e5c94aa708c3a301.d: crates/interp/tests/semantics.rs

/root/repo/target/debug/deps/semantics-e5c94aa708c3a301: crates/interp/tests/semantics.rs

crates/interp/tests/semantics.rs:
