/root/repo/target/debug/deps/universe_props-074db6e4af003a1c.d: crates/core/tests/universe_props.rs Cargo.toml

/root/repo/target/debug/deps/libuniverse_props-074db6e4af003a1c.rmeta: crates/core/tests/universe_props.rs Cargo.toml

crates/core/tests/universe_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
