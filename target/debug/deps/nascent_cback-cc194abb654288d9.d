/root/repo/target/debug/deps/nascent_cback-cc194abb654288d9.d: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/debug/deps/libnascent_cback-cc194abb654288d9.rlib: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/debug/deps/libnascent_cback-cc194abb654288d9.rmeta: crates/cback/src/lib.rs crates/cback/src/runner.rs

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
