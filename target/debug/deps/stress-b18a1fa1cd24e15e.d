/root/repo/target/debug/deps/stress-b18a1fa1cd24e15e.d: crates/core/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-b18a1fa1cd24e15e.rmeta: crates/core/tests/stress.rs Cargo.toml

crates/core/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
