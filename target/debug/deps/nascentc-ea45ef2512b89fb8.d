/root/repo/target/debug/deps/nascentc-ea45ef2512b89fb8.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-ea45ef2512b89fb8: src/bin/nascentc.rs

src/bin/nascentc.rs:
