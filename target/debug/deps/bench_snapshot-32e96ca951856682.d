/root/repo/target/debug/deps/bench_snapshot-32e96ca951856682.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-32e96ca951856682: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
