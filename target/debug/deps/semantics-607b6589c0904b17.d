/root/repo/target/debug/deps/semantics-607b6589c0904b17.d: crates/interp/tests/semantics.rs

/root/repo/target/debug/deps/semantics-607b6589c0904b17: crates/interp/tests/semantics.rs

crates/interp/tests/semantics.rs:
