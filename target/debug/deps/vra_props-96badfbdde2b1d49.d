/root/repo/target/debug/deps/vra_props-96badfbdde2b1d49.d: crates/verify/tests/vra_props.rs

/root/repo/target/debug/deps/vra_props-96badfbdde2b1d49: crates/verify/tests/vra_props.rs

crates/verify/tests/vra_props.rs:
