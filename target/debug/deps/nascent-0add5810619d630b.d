/root/repo/target/debug/deps/nascent-0add5810619d630b.d: src/lib.rs

/root/repo/target/debug/deps/libnascent-0add5810619d630b.rlib: src/lib.rs

/root/repo/target/debug/deps/libnascent-0add5810619d630b.rmeta: src/lib.rs

src/lib.rs:
