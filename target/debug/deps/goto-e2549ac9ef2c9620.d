/root/repo/target/debug/deps/goto-e2549ac9ef2c9620.d: crates/frontend/tests/goto.rs

/root/repo/target/debug/deps/goto-e2549ac9ef2c9620: crates/frontend/tests/goto.rs

crates/frontend/tests/goto.rs:
