/root/repo/target/debug/deps/nascent_verify-ed91909b2c70f440.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-ed91909b2c70f440.rlib: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-ed91909b2c70f440.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
