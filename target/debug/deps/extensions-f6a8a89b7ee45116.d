/root/repo/target/debug/deps/extensions-f6a8a89b7ee45116.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-f6a8a89b7ee45116: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
