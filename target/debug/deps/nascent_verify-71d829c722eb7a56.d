/root/repo/target/debug/deps/nascent_verify-71d829c722eb7a56.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/nascent_verify-71d829c722eb7a56: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
