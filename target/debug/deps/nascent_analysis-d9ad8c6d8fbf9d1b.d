/root/repo/target/debug/deps/nascent_analysis-d9ad8c6d8fbf9d1b.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs

/root/repo/target/debug/deps/nascent_analysis-d9ad8c6d8fbf9d1b: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
