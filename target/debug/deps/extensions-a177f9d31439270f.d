/root/repo/target/debug/deps/extensions-a177f9d31439270f.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-a177f9d31439270f: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
