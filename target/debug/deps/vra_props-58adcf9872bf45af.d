/root/repo/target/debug/deps/vra_props-58adcf9872bf45af.d: crates/analysis/tests/vra_props.rs

/root/repo/target/debug/deps/vra_props-58adcf9872bf45af: crates/analysis/tests/vra_props.rs

crates/analysis/tests/vra_props.rs:
