/root/repo/target/debug/deps/nascent_interp-82bd39d5db9d2fa8.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/debug/deps/nascent_interp-82bd39d5db9d2fa8: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
