/root/repo/target/debug/deps/nascent-c04b342611fd180d.d: src/lib.rs

/root/repo/target/debug/deps/nascent-c04b342611fd180d: src/lib.rs

src/lib.rs:
