/root/repo/target/debug/deps/determinism-c641526d542c7294.d: crates/interp/tests/determinism.rs

/root/repo/target/debug/deps/determinism-c641526d542c7294: crates/interp/tests/determinism.rs

crates/interp/tests/determinism.rs:
