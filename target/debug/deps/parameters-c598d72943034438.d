/root/repo/target/debug/deps/parameters-c598d72943034438.d: crates/frontend/tests/parameters.rs Cargo.toml

/root/repo/target/debug/deps/libparameters-c598d72943034438.rmeta: crates/frontend/tests/parameters.rs Cargo.toml

crates/frontend/tests/parameters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
