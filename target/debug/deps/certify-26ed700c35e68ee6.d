/root/repo/target/debug/deps/certify-26ed700c35e68ee6.d: crates/verify/tests/certify.rs Cargo.toml

/root/repo/target/debug/deps/libcertify-26ed700c35e68ee6.rmeta: crates/verify/tests/certify.rs Cargo.toml

crates/verify/tests/certify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
