/root/repo/target/debug/deps/extensions-2646f480764af9b6.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-2646f480764af9b6: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
