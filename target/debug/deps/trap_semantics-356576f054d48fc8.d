/root/repo/target/debug/deps/trap_semantics-356576f054d48fc8.d: tests/trap_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libtrap_semantics-356576f054d48fc8.rmeta: tests/trap_semantics.rs Cargo.toml

tests/trap_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
