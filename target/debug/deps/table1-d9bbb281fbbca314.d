/root/repo/target/debug/deps/table1-d9bbb281fbbca314.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d9bbb281fbbca314: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
