/root/repo/target/debug/deps/trace-2bb8af8d161d2b4d.d: crates/interp/tests/trace.rs

/root/repo/target/debug/deps/trace-2bb8af8d161d2b4d: crates/interp/tests/trace.rs

crates/interp/tests/trace.rs:
