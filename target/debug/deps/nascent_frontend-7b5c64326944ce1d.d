/root/repo/target/debug/deps/nascent_frontend-7b5c64326944ce1d.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/libnascent_frontend-7b5c64326944ce1d.rlib: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/libnascent_frontend-7b5c64326944ce1d.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/error.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
