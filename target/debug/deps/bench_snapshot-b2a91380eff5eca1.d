/root/repo/target/debug/deps/bench_snapshot-b2a91380eff5eca1.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-b2a91380eff5eca1: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
