/root/repo/target/debug/deps/dump_suite-f417508ae3c97d6f.d: crates/bench/src/bin/dump_suite.rs Cargo.toml

/root/repo/target/debug/deps/libdump_suite-f417508ae3c97d6f.rmeta: crates/bench/src/bin/dump_suite.rs Cargo.toml

crates/bench/src/bin/dump_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
