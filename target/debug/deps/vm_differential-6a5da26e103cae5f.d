/root/repo/target/debug/deps/vm_differential-6a5da26e103cae5f.d: crates/interp/tests/vm_differential.rs Cargo.toml

/root/repo/target/debug/deps/libvm_differential-6a5da26e103cae5f.rmeta: crates/interp/tests/vm_differential.rs Cargo.toml

crates/interp/tests/vm_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
