/root/repo/target/debug/deps/table2-4283e5ed33499beb.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-4283e5ed33499beb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
