/root/repo/target/debug/deps/robustness-ba69d397ad9ce799.d: crates/frontend/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-ba69d397ad9ce799.rmeta: crates/frontend/tests/robustness.rs Cargo.toml

crates/frontend/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
