/root/repo/target/debug/deps/nascent_verify-0d34643bb4c2cf36.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/nascent_verify-0d34643bb4c2cf36: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
