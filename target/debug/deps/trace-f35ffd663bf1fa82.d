/root/repo/target/debug/deps/trace-f35ffd663bf1fa82.d: crates/interp/tests/trace.rs

/root/repo/target/debug/deps/trace-f35ffd663bf1fa82: crates/interp/tests/trace.rs

crates/interp/tests/trace.rs:
