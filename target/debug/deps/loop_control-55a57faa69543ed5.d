/root/repo/target/debug/deps/loop_control-55a57faa69543ed5.d: crates/frontend/tests/loop_control.rs

/root/repo/target/debug/deps/loop_control-55a57faa69543ed5: crates/frontend/tests/loop_control.rs

crates/frontend/tests/loop_control.rs:
