/root/repo/target/debug/deps/nascent_bench-745079c350921676.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nascent_bench-745079c350921676: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
