/root/repo/target/debug/deps/figures-06a4f7632f569a69.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-06a4f7632f569a69: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
