/root/repo/target/debug/deps/classic_oracle-f674b22edfc724c2.d: crates/classic/tests/classic_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libclassic_oracle-f674b22edfc724c2.rmeta: crates/classic/tests/classic_oracle.rs Cargo.toml

crates/classic/tests/classic_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
