/root/repo/target/debug/deps/certify-af044c681ea9b519.d: crates/verify/tests/certify.rs

/root/repo/target/debug/deps/certify-af044c681ea9b519: crates/verify/tests/certify.rs

crates/verify/tests/certify.rs:
