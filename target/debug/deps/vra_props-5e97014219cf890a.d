/root/repo/target/debug/deps/vra_props-5e97014219cf890a.d: crates/verify/tests/vra_props.rs Cargo.toml

/root/repo/target/debug/deps/libvra_props-5e97014219cf890a.rmeta: crates/verify/tests/vra_props.rs Cargo.toml

crates/verify/tests/vra_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
