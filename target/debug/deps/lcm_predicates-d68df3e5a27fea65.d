/root/repo/target/debug/deps/lcm_predicates-d68df3e5a27fea65.d: crates/core/tests/lcm_predicates.rs

/root/repo/target/debug/deps/lcm_predicates-d68df3e5a27fea65: crates/core/tests/lcm_predicates.rs

crates/core/tests/lcm_predicates.rs:
