/root/repo/target/debug/deps/context-7e690ed8efe4cd4c.d: crates/analysis/tests/context.rs

/root/repo/target/debug/deps/context-7e690ed8efe4cd4c: crates/analysis/tests/context.rs

crates/analysis/tests/context.rs:
