/root/repo/target/debug/deps/oracle-86a80a0aec8271c8.d: tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-86a80a0aec8271c8.rmeta: tests/oracle.rs Cargo.toml

tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
