/root/repo/target/debug/deps/determinism-1641f7653916a54c.d: crates/interp/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-1641f7653916a54c.rmeta: crates/interp/tests/determinism.rs Cargo.toml

crates/interp/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
