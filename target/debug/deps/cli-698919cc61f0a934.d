/root/repo/target/debug/deps/cli-698919cc61f0a934.d: tests/cli.rs

/root/repo/target/debug/deps/cli-698919cc61f0a934: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_nascentc=/root/repo/target/debug/nascentc
