/root/repo/target/debug/deps/cfg_shapes-41c7ea0eec0a8ea6.d: crates/analysis/tests/cfg_shapes.rs

/root/repo/target/debug/deps/cfg_shapes-41c7ea0eec0a8ea6: crates/analysis/tests/cfg_shapes.rs

crates/analysis/tests/cfg_shapes.rs:
