/root/repo/target/debug/deps/cross_validate-d4adb0e8cf3fab39.d: crates/cback/tests/cross_validate.rs

/root/repo/target/debug/deps/cross_validate-d4adb0e8cf3fab39: crates/cback/tests/cross_validate.rs

crates/cback/tests/cross_validate.rs:
