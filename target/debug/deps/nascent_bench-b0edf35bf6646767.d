/root/repo/target/debug/deps/nascent_bench-b0edf35bf6646767.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-b0edf35bf6646767.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-b0edf35bf6646767.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
