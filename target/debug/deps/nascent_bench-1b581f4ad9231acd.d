/root/repo/target/debug/deps/nascent_bench-1b581f4ad9231acd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nascent_bench-1b581f4ad9231acd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
