/root/repo/target/debug/deps/table3-3b421464f95f9e60.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3b421464f95f9e60: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
