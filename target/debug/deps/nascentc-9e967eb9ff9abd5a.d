/root/repo/target/debug/deps/nascentc-9e967eb9ff9abd5a.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-9e967eb9ff9abd5a: src/bin/nascentc.rs

src/bin/nascentc.rs:
