/root/repo/target/debug/deps/discharge-3742d449fd88f856.d: crates/core/tests/discharge.rs

/root/repo/target/debug/deps/discharge-3742d449fd88f856: crates/core/tests/discharge.rs

crates/core/tests/discharge.rs:
