/root/repo/target/debug/deps/dump_suite-318ff68b62cf80f1.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-318ff68b62cf80f1: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
