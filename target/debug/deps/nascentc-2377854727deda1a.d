/root/repo/target/debug/deps/nascentc-2377854727deda1a.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-2377854727deda1a: src/bin/nascentc.rs

src/bin/nascentc.rs:
