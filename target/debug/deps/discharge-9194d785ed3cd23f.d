/root/repo/target/debug/deps/discharge-9194d785ed3cd23f.d: crates/core/tests/discharge.rs

/root/repo/target/debug/deps/discharge-9194d785ed3cd23f: crates/core/tests/discharge.rs

crates/core/tests/discharge.rs:
