/root/repo/target/debug/deps/dump_suite-56154599f5e974c0.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-56154599f5e974c0: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
