/root/repo/target/debug/deps/nascent_bench-bfa451ccec67bec4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_bench-bfa451ccec67bec4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
