/root/repo/target/debug/deps/figures-0f77839e7411809e.d: tests/figures.rs

/root/repo/target/debug/deps/figures-0f77839e7411809e: tests/figures.rs

tests/figures.rs:
