/root/repo/target/debug/deps/nascent_classic-528df7a5cefcceaf.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_classic-528df7a5cefcceaf.rmeta: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs Cargo.toml

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
