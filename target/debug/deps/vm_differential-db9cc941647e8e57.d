/root/repo/target/debug/deps/vm_differential-db9cc941647e8e57.d: crates/interp/tests/vm_differential.rs

/root/repo/target/debug/deps/vm_differential-db9cc941647e8e57: crates/interp/tests/vm_differential.rs

crates/interp/tests/vm_differential.rs:
