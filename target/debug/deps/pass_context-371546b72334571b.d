/root/repo/target/debug/deps/pass_context-371546b72334571b.d: crates/core/tests/pass_context.rs

/root/repo/target/debug/deps/pass_context-371546b72334571b: crates/core/tests/pass_context.rs

crates/core/tests/pass_context.rs:
