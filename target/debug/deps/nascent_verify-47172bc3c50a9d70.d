/root/repo/target/debug/deps/nascent_verify-47172bc3c50a9d70.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-47172bc3c50a9d70.rlib: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-47172bc3c50a9d70.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
