/root/repo/target/debug/deps/table2-2e7e60a0bade4074.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2e7e60a0bade4074: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
