/root/repo/target/debug/deps/nascent_verify-ec1a38be36efece7.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-ec1a38be36efece7.rlib: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/libnascent_verify-ec1a38be36efece7.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
