/root/repo/target/debug/deps/dump_suite-0cf3fe5e0b0ece23.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-0cf3fe5e0b0ece23: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
