/root/repo/target/debug/deps/extensions-b310cdebd6a5de22.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-b310cdebd6a5de22: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
