/root/repo/target/debug/deps/trace-94b03c0f6d7ee610.d: crates/interp/tests/trace.rs

/root/repo/target/debug/deps/trace-94b03c0f6d7ee610: crates/interp/tests/trace.rs

crates/interp/tests/trace.rs:
