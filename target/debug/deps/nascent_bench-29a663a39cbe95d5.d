/root/repo/target/debug/deps/nascent_bench-29a663a39cbe95d5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nascent_bench-29a663a39cbe95d5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
