/root/repo/target/debug/deps/vm_differential-06ecc2269fd161fd.d: crates/interp/tests/vm_differential.rs

/root/repo/target/debug/deps/vm_differential-06ecc2269fd161fd: crates/interp/tests/vm_differential.rs

crates/interp/tests/vm_differential.rs:
