/root/repo/target/debug/deps/engines-86d7b8528e33d1ed.d: crates/bench/benches/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-86d7b8528e33d1ed.rmeta: crates/bench/benches/engines.rs Cargo.toml

crates/bench/benches/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
