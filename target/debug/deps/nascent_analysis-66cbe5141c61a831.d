/root/repo/target/debug/deps/nascent_analysis-66cbe5141c61a831.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/debug/deps/libnascent_analysis-66cbe5141c61a831.rlib: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/debug/deps/libnascent_analysis-66cbe5141c61a831.rmeta: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
