/root/repo/target/debug/deps/oracle-032c887ee26d0a52.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-032c887ee26d0a52: tests/oracle.rs

tests/oracle.rs:
