/root/repo/target/debug/deps/determinism-870e7f7aacac78c4.d: crates/interp/tests/determinism.rs

/root/repo/target/debug/deps/determinism-870e7f7aacac78c4: crates/interp/tests/determinism.rs

crates/interp/tests/determinism.rs:
