/root/repo/target/debug/deps/pass_context-da937c00d479598a.d: crates/core/tests/pass_context.rs

/root/repo/target/debug/deps/pass_context-da937c00d479598a: crates/core/tests/pass_context.rs

crates/core/tests/pass_context.rs:
