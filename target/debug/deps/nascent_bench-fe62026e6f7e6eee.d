/root/repo/target/debug/deps/nascent_bench-fe62026e6f7e6eee.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-fe62026e6f7e6eee.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-fe62026e6f7e6eee.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
