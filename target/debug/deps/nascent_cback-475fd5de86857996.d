/root/repo/target/debug/deps/nascent_cback-475fd5de86857996.d: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/debug/deps/nascent_cback-475fd5de86857996: crates/cback/src/lib.rs crates/cback/src/runner.rs

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
