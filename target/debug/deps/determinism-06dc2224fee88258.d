/root/repo/target/debug/deps/determinism-06dc2224fee88258.d: crates/interp/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-06dc2224fee88258.rmeta: crates/interp/tests/determinism.rs Cargo.toml

crates/interp/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
