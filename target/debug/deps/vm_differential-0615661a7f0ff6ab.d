/root/repo/target/debug/deps/vm_differential-0615661a7f0ff6ab.d: crates/interp/tests/vm_differential.rs Cargo.toml

/root/repo/target/debug/deps/libvm_differential-0615661a7f0ff6ab.rmeta: crates/interp/tests/vm_differential.rs Cargo.toml

crates/interp/tests/vm_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
