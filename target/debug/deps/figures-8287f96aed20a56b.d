/root/repo/target/debug/deps/figures-8287f96aed20a56b.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-8287f96aed20a56b: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
