/root/repo/target/debug/deps/nascent-c597ab13ddc3320e.d: src/lib.rs

/root/repo/target/debug/deps/libnascent-c597ab13ddc3320e.rlib: src/lib.rs

/root/repo/target/debug/deps/libnascent-c597ab13ddc3320e.rmeta: src/lib.rs

src/lib.rs:
