/root/repo/target/debug/deps/trace-a10f721037d94a84.d: crates/interp/tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-a10f721037d94a84.rmeta: crates/interp/tests/trace.rs Cargo.toml

crates/interp/tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
