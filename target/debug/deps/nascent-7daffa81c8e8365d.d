/root/repo/target/debug/deps/nascent-7daffa81c8e8365d.d: src/lib.rs

/root/repo/target/debug/deps/libnascent-7daffa81c8e8365d.rlib: src/lib.rs

/root/repo/target/debug/deps/libnascent-7daffa81c8e8365d.rmeta: src/lib.rs

src/lib.rs:
