/root/repo/target/debug/deps/bench_snapshot-a74a3dd8ae312e2d.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-a74a3dd8ae312e2d: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
