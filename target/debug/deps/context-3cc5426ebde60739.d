/root/repo/target/debug/deps/context-3cc5426ebde60739.d: crates/analysis/tests/context.rs

/root/repo/target/debug/deps/context-3cc5426ebde60739: crates/analysis/tests/context.rs

crates/analysis/tests/context.rs:
