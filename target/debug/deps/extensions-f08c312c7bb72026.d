/root/repo/target/debug/deps/extensions-f08c312c7bb72026.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-f08c312c7bb72026: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
