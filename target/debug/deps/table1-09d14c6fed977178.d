/root/repo/target/debug/deps/table1-09d14c6fed977178.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-09d14c6fed977178: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
