/root/repo/target/debug/deps/scheme_cost-4e0a767781d427ff.d: crates/bench/benches/scheme_cost.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_cost-4e0a767781d427ff.rmeta: crates/bench/benches/scheme_cost.rs Cargo.toml

crates/bench/benches/scheme_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
