/root/repo/target/debug/deps/nascent_analysis-9614f33d2ff764fa.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/debug/deps/nascent_analysis-9614f33d2ff764fa: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
