/root/repo/target/debug/deps/cfg_shapes-bb613b84057a0963.d: crates/analysis/tests/cfg_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libcfg_shapes-bb613b84057a0963.rmeta: crates/analysis/tests/cfg_shapes.rs Cargo.toml

crates/analysis/tests/cfg_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
