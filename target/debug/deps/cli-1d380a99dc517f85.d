/root/repo/target/debug/deps/cli-1d380a99dc517f85.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-1d380a99dc517f85.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_nascentc=placeholder:nascentc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
