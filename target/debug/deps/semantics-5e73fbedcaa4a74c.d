/root/repo/target/debug/deps/semantics-5e73fbedcaa4a74c.d: crates/interp/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-5e73fbedcaa4a74c.rmeta: crates/interp/tests/semantics.rs Cargo.toml

crates/interp/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
