/root/repo/target/debug/deps/nascent_analysis-c7c2acf6d997e919.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_analysis-c7c2acf6d997e919.rmeta: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
