/root/repo/target/debug/deps/pass_context-08373f64fcebb939.d: crates/core/tests/pass_context.rs Cargo.toml

/root/repo/target/debug/deps/libpass_context-08373f64fcebb939.rmeta: crates/core/tests/pass_context.rs Cargo.toml

crates/core/tests/pass_context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
