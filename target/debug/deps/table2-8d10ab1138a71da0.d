/root/repo/target/debug/deps/table2-8d10ab1138a71da0.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8d10ab1138a71da0: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
