/root/repo/target/debug/deps/table3-251448eff9bb4d43.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-251448eff9bb4d43: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
