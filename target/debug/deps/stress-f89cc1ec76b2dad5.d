/root/repo/target/debug/deps/stress-f89cc1ec76b2dad5.d: crates/core/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-f89cc1ec76b2dad5.rmeta: crates/core/tests/stress.rs Cargo.toml

crates/core/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
