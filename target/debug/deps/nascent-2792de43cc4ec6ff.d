/root/repo/target/debug/deps/nascent-2792de43cc4ec6ff.d: src/lib.rs

/root/repo/target/debug/deps/nascent-2792de43cc4ec6ff: src/lib.rs

src/lib.rs:
