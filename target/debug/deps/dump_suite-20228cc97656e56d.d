/root/repo/target/debug/deps/dump_suite-20228cc97656e56d.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-20228cc97656e56d: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
