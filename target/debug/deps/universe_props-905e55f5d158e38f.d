/root/repo/target/debug/deps/universe_props-905e55f5d158e38f.d: crates/core/tests/universe_props.rs

/root/repo/target/debug/deps/universe_props-905e55f5d158e38f: crates/core/tests/universe_props.rs

crates/core/tests/universe_props.rs:
