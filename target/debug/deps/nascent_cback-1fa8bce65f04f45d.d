/root/repo/target/debug/deps/nascent_cback-1fa8bce65f04f45d.d: crates/cback/src/lib.rs crates/cback/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_cback-1fa8bce65f04f45d.rmeta: crates/cback/src/lib.rs crates/cback/src/runner.rs Cargo.toml

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
