/root/repo/target/debug/deps/figures-ddc1edd309e2f5f3.d: tests/figures.rs

/root/repo/target/debug/deps/figures-ddc1edd309e2f5f3: tests/figures.rs

tests/figures.rs:
