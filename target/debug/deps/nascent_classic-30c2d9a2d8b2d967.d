/root/repo/target/debug/deps/nascent_classic-30c2d9a2d8b2d967.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/libnascent_classic-30c2d9a2d8b2d967.rlib: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/libnascent_classic-30c2d9a2d8b2d967.rmeta: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
