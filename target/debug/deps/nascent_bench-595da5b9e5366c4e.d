/root/repo/target/debug/deps/nascent_bench-595da5b9e5366c4e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-595da5b9e5366c4e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-595da5b9e5366c4e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
