/root/repo/target/debug/deps/parameters-3286f9149426c850.d: crates/frontend/tests/parameters.rs

/root/repo/target/debug/deps/parameters-3286f9149426c850: crates/frontend/tests/parameters.rs

crates/frontend/tests/parameters.rs:
