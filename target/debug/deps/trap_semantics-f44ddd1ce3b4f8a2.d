/root/repo/target/debug/deps/trap_semantics-f44ddd1ce3b4f8a2.d: tests/trap_semantics.rs

/root/repo/target/debug/deps/trap_semantics-f44ddd1ce3b4f8a2: tests/trap_semantics.rs

tests/trap_semantics.rs:
