/root/repo/target/debug/deps/vra_props-ade62c3ce10888dc.d: crates/analysis/tests/vra_props.rs Cargo.toml

/root/repo/target/debug/deps/libvra_props-ade62c3ce10888dc.rmeta: crates/analysis/tests/vra_props.rs Cargo.toml

crates/analysis/tests/vra_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
