/root/repo/target/debug/deps/nascent_interp-fe27f5b3d71a519e.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/debug/deps/nascent_interp-fe27f5b3d71a519e: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
