/root/repo/target/debug/deps/analysis_cache-803d01a10c527bbd.d: crates/bench/benches/analysis_cache.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_cache-803d01a10c527bbd.rmeta: crates/bench/benches/analysis_cache.rs Cargo.toml

crates/bench/benches/analysis_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
