/root/repo/target/debug/deps/figures-3867328e52260a92.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3867328e52260a92: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
