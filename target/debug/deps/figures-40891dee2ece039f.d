/root/repo/target/debug/deps/figures-40891dee2ece039f.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-40891dee2ece039f.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
