/root/repo/target/debug/deps/lcm_predicates-d9d80f0e4d9db013.d: crates/core/tests/lcm_predicates.rs

/root/repo/target/debug/deps/lcm_predicates-d9d80f0e4d9db013: crates/core/tests/lcm_predicates.rs

crates/core/tests/lcm_predicates.rs:
