/root/repo/target/debug/deps/figures-5e4c8c04e050330a.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-5e4c8c04e050330a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
