/root/repo/target/debug/deps/classic_oracle-ab2c463bcab55ecf.d: crates/classic/tests/classic_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libclassic_oracle-ab2c463bcab55ecf.rmeta: crates/classic/tests/classic_oracle.rs Cargo.toml

crates/classic/tests/classic_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
