/root/repo/target/debug/deps/nascent-cf51293407eaad1d.d: src/lib.rs

/root/repo/target/debug/deps/libnascent-cf51293407eaad1d.rlib: src/lib.rs

/root/repo/target/debug/deps/libnascent-cf51293407eaad1d.rmeta: src/lib.rs

src/lib.rs:
