/root/repo/target/debug/deps/trace-63ab0c63285a3d15.d: crates/interp/tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-63ab0c63285a3d15.rmeta: crates/interp/tests/trace.rs Cargo.toml

crates/interp/tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
