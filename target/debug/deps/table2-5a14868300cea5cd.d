/root/repo/target/debug/deps/table2-5a14868300cea5cd.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-5a14868300cea5cd.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
