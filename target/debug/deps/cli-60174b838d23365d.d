/root/repo/target/debug/deps/cli-60174b838d23365d.d: tests/cli.rs

/root/repo/target/debug/deps/cli-60174b838d23365d: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_nascentc=/root/repo/target/debug/nascentc
