/root/repo/target/debug/deps/table3-71f3118672dc0edb.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-71f3118672dc0edb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
