/root/repo/target/debug/deps/certify-02407ec7998b0d93.d: crates/verify/tests/certify.rs

/root/repo/target/debug/deps/certify-02407ec7998b0d93: crates/verify/tests/certify.rs

crates/verify/tests/certify.rs:
