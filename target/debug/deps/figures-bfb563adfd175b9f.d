/root/repo/target/debug/deps/figures-bfb563adfd175b9f.d: tests/figures.rs

/root/repo/target/debug/deps/figures-bfb563adfd175b9f: tests/figures.rs

tests/figures.rs:
