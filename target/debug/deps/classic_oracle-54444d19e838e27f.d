/root/repo/target/debug/deps/classic_oracle-54444d19e838e27f.d: crates/classic/tests/classic_oracle.rs

/root/repo/target/debug/deps/classic_oracle-54444d19e838e27f: crates/classic/tests/classic_oracle.rs

crates/classic/tests/classic_oracle.rs:
