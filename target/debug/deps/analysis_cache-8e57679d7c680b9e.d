/root/repo/target/debug/deps/analysis_cache-8e57679d7c680b9e.d: crates/bench/benches/analysis_cache.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_cache-8e57679d7c680b9e.rmeta: crates/bench/benches/analysis_cache.rs Cargo.toml

crates/bench/benches/analysis_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
