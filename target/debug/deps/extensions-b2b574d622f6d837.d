/root/repo/target/debug/deps/extensions-b2b574d622f6d837.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-b2b574d622f6d837.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
