/root/repo/target/debug/deps/extensions-6010dc834ae57f28.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-6010dc834ae57f28.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
