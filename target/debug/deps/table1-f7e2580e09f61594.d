/root/repo/target/debug/deps/table1-f7e2580e09f61594.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f7e2580e09f61594: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
