/root/repo/target/debug/deps/nascent_classic-daf23ac5bb910426.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/nascent_classic-daf23ac5bb910426: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
