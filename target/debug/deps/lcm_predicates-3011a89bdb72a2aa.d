/root/repo/target/debug/deps/lcm_predicates-3011a89bdb72a2aa.d: crates/core/tests/lcm_predicates.rs Cargo.toml

/root/repo/target/debug/deps/liblcm_predicates-3011a89bdb72a2aa.rmeta: crates/core/tests/lcm_predicates.rs Cargo.toml

crates/core/tests/lcm_predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
