/root/repo/target/debug/deps/context-c6a1e031239213e2.d: crates/analysis/tests/context.rs Cargo.toml

/root/repo/target/debug/deps/libcontext-c6a1e031239213e2.rmeta: crates/analysis/tests/context.rs Cargo.toml

crates/analysis/tests/context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
