/root/repo/target/debug/deps/lcm_predicates-baf63d9481a5637c.d: crates/core/tests/lcm_predicates.rs Cargo.toml

/root/repo/target/debug/deps/liblcm_predicates-baf63d9481a5637c.rmeta: crates/core/tests/lcm_predicates.rs Cargo.toml

crates/core/tests/lcm_predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
