/root/repo/target/debug/deps/bench_snapshot-d24165fa79eecc9a.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-d24165fa79eecc9a: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
