/root/repo/target/debug/deps/trace-b0052ee10d5bd79f.d: crates/interp/tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-b0052ee10d5bd79f.rmeta: crates/interp/tests/trace.rs Cargo.toml

crates/interp/tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
