/root/repo/target/debug/deps/nascent_cback-aaf29f5793b7f71b.d: crates/cback/src/lib.rs crates/cback/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_cback-aaf29f5793b7f71b.rmeta: crates/cback/src/lib.rs crates/cback/src/runner.rs Cargo.toml

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
