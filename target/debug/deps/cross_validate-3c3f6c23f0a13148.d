/root/repo/target/debug/deps/cross_validate-3c3f6c23f0a13148.d: crates/cback/tests/cross_validate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validate-3c3f6c23f0a13148.rmeta: crates/cback/tests/cross_validate.rs Cargo.toml

crates/cback/tests/cross_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
