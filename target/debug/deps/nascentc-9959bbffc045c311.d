/root/repo/target/debug/deps/nascentc-9959bbffc045c311.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-9959bbffc045c311: src/bin/nascentc.rs

src/bin/nascentc.rs:
