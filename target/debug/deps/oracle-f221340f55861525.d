/root/repo/target/debug/deps/oracle-f221340f55861525.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-f221340f55861525: tests/oracle.rs

tests/oracle.rs:
