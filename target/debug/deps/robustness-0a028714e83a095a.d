/root/repo/target/debug/deps/robustness-0a028714e83a095a.d: crates/frontend/tests/robustness.rs

/root/repo/target/debug/deps/robustness-0a028714e83a095a: crates/frontend/tests/robustness.rs

crates/frontend/tests/robustness.rs:
