/root/repo/target/debug/deps/linform_props-7df6d2ab40d243c8.d: crates/ir/tests/linform_props.rs

/root/repo/target/debug/deps/linform_props-7df6d2ab40d243c8: crates/ir/tests/linform_props.rs

crates/ir/tests/linform_props.rs:
