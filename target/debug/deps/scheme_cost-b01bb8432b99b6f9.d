/root/repo/target/debug/deps/scheme_cost-b01bb8432b99b6f9.d: crates/bench/benches/scheme_cost.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_cost-b01bb8432b99b6f9.rmeta: crates/bench/benches/scheme_cost.rs Cargo.toml

crates/bench/benches/scheme_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
