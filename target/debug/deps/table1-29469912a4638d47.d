/root/repo/target/debug/deps/table1-29469912a4638d47.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-29469912a4638d47: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
