/root/repo/target/debug/deps/scratch-2a3c160913b403cf.d: crates/verify/tests/scratch.rs

/root/repo/target/debug/deps/scratch-2a3c160913b403cf: crates/verify/tests/scratch.rs

crates/verify/tests/scratch.rs:
