/root/repo/target/debug/deps/pass_context-10ea8d4ac1e58d93.d: crates/core/tests/pass_context.rs Cargo.toml

/root/repo/target/debug/deps/libpass_context-10ea8d4ac1e58d93.rmeta: crates/core/tests/pass_context.rs Cargo.toml

crates/core/tests/pass_context.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
