/root/repo/target/debug/deps/nascentc-b888493325ac5df0.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-b888493325ac5df0: src/bin/nascentc.rs

src/bin/nascentc.rs:
