/root/repo/target/debug/deps/nascent_suite-867c947b984dd07f.d: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/debug/deps/nascent_suite-867c947b984dd07f: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

crates/suite/src/lib.rs:
crates/suite/src/generator.rs:
crates/suite/src/programs.rs:
