/root/repo/target/debug/deps/stress-06b04f58aab993b2.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/stress-06b04f58aab993b2: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
