/root/repo/target/debug/deps/goto-3a24d9439e42c614.d: crates/frontend/tests/goto.rs Cargo.toml

/root/repo/target/debug/deps/libgoto-3a24d9439e42c614.rmeta: crates/frontend/tests/goto.rs Cargo.toml

crates/frontend/tests/goto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
