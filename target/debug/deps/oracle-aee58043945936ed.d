/root/repo/target/debug/deps/oracle-aee58043945936ed.d: tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-aee58043945936ed.rmeta: tests/oracle.rs Cargo.toml

tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
