/root/repo/target/debug/deps/trap_semantics-60aeade22dc18f5f.d: tests/trap_semantics.rs

/root/repo/target/debug/deps/trap_semantics-60aeade22dc18f5f: tests/trap_semantics.rs

tests/trap_semantics.rs:
