/root/repo/target/debug/deps/table3-b442136527de2064.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b442136527de2064: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
