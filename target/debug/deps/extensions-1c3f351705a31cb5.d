/root/repo/target/debug/deps/extensions-1c3f351705a31cb5.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-1c3f351705a31cb5: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
