/root/repo/target/debug/deps/cross_validate-7877bb95d17d0d4d.d: crates/cback/tests/cross_validate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validate-7877bb95d17d0d4d.rmeta: crates/cback/tests/cross_validate.rs Cargo.toml

crates/cback/tests/cross_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
