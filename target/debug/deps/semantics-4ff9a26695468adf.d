/root/repo/target/debug/deps/semantics-4ff9a26695468adf.d: crates/interp/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-4ff9a26695468adf.rmeta: crates/interp/tests/semantics.rs Cargo.toml

crates/interp/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
