/root/repo/target/debug/deps/nascent_verify-2f9b2d39932b4ba1.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_verify-2f9b2d39932b4ba1.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
