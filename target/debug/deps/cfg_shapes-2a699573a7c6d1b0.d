/root/repo/target/debug/deps/cfg_shapes-2a699573a7c6d1b0.d: crates/analysis/tests/cfg_shapes.rs

/root/repo/target/debug/deps/cfg_shapes-2a699573a7c6d1b0: crates/analysis/tests/cfg_shapes.rs

crates/analysis/tests/cfg_shapes.rs:
