/root/repo/target/debug/deps/dump_suite-1417d63512a491ac.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-1417d63512a491ac: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
