/root/repo/target/debug/deps/nascent_bench-88cc5bb3f2245184.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-88cc5bb3f2245184.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnascent_bench-88cc5bb3f2245184.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
