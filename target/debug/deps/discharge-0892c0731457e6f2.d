/root/repo/target/debug/deps/discharge-0892c0731457e6f2.d: crates/core/tests/discharge.rs Cargo.toml

/root/repo/target/debug/deps/libdischarge-0892c0731457e6f2.rmeta: crates/core/tests/discharge.rs Cargo.toml

crates/core/tests/discharge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
