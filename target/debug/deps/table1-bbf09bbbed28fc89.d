/root/repo/target/debug/deps/table1-bbf09bbbed28fc89.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-bbf09bbbed28fc89: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
