/root/repo/target/debug/deps/table2-6ceb13f9b83b596f.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-6ceb13f9b83b596f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
