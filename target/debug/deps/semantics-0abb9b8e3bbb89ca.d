/root/repo/target/debug/deps/semantics-0abb9b8e3bbb89ca.d: crates/interp/tests/semantics.rs

/root/repo/target/debug/deps/semantics-0abb9b8e3bbb89ca: crates/interp/tests/semantics.rs

crates/interp/tests/semantics.rs:
