/root/repo/target/debug/deps/nascent_bench-ea1812f3c6414223.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_bench-ea1812f3c6414223.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
