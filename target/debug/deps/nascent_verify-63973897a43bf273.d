/root/repo/target/debug/deps/nascent_verify-63973897a43bf273.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/debug/deps/nascent_verify-63973897a43bf273: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
