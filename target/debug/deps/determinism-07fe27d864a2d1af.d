/root/repo/target/debug/deps/determinism-07fe27d864a2d1af.d: crates/interp/tests/determinism.rs

/root/repo/target/debug/deps/determinism-07fe27d864a2d1af: crates/interp/tests/determinism.rs

crates/interp/tests/determinism.rs:
