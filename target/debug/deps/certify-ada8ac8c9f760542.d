/root/repo/target/debug/deps/certify-ada8ac8c9f760542.d: crates/verify/tests/certify.rs

/root/repo/target/debug/deps/certify-ada8ac8c9f760542: crates/verify/tests/certify.rs

crates/verify/tests/certify.rs:
