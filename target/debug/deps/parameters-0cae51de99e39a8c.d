/root/repo/target/debug/deps/parameters-0cae51de99e39a8c.d: crates/frontend/tests/parameters.rs Cargo.toml

/root/repo/target/debug/deps/libparameters-0cae51de99e39a8c.rmeta: crates/frontend/tests/parameters.rs Cargo.toml

crates/frontend/tests/parameters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
