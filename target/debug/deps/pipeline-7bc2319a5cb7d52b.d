/root/repo/target/debug/deps/pipeline-7bc2319a5cb7d52b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-7bc2319a5cb7d52b: tests/pipeline.rs

tests/pipeline.rs:
