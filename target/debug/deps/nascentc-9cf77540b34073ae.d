/root/repo/target/debug/deps/nascentc-9cf77540b34073ae.d: src/bin/nascentc.rs

/root/repo/target/debug/deps/nascentc-9cf77540b34073ae: src/bin/nascentc.rs

src/bin/nascentc.rs:
