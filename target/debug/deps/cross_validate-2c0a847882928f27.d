/root/repo/target/debug/deps/cross_validate-2c0a847882928f27.d: crates/cback/tests/cross_validate.rs

/root/repo/target/debug/deps/cross_validate-2c0a847882928f27: crates/cback/tests/cross_validate.rs

crates/cback/tests/cross_validate.rs:
