/root/repo/target/debug/deps/nascent_interp-c492d5c6f29bee3f.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_interp-c492d5c6f29bee3f.rmeta: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
