/root/repo/target/debug/deps/engines-fcbc3a6effef3e23.d: crates/bench/benches/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-fcbc3a6effef3e23.rmeta: crates/bench/benches/engines.rs Cargo.toml

crates/bench/benches/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
