/root/repo/target/debug/deps/nascent_ir-07306bbb3aafb4c7.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs

/root/repo/target/debug/deps/libnascent_ir-07306bbb3aafb4c7.rlib: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs

/root/repo/target/debug/deps/libnascent_ir-07306bbb3aafb4c7.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/check.rs:
crates/ir/src/expr.rs:
crates/ir/src/linform.rs:
crates/ir/src/pretty.rs:
crates/ir/src/stmt.rs:
crates/ir/src/validate.rs:
