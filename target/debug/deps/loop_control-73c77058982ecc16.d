/root/repo/target/debug/deps/loop_control-73c77058982ecc16.d: crates/frontend/tests/loop_control.rs Cargo.toml

/root/repo/target/debug/deps/libloop_control-73c77058982ecc16.rmeta: crates/frontend/tests/loop_control.rs Cargo.toml

crates/frontend/tests/loop_control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
