/root/repo/target/debug/deps/table2-21f5484f9b7c085d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-21f5484f9b7c085d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
