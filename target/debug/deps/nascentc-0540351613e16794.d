/root/repo/target/debug/deps/nascentc-0540351613e16794.d: src/bin/nascentc.rs Cargo.toml

/root/repo/target/debug/deps/libnascentc-0540351613e16794.rmeta: src/bin/nascentc.rs Cargo.toml

src/bin/nascentc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
