/root/repo/target/debug/deps/nascent_frontend-a70b62e6c4e38956.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_frontend-a70b62e6c4e38956.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs Cargo.toml

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/error.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
