/root/repo/target/debug/deps/cli-1c6891ca0e3600ea.d: tests/cli.rs

/root/repo/target/debug/deps/cli-1c6891ca0e3600ea: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_nascentc=/root/repo/target/debug/nascentc
