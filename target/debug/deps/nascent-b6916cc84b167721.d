/root/repo/target/debug/deps/nascent-b6916cc84b167721.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent-b6916cc84b167721.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
