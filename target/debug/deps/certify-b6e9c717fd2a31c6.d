/root/repo/target/debug/deps/certify-b6e9c717fd2a31c6.d: crates/verify/tests/certify.rs Cargo.toml

/root/repo/target/debug/deps/libcertify-b6e9c717fd2a31c6.rmeta: crates/verify/tests/certify.rs Cargo.toml

crates/verify/tests/certify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
