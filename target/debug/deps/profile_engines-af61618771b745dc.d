/root/repo/target/debug/deps/profile_engines-af61618771b745dc.d: crates/bench/src/bin/profile_engines.rs

/root/repo/target/debug/deps/profile_engines-af61618771b745dc: crates/bench/src/bin/profile_engines.rs

crates/bench/src/bin/profile_engines.rs:
