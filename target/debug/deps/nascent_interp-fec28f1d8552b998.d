/root/repo/target/debug/deps/nascent_interp-fec28f1d8552b998.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_interp-fec28f1d8552b998.rmeta: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
