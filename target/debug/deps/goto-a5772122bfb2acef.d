/root/repo/target/debug/deps/goto-a5772122bfb2acef.d: crates/frontend/tests/goto.rs

/root/repo/target/debug/deps/goto-a5772122bfb2acef: crates/frontend/tests/goto.rs

crates/frontend/tests/goto.rs:
