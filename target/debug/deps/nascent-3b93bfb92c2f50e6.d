/root/repo/target/debug/deps/nascent-3b93bfb92c2f50e6.d: src/lib.rs

/root/repo/target/debug/deps/nascent-3b93bfb92c2f50e6: src/lib.rs

src/lib.rs:
