/root/repo/target/debug/deps/stress-9c1b6196350c4896.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/stress-9c1b6196350c4896: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
