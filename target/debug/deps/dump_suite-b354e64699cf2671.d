/root/repo/target/debug/deps/dump_suite-b354e64699cf2671.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/debug/deps/dump_suite-b354e64699cf2671: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
