/root/repo/target/debug/deps/oracle-683026456f31028a.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-683026456f31028a: tests/oracle.rs

tests/oracle.rs:
