/root/repo/target/debug/deps/pipeline-4b0d02e8b81b1a8f.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-4b0d02e8b81b1a8f: tests/pipeline.rs

tests/pipeline.rs:
