/root/repo/target/debug/deps/nascent_frontend-52dd204b7dbf8e57.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/debug/deps/nascent_frontend-52dd204b7dbf8e57: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/error.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
