/root/repo/target/debug/deps/classic_oracle-7decd446b868250a.d: crates/classic/tests/classic_oracle.rs

/root/repo/target/debug/deps/classic_oracle-7decd446b868250a: crates/classic/tests/classic_oracle.rs

crates/classic/tests/classic_oracle.rs:
