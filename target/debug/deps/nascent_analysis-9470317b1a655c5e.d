/root/repo/target/debug/deps/nascent_analysis-9470317b1a655c5e.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/debug/deps/nascent_analysis-9470317b1a655c5e: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
