/root/repo/target/debug/deps/bench_snapshot-ff82c35d5148d543.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-ff82c35d5148d543: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
