/root/repo/target/debug/deps/nascent_suite-960031d2e527e805.d: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_suite-960031d2e527e805.rmeta: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs Cargo.toml

crates/suite/src/lib.rs:
crates/suite/src/generator.rs:
crates/suite/src/programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
