/root/repo/target/debug/deps/table3-29c37b8b0c64ee20.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-29c37b8b0c64ee20: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
