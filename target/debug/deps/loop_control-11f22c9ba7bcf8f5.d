/root/repo/target/debug/deps/loop_control-11f22c9ba7bcf8f5.d: crates/frontend/tests/loop_control.rs

/root/repo/target/debug/deps/loop_control-11f22c9ba7bcf8f5: crates/frontend/tests/loop_control.rs

crates/frontend/tests/loop_control.rs:
