/root/repo/target/debug/deps/figures-8a134c5ea796e6e1.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-8a134c5ea796e6e1.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
