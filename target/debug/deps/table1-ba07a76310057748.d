/root/repo/target/debug/deps/table1-ba07a76310057748.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ba07a76310057748: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
