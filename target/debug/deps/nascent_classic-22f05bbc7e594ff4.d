/root/repo/target/debug/deps/nascent_classic-22f05bbc7e594ff4.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/libnascent_classic-22f05bbc7e594ff4.rlib: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/libnascent_classic-22f05bbc7e594ff4.rmeta: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
