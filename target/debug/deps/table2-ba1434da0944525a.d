/root/repo/target/debug/deps/table2-ba1434da0944525a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ba1434da0944525a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
