/root/repo/target/debug/deps/nascent-c0de56f5e6b9bccc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent-c0de56f5e6b9bccc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
