/root/repo/target/debug/deps/profile_engines-9a47c75eac343b3e.d: crates/bench/src/bin/profile_engines.rs

/root/repo/target/debug/deps/profile_engines-9a47c75eac343b3e: crates/bench/src/bin/profile_engines.rs

crates/bench/src/bin/profile_engines.rs:
