/root/repo/target/debug/deps/universe_props-7899bfae5c4a8da5.d: crates/core/tests/universe_props.rs

/root/repo/target/debug/deps/universe_props-7899bfae5c4a8da5: crates/core/tests/universe_props.rs

crates/core/tests/universe_props.rs:
