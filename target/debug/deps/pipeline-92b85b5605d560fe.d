/root/repo/target/debug/deps/pipeline-92b85b5605d560fe.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-92b85b5605d560fe.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
