/root/repo/target/debug/deps/figures-50cae9f4ce1e7497.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-50cae9f4ce1e7497: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
