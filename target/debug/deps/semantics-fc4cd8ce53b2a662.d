/root/repo/target/debug/deps/semantics-fc4cd8ce53b2a662.d: crates/interp/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-fc4cd8ce53b2a662.rmeta: crates/interp/tests/semantics.rs Cargo.toml

crates/interp/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
