/root/repo/target/debug/deps/parameters-c3ea8c82804b4a66.d: crates/frontend/tests/parameters.rs

/root/repo/target/debug/deps/parameters-c3ea8c82804b4a66: crates/frontend/tests/parameters.rs

crates/frontend/tests/parameters.rs:
