/root/repo/target/debug/deps/nascent_classic-6cd37fe145064f4c.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/debug/deps/nascent_classic-6cd37fe145064f4c: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
