/root/repo/target/debug/deps/loop_control-f57b7c478db5e3c4.d: crates/frontend/tests/loop_control.rs Cargo.toml

/root/repo/target/debug/deps/libloop_control-f57b7c478db5e3c4.rmeta: crates/frontend/tests/loop_control.rs Cargo.toml

crates/frontend/tests/loop_control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
