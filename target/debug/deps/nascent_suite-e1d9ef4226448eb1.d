/root/repo/target/debug/deps/nascent_suite-e1d9ef4226448eb1.d: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/debug/deps/libnascent_suite-e1d9ef4226448eb1.rlib: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/debug/deps/libnascent_suite-e1d9ef4226448eb1.rmeta: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

crates/suite/src/lib.rs:
crates/suite/src/generator.rs:
crates/suite/src/programs.rs:
