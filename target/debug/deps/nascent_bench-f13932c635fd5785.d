/root/repo/target/debug/deps/nascent_bench-f13932c635fd5785.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent_bench-f13932c635fd5785.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
