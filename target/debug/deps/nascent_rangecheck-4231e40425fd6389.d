/root/repo/target/debug/deps/nascent_rangecheck-4231e40425fd6389.d: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs

/root/repo/target/debug/deps/nascent_rangecheck-4231e40425fd6389: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/cig.rs:
crates/core/src/dataflow.rs:
crates/core/src/discharge.rs:
crates/core/src/elim.rs:
crates/core/src/fold.rs:
crates/core/src/inx.rs:
crates/core/src/justify.rs:
crates/core/src/lcm.rs:
crates/core/src/mcm.rs:
crates/core/src/preheader.rs:
crates/core/src/report.rs:
crates/core/src/strength.rs:
crates/core/src/universe.rs:
crates/core/src/util.rs:
