/root/repo/target/debug/deps/linform_props-5d72c21dec1873ee.d: crates/ir/tests/linform_props.rs Cargo.toml

/root/repo/target/debug/deps/liblinform_props-5d72c21dec1873ee.rmeta: crates/ir/tests/linform_props.rs Cargo.toml

crates/ir/tests/linform_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
