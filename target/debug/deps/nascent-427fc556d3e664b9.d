/root/repo/target/debug/deps/nascent-427fc556d3e664b9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnascent-427fc556d3e664b9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
