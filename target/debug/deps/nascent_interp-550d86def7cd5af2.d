/root/repo/target/debug/deps/nascent_interp-550d86def7cd5af2.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/debug/deps/nascent_interp-550d86def7cd5af2: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
