/root/repo/target/debug/deps/universe_props-5537372693cfbe8b.d: crates/core/tests/universe_props.rs Cargo.toml

/root/repo/target/debug/deps/libuniverse_props-5537372693cfbe8b.rmeta: crates/core/tests/universe_props.rs Cargo.toml

crates/core/tests/universe_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
