/root/repo/target/debug/deps/pipeline-39df83e45ec8419b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-39df83e45ec8419b: tests/pipeline.rs

tests/pipeline.rs:
