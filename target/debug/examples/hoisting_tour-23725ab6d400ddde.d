/root/repo/target/debug/examples/hoisting_tour-23725ab6d400ddde.d: examples/hoisting_tour.rs

/root/repo/target/debug/examples/hoisting_tour-23725ab6d400ddde: examples/hoisting_tour.rs

examples/hoisting_tour.rs:
