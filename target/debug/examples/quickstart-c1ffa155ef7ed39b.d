/root/repo/target/debug/examples/quickstart-c1ffa155ef7ed39b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c1ffa155ef7ed39b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
