/root/repo/target/debug/examples/hoisting_tour-95241f6bb9ab9bef.d: examples/hoisting_tour.rs Cargo.toml

/root/repo/target/debug/examples/libhoisting_tour-95241f6bb9ab9bef.rmeta: examples/hoisting_tour.rs Cargo.toml

examples/hoisting_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
