/root/repo/target/debug/examples/c_backend-70754cc82fcb49f0.d: examples/c_backend.rs Cargo.toml

/root/repo/target/debug/examples/libc_backend-70754cc82fcb49f0.rmeta: examples/c_backend.rs Cargo.toml

examples/c_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
