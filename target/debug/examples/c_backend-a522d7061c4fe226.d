/root/repo/target/debug/examples/c_backend-a522d7061c4fe226.d: examples/c_backend.rs

/root/repo/target/debug/examples/c_backend-a522d7061c4fe226: examples/c_backend.rs

examples/c_backend.rs:
