/root/repo/target/debug/examples/induction_analysis-fc2371761dae0343.d: examples/induction_analysis.rs

/root/repo/target/debug/examples/induction_analysis-fc2371761dae0343: examples/induction_analysis.rs

examples/induction_analysis.rs:
