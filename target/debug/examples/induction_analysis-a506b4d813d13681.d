/root/repo/target/debug/examples/induction_analysis-a506b4d813d13681.d: examples/induction_analysis.rs

/root/repo/target/debug/examples/induction_analysis-a506b4d813d13681: examples/induction_analysis.rs

examples/induction_analysis.rs:
