/root/repo/target/debug/examples/safety_oracle-b911daffb9d53234.d: examples/safety_oracle.rs

/root/repo/target/debug/examples/safety_oracle-b911daffb9d53234: examples/safety_oracle.rs

examples/safety_oracle.rs:
