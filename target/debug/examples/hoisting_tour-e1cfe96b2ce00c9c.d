/root/repo/target/debug/examples/hoisting_tour-e1cfe96b2ce00c9c.d: examples/hoisting_tour.rs Cargo.toml

/root/repo/target/debug/examples/libhoisting_tour-e1cfe96b2ce00c9c.rmeta: examples/hoisting_tour.rs Cargo.toml

examples/hoisting_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
