/root/repo/target/debug/examples/scheme_comparison-65b26eae79c3ab6a.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-65b26eae79c3ab6a: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
