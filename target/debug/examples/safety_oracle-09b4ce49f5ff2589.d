/root/repo/target/debug/examples/safety_oracle-09b4ce49f5ff2589.d: examples/safety_oracle.rs

/root/repo/target/debug/examples/safety_oracle-09b4ce49f5ff2589: examples/safety_oracle.rs

examples/safety_oracle.rs:
