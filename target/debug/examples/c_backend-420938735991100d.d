/root/repo/target/debug/examples/c_backend-420938735991100d.d: examples/c_backend.rs

/root/repo/target/debug/examples/c_backend-420938735991100d: examples/c_backend.rs

examples/c_backend.rs:
