/root/repo/target/debug/examples/scheme_comparison-16b4485c5bd93dd9.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-16b4485c5bd93dd9: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
