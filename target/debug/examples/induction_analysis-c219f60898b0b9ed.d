/root/repo/target/debug/examples/induction_analysis-c219f60898b0b9ed.d: examples/induction_analysis.rs

/root/repo/target/debug/examples/induction_analysis-c219f60898b0b9ed: examples/induction_analysis.rs

examples/induction_analysis.rs:
