/root/repo/target/debug/examples/hoisting_tour-c256ab376f5a2b96.d: examples/hoisting_tour.rs

/root/repo/target/debug/examples/hoisting_tour-c256ab376f5a2b96: examples/hoisting_tour.rs

examples/hoisting_tour.rs:
