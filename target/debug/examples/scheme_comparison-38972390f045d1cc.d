/root/repo/target/debug/examples/scheme_comparison-38972390f045d1cc.d: examples/scheme_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_comparison-38972390f045d1cc.rmeta: examples/scheme_comparison.rs Cargo.toml

examples/scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
