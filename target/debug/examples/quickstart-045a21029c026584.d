/root/repo/target/debug/examples/quickstart-045a21029c026584.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-045a21029c026584: examples/quickstart.rs

examples/quickstart.rs:
