/root/repo/target/debug/examples/safety_oracle-219c0a3000c70042.d: examples/safety_oracle.rs Cargo.toml

/root/repo/target/debug/examples/libsafety_oracle-219c0a3000c70042.rmeta: examples/safety_oracle.rs Cargo.toml

examples/safety_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
