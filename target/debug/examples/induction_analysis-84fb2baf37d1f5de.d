/root/repo/target/debug/examples/induction_analysis-84fb2baf37d1f5de.d: examples/induction_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libinduction_analysis-84fb2baf37d1f5de.rmeta: examples/induction_analysis.rs Cargo.toml

examples/induction_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
