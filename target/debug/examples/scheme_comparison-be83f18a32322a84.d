/root/repo/target/debug/examples/scheme_comparison-be83f18a32322a84.d: examples/scheme_comparison.rs

/root/repo/target/debug/examples/scheme_comparison-be83f18a32322a84: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
