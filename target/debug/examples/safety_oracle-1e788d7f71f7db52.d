/root/repo/target/debug/examples/safety_oracle-1e788d7f71f7db52.d: examples/safety_oracle.rs Cargo.toml

/root/repo/target/debug/examples/libsafety_oracle-1e788d7f71f7db52.rmeta: examples/safety_oracle.rs Cargo.toml

examples/safety_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
