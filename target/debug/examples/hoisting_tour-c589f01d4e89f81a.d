/root/repo/target/debug/examples/hoisting_tour-c589f01d4e89f81a.d: examples/hoisting_tour.rs

/root/repo/target/debug/examples/hoisting_tour-c589f01d4e89f81a: examples/hoisting_tour.rs

examples/hoisting_tour.rs:
