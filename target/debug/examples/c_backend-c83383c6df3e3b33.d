/root/repo/target/debug/examples/c_backend-c83383c6df3e3b33.d: examples/c_backend.rs

/root/repo/target/debug/examples/c_backend-c83383c6df3e3b33: examples/c_backend.rs

examples/c_backend.rs:
