/root/repo/target/debug/examples/safety_oracle-4cd3f02dfdea372d.d: examples/safety_oracle.rs

/root/repo/target/debug/examples/safety_oracle-4cd3f02dfdea372d: examples/safety_oracle.rs

examples/safety_oracle.rs:
