/root/repo/target/debug/examples/quickstart-a8be81c2c9d1a240.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a8be81c2c9d1a240: examples/quickstart.rs

examples/quickstart.rs:
