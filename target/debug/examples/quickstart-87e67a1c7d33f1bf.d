/root/repo/target/debug/examples/quickstart-87e67a1c7d33f1bf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-87e67a1c7d33f1bf: examples/quickstart.rs

examples/quickstart.rs:
