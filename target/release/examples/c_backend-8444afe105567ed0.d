/root/repo/target/release/examples/c_backend-8444afe105567ed0.d: examples/c_backend.rs

/root/repo/target/release/examples/c_backend-8444afe105567ed0: examples/c_backend.rs

examples/c_backend.rs:
