/root/repo/target/release/examples/quickstart-e13f5d2647248b04.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e13f5d2647248b04: examples/quickstart.rs

examples/quickstart.rs:
