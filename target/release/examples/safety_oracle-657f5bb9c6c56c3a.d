/root/repo/target/release/examples/safety_oracle-657f5bb9c6c56c3a.d: examples/safety_oracle.rs

/root/repo/target/release/examples/safety_oracle-657f5bb9c6c56c3a: examples/safety_oracle.rs

examples/safety_oracle.rs:
