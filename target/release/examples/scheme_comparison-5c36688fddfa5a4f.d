/root/repo/target/release/examples/scheme_comparison-5c36688fddfa5a4f.d: examples/scheme_comparison.rs

/root/repo/target/release/examples/scheme_comparison-5c36688fddfa5a4f: examples/scheme_comparison.rs

examples/scheme_comparison.rs:
