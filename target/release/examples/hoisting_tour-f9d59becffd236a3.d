/root/repo/target/release/examples/hoisting_tour-f9d59becffd236a3.d: examples/hoisting_tour.rs

/root/repo/target/release/examples/hoisting_tour-f9d59becffd236a3: examples/hoisting_tour.rs

examples/hoisting_tour.rs:
