/root/repo/target/release/examples/induction_analysis-c239230ab1d0f43c.d: examples/induction_analysis.rs

/root/repo/target/release/examples/induction_analysis-c239230ab1d0f43c: examples/induction_analysis.rs

examples/induction_analysis.rs:
