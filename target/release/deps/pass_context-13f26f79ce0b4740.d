/root/repo/target/release/deps/pass_context-13f26f79ce0b4740.d: crates/core/tests/pass_context.rs

/root/repo/target/release/deps/pass_context-13f26f79ce0b4740: crates/core/tests/pass_context.rs

crates/core/tests/pass_context.rs:
