/root/repo/target/release/deps/figures-32c22f523bdad5ce.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-32c22f523bdad5ce: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
