/root/repo/target/release/deps/pipeline-04141dd038796109.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-04141dd038796109: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
