/root/repo/target/release/deps/dump_suite-2be4fdb2e4bdd040.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/release/deps/dump_suite-2be4fdb2e4bdd040: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
