/root/repo/target/release/deps/extensions-4d640cde186090d3.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-4d640cde186090d3: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
