/root/repo/target/release/deps/nascent_suite-4027f887e3a4783f.d: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/release/deps/libnascent_suite-4027f887e3a4783f.rlib: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/release/deps/libnascent_suite-4027f887e3a4783f.rmeta: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

crates/suite/src/lib.rs:
crates/suite/src/generator.rs:
crates/suite/src/programs.rs:
