/root/repo/target/release/deps/nascentc-6cd511bc9d10ac2d.d: src/bin/nascentc.rs

/root/repo/target/release/deps/nascentc-6cd511bc9d10ac2d: src/bin/nascentc.rs

src/bin/nascentc.rs:
