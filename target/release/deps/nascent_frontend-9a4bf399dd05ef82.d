/root/repo/target/release/deps/nascent_frontend-9a4bf399dd05ef82.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/release/deps/nascent_frontend-9a4bf399dd05ef82: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/error.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
