/root/repo/target/release/deps/nascent_verify-deecff9ea01b5377.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/release/deps/libnascent_verify-deecff9ea01b5377.rlib: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/release/deps/libnascent_verify-deecff9ea01b5377.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
