/root/repo/target/release/deps/bench_snapshot-390f6c72bf6c3312.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-390f6c72bf6c3312: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
