/root/repo/target/release/deps/dump_suite-69d3849f45266312.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/release/deps/dump_suite-69d3849f45266312: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
