/root/repo/target/release/deps/nascent-ac4ce081bcbd42d4.d: src/lib.rs

/root/repo/target/release/deps/nascent-ac4ce081bcbd42d4: src/lib.rs

src/lib.rs:
