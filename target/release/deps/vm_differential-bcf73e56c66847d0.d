/root/repo/target/release/deps/vm_differential-bcf73e56c66847d0.d: crates/interp/tests/vm_differential.rs

/root/repo/target/release/deps/vm_differential-bcf73e56c66847d0: crates/interp/tests/vm_differential.rs

crates/interp/tests/vm_differential.rs:
