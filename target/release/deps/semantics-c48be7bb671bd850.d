/root/repo/target/release/deps/semantics-c48be7bb671bd850.d: crates/interp/tests/semantics.rs

/root/repo/target/release/deps/semantics-c48be7bb671bd850: crates/interp/tests/semantics.rs

crates/interp/tests/semantics.rs:
