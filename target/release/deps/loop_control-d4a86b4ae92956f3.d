/root/repo/target/release/deps/loop_control-d4a86b4ae92956f3.d: crates/frontend/tests/loop_control.rs

/root/repo/target/release/deps/loop_control-d4a86b4ae92956f3: crates/frontend/tests/loop_control.rs

crates/frontend/tests/loop_control.rs:
