/root/repo/target/release/deps/table3-0130bdb2089b40b1.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-0130bdb2089b40b1: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
