/root/repo/target/release/deps/certify-9850aae89620a6c5.d: crates/verify/tests/certify.rs

/root/repo/target/release/deps/certify-9850aae89620a6c5: crates/verify/tests/certify.rs

crates/verify/tests/certify.rs:
