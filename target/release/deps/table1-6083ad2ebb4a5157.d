/root/repo/target/release/deps/table1-6083ad2ebb4a5157.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-6083ad2ebb4a5157: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
