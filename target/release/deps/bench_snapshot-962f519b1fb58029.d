/root/repo/target/release/deps/bench_snapshot-962f519b1fb58029.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-962f519b1fb58029: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
