/root/repo/target/release/deps/scheme_cost-d482616973de871e.d: crates/bench/benches/scheme_cost.rs

/root/repo/target/release/deps/scheme_cost-d482616973de871e: crates/bench/benches/scheme_cost.rs

crates/bench/benches/scheme_cost.rs:
