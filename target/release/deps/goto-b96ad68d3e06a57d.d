/root/repo/target/release/deps/goto-b96ad68d3e06a57d.d: crates/frontend/tests/goto.rs

/root/repo/target/release/deps/goto-b96ad68d3e06a57d: crates/frontend/tests/goto.rs

crates/frontend/tests/goto.rs:
