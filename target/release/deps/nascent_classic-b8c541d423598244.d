/root/repo/target/release/deps/nascent_classic-b8c541d423598244.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/release/deps/nascent_classic-b8c541d423598244: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
