/root/repo/target/release/deps/figures-3ad565515dfea903.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-3ad565515dfea903: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
