/root/repo/target/release/deps/cli-d6c0c5f68b845ec4.d: tests/cli.rs

/root/repo/target/release/deps/cli-d6c0c5f68b845ec4: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_nascentc=/root/repo/target/release/nascentc
