/root/repo/target/release/deps/lcm_predicates-1636f90dc54ce52b.d: crates/core/tests/lcm_predicates.rs

/root/repo/target/release/deps/lcm_predicates-1636f90dc54ce52b: crates/core/tests/lcm_predicates.rs

crates/core/tests/lcm_predicates.rs:
