/root/repo/target/release/deps/nascent_verify-cb11c748826081fd.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/release/deps/nascent_verify-cb11c748826081fd: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
