/root/repo/target/release/deps/cross_validate-4c71f1f6396c6d6e.d: crates/cback/tests/cross_validate.rs

/root/repo/target/release/deps/cross_validate-4c71f1f6396c6d6e: crates/cback/tests/cross_validate.rs

crates/cback/tests/cross_validate.rs:
