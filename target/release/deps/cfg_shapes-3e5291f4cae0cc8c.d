/root/repo/target/release/deps/cfg_shapes-3e5291f4cae0cc8c.d: crates/analysis/tests/cfg_shapes.rs

/root/repo/target/release/deps/cfg_shapes-3e5291f4cae0cc8c: crates/analysis/tests/cfg_shapes.rs

crates/analysis/tests/cfg_shapes.rs:
