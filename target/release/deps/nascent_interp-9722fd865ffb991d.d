/root/repo/target/release/deps/nascent_interp-9722fd865ffb991d.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/release/deps/libnascent_interp-9722fd865ffb991d.rlib: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

/root/repo/target/release/deps/libnascent_interp-9722fd865ffb991d.rmeta: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
