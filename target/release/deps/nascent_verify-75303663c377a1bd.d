/root/repo/target/release/deps/nascent_verify-75303663c377a1bd.d: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/release/deps/libnascent_verify-75303663c377a1bd.rlib: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

/root/repo/target/release/deps/libnascent_verify-75303663c377a1bd.rmeta: crates/verify/src/lib.rs crates/verify/src/vra.rs crates/verify/src/validate.rs

crates/verify/src/lib.rs:
crates/verify/src/vra.rs:
crates/verify/src/validate.rs:
