/root/repo/target/release/deps/analysis_cache-1e9bb2f86bb216f3.d: crates/bench/benches/analysis_cache.rs

/root/repo/target/release/deps/analysis_cache-1e9bb2f86bb216f3: crates/bench/benches/analysis_cache.rs

crates/bench/benches/analysis_cache.rs:
