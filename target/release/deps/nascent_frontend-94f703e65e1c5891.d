/root/repo/target/release/deps/nascent_frontend-94f703e65e1c5891.d: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/release/deps/libnascent_frontend-94f703e65e1c5891.rlib: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

/root/repo/target/release/deps/libnascent_frontend-94f703e65e1c5891.rmeta: crates/frontend/src/lib.rs crates/frontend/src/ast.rs crates/frontend/src/error.rs crates/frontend/src/lexer.rs crates/frontend/src/lower.rs crates/frontend/src/parser.rs

crates/frontend/src/lib.rs:
crates/frontend/src/ast.rs:
crates/frontend/src/error.rs:
crates/frontend/src/lexer.rs:
crates/frontend/src/lower.rs:
crates/frontend/src/parser.rs:
