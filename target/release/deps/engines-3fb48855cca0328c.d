/root/repo/target/release/deps/engines-3fb48855cca0328c.d: crates/bench/benches/engines.rs

/root/repo/target/release/deps/engines-3fb48855cca0328c: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
