/root/repo/target/release/deps/nascent-7922e5f0ef5740fc.d: src/lib.rs

/root/repo/target/release/deps/libnascent-7922e5f0ef5740fc.rlib: src/lib.rs

/root/repo/target/release/deps/libnascent-7922e5f0ef5740fc.rmeta: src/lib.rs

src/lib.rs:
