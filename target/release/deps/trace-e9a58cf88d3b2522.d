/root/repo/target/release/deps/trace-e9a58cf88d3b2522.d: crates/interp/tests/trace.rs

/root/repo/target/release/deps/trace-e9a58cf88d3b2522: crates/interp/tests/trace.rs

crates/interp/tests/trace.rs:
