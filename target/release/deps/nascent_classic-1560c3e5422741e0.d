/root/repo/target/release/deps/nascent_classic-1560c3e5422741e0.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/release/deps/libnascent_classic-1560c3e5422741e0.rlib: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/release/deps/libnascent_classic-1560c3e5422741e0.rmeta: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
