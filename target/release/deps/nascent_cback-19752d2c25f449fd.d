/root/repo/target/release/deps/nascent_cback-19752d2c25f449fd.d: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/release/deps/nascent_cback-19752d2c25f449fd: crates/cback/src/lib.rs crates/cback/src/runner.rs

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
