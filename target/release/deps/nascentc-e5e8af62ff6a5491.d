/root/repo/target/release/deps/nascentc-e5e8af62ff6a5491.d: src/bin/nascentc.rs

/root/repo/target/release/deps/nascentc-e5e8af62ff6a5491: src/bin/nascentc.rs

src/bin/nascentc.rs:
