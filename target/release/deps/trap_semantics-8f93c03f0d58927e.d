/root/repo/target/release/deps/trap_semantics-8f93c03f0d58927e.d: tests/trap_semantics.rs

/root/repo/target/release/deps/trap_semantics-8f93c03f0d58927e: tests/trap_semantics.rs

tests/trap_semantics.rs:
