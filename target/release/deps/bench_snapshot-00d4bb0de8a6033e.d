/root/repo/target/release/deps/bench_snapshot-00d4bb0de8a6033e.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-00d4bb0de8a6033e: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
