/root/repo/target/release/deps/stress-a4575f47038ba636.d: crates/core/tests/stress.rs

/root/repo/target/release/deps/stress-a4575f47038ba636: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
