/root/repo/target/release/deps/oracle-884b0ae854580d29.d: tests/oracle.rs

/root/repo/target/release/deps/oracle-884b0ae854580d29: tests/oracle.rs

tests/oracle.rs:
