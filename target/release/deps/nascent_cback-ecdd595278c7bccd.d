/root/repo/target/release/deps/nascent_cback-ecdd595278c7bccd.d: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/release/deps/libnascent_cback-ecdd595278c7bccd.rlib: crates/cback/src/lib.rs crates/cback/src/runner.rs

/root/repo/target/release/deps/libnascent_cback-ecdd595278c7bccd.rmeta: crates/cback/src/lib.rs crates/cback/src/runner.rs

crates/cback/src/lib.rs:
crates/cback/src/runner.rs:
