/root/repo/target/release/deps/pipeline-10ca7af4a957828b.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-10ca7af4a957828b: tests/pipeline.rs

tests/pipeline.rs:
