/root/repo/target/release/deps/table1-807574549d7babb3.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-807574549d7babb3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
