/root/repo/target/release/deps/nascent_bench-79697fe22afa7526.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnascent_bench-79697fe22afa7526.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnascent_bench-79697fe22afa7526.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
