/root/repo/target/release/deps/nascent_analysis-5fb5f0d750ce1440.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs

/root/repo/target/release/deps/nascent_analysis-5fb5f0d750ce1440: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
