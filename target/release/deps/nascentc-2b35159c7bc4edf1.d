/root/repo/target/release/deps/nascentc-2b35159c7bc4edf1.d: src/bin/nascentc.rs

/root/repo/target/release/deps/nascentc-2b35159c7bc4edf1: src/bin/nascentc.rs

src/bin/nascentc.rs:
