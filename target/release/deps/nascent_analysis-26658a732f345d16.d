/root/repo/target/release/deps/nascent_analysis-26658a732f345d16.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/release/deps/libnascent_analysis-26658a732f345d16.rlib: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/release/deps/libnascent_analysis-26658a732f345d16.rmeta: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
