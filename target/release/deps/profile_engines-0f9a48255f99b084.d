/root/repo/target/release/deps/profile_engines-0f9a48255f99b084.d: crates/bench/src/bin/profile_engines.rs

/root/repo/target/release/deps/profile_engines-0f9a48255f99b084: crates/bench/src/bin/profile_engines.rs

crates/bench/src/bin/profile_engines.rs:
