/root/repo/target/release/deps/analysis_cache-f8e8aa05e4b54e2c.d: crates/bench/benches/analysis_cache.rs

/root/repo/target/release/deps/analysis_cache-f8e8aa05e4b54e2c: crates/bench/benches/analysis_cache.rs

crates/bench/benches/analysis_cache.rs:
