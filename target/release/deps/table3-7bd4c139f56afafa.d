/root/repo/target/release/deps/table3-7bd4c139f56afafa.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7bd4c139f56afafa: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
