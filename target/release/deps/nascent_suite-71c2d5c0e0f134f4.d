/root/repo/target/release/deps/nascent_suite-71c2d5c0e0f134f4.d: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

/root/repo/target/release/deps/nascent_suite-71c2d5c0e0f134f4: crates/suite/src/lib.rs crates/suite/src/generator.rs crates/suite/src/programs.rs

crates/suite/src/lib.rs:
crates/suite/src/generator.rs:
crates/suite/src/programs.rs:
