/root/repo/target/release/deps/nascent_analysis-742dc4f6162de470.d: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/release/deps/libnascent_analysis-742dc4f6162de470.rlib: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

/root/repo/target/release/deps/libnascent_analysis-742dc4f6162de470.rmeta: crates/analysis/src/lib.rs crates/analysis/src/context.rs crates/analysis/src/dataflow.rs crates/analysis/src/dom.rs crates/analysis/src/induction.rs crates/analysis/src/loops.rs crates/analysis/src/reach.rs crates/analysis/src/ssa.rs crates/analysis/src/vra.rs

crates/analysis/src/lib.rs:
crates/analysis/src/context.rs:
crates/analysis/src/dataflow.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/induction.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/reach.rs:
crates/analysis/src/ssa.rs:
crates/analysis/src/vra.rs:
