/root/repo/target/release/deps/dump_suite-0311d8f83d360b05.d: crates/bench/src/bin/dump_suite.rs

/root/repo/target/release/deps/dump_suite-0311d8f83d360b05: crates/bench/src/bin/dump_suite.rs

crates/bench/src/bin/dump_suite.rs:
