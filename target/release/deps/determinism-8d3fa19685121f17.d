/root/repo/target/release/deps/determinism-8d3fa19685121f17.d: crates/interp/tests/determinism.rs

/root/repo/target/release/deps/determinism-8d3fa19685121f17: crates/interp/tests/determinism.rs

crates/interp/tests/determinism.rs:
