/root/repo/target/release/deps/table2-c08d65cc72e1b86d.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c08d65cc72e1b86d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
