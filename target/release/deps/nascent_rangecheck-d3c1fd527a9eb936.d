/root/repo/target/release/deps/nascent_rangecheck-d3c1fd527a9eb936.d: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs

/root/repo/target/release/deps/libnascent_rangecheck-d3c1fd527a9eb936.rlib: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs

/root/repo/target/release/deps/libnascent_rangecheck-d3c1fd527a9eb936.rmeta: crates/core/src/lib.rs crates/core/src/cig.rs crates/core/src/dataflow.rs crates/core/src/discharge.rs crates/core/src/elim.rs crates/core/src/fold.rs crates/core/src/inx.rs crates/core/src/justify.rs crates/core/src/lcm.rs crates/core/src/mcm.rs crates/core/src/preheader.rs crates/core/src/report.rs crates/core/src/strength.rs crates/core/src/universe.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/cig.rs:
crates/core/src/dataflow.rs:
crates/core/src/discharge.rs:
crates/core/src/elim.rs:
crates/core/src/fold.rs:
crates/core/src/inx.rs:
crates/core/src/justify.rs:
crates/core/src/lcm.rs:
crates/core/src/mcm.rs:
crates/core/src/preheader.rs:
crates/core/src/report.rs:
crates/core/src/strength.rs:
crates/core/src/universe.rs:
crates/core/src/util.rs:
