/root/repo/target/release/deps/robustness-1433f28c0fba1032.d: crates/frontend/tests/robustness.rs

/root/repo/target/release/deps/robustness-1433f28c0fba1032: crates/frontend/tests/robustness.rs

crates/frontend/tests/robustness.rs:
