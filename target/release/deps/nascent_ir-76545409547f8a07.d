/root/repo/target/release/deps/nascent_ir-76545409547f8a07.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs

/root/repo/target/release/deps/nascent_ir-76545409547f8a07: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/check.rs crates/ir/src/expr.rs crates/ir/src/linform.rs crates/ir/src/pretty.rs crates/ir/src/stmt.rs crates/ir/src/validate.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/check.rs:
crates/ir/src/expr.rs:
crates/ir/src/linform.rs:
crates/ir/src/pretty.rs:
crates/ir/src/stmt.rs:
crates/ir/src/validate.rs:
