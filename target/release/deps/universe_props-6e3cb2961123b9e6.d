/root/repo/target/release/deps/universe_props-6e3cb2961123b9e6.d: crates/core/tests/universe_props.rs

/root/repo/target/release/deps/universe_props-6e3cb2961123b9e6: crates/core/tests/universe_props.rs

crates/core/tests/universe_props.rs:
