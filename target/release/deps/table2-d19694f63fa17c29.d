/root/repo/target/release/deps/table2-d19694f63fa17c29.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d19694f63fa17c29: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
