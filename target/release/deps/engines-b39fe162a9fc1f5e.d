/root/repo/target/release/deps/engines-b39fe162a9fc1f5e.d: crates/bench/benches/engines.rs

/root/repo/target/release/deps/engines-b39fe162a9fc1f5e: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
