/root/repo/target/release/deps/figures-fa911fa07fffad7c.d: tests/figures.rs

/root/repo/target/release/deps/figures-fa911fa07fffad7c: tests/figures.rs

tests/figures.rs:
