/root/repo/target/release/deps/nascent_interp-f3b311e0b53a82e3.d: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs crates/interp/src/vmstats.rs

/root/repo/target/release/deps/nascent_interp-f3b311e0b53a82e3: crates/interp/src/lib.rs crates/interp/src/bytecode.rs crates/interp/src/machine.rs crates/interp/src/vm.rs crates/interp/src/vmstats.rs

crates/interp/src/lib.rs:
crates/interp/src/bytecode.rs:
crates/interp/src/machine.rs:
crates/interp/src/vm.rs:
crates/interp/src/vmstats.rs:
