/root/repo/target/release/deps/parameters-bec6ce3c3ae2e238.d: crates/frontend/tests/parameters.rs

/root/repo/target/release/deps/parameters-bec6ce3c3ae2e238: crates/frontend/tests/parameters.rs

crates/frontend/tests/parameters.rs:
