/root/repo/target/release/deps/figures-e17b5d8e7c03c590.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-e17b5d8e7c03c590: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
