/root/repo/target/release/deps/table2-6b9b08fb9e5db74c.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-6b9b08fb9e5db74c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
