/root/repo/target/release/deps/classic_oracle-33dadc740f9184ec.d: crates/classic/tests/classic_oracle.rs

/root/repo/target/release/deps/classic_oracle-33dadc740f9184ec: crates/classic/tests/classic_oracle.rs

crates/classic/tests/classic_oracle.rs:
