/root/repo/target/release/deps/table1-3d18f203a6359adc.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3d18f203a6359adc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
