/root/repo/target/release/deps/extensions-1fbb8ccc6ff92125.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-1fbb8ccc6ff92125: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
