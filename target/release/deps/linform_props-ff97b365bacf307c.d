/root/repo/target/release/deps/linform_props-ff97b365bacf307c.d: crates/ir/tests/linform_props.rs

/root/repo/target/release/deps/linform_props-ff97b365bacf307c: crates/ir/tests/linform_props.rs

crates/ir/tests/linform_props.rs:
