/root/repo/target/release/deps/nascent_bench-f255f94489d492ff.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/nascent_bench-f255f94489d492ff: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
