/root/repo/target/release/deps/nascent_classic-5fb5e61915cb448a.d: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/release/deps/libnascent_classic-5fb5e61915cb448a.rlib: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

/root/repo/target/release/deps/libnascent_classic-5fb5e61915cb448a.rmeta: crates/classic/src/lib.rs crates/classic/src/cfg.rs crates/classic/src/dce.rs crates/classic/src/valueprop.rs

crates/classic/src/lib.rs:
crates/classic/src/cfg.rs:
crates/classic/src/dce.rs:
crates/classic/src/valueprop.rs:
