/root/repo/target/release/deps/profile_engines-2761b8b8b0621fe4.d: crates/bench/src/bin/profile_engines.rs

/root/repo/target/release/deps/profile_engines-2761b8b8b0621fe4: crates/bench/src/bin/profile_engines.rs

crates/bench/src/bin/profile_engines.rs:
