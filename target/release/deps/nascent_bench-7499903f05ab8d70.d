/root/repo/target/release/deps/nascent_bench-7499903f05ab8d70.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnascent_bench-7499903f05ab8d70.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnascent_bench-7499903f05ab8d70.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
