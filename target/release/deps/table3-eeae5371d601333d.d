/root/repo/target/release/deps/table3-eeae5371d601333d.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-eeae5371d601333d: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
