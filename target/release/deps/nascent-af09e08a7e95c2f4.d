/root/repo/target/release/deps/nascent-af09e08a7e95c2f4.d: src/lib.rs

/root/repo/target/release/deps/libnascent-af09e08a7e95c2f4.rlib: src/lib.rs

/root/repo/target/release/deps/libnascent-af09e08a7e95c2f4.rmeta: src/lib.rs

src/lib.rs:
