/root/repo/target/release/deps/extensions-4858fa142c1b3fd2.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-4858fa142c1b3fd2: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
