/root/repo/target/release/deps/context-be2d99b12f800139.d: crates/analysis/tests/context.rs

/root/repo/target/release/deps/context-be2d99b12f800139: crates/analysis/tests/context.rs

crates/analysis/tests/context.rs:
