//! Criterion bench of the pass-manager's analysis cache: the cost of the
//! full analysis bundle (dominators, post-dominators, loop forest, SSA,
//! unique defs, induction classes) queried through a shared
//! [`PassContext`] versus recomputed from scratch on every query — the
//! cached/uncached gap the `--timings` hit counters summarize.

use criterion::{criterion_group, criterion_main, Criterion};
use nascent_analysis::context::PassContext;
use nascent_analysis::dom::{Dominators, PostDominators};
use nascent_analysis::induction::classify_function;
use nascent_analysis::loops::LoopForest;
use nascent_analysis::reach::unique_defs;
use nascent_analysis::ssa::Ssa;
use nascent_frontend::compile;
use nascent_suite::{suite, Scale};

/// The query pattern of one optimizer phase: dominators + loop forest +
/// unique defs, then SSA + induction for the INX rewrite.
const QUERIES_PER_RUN: usize = 5;

fn bench_uncached(c: &mut Criterion) {
    let funcs: Vec<_> = suite(Scale::Small)
        .iter()
        .flat_map(|b| compile(&b.source).expect("compiles").functions)
        .collect();
    c.bench_function("analysis_bundle_uncached", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for f in &funcs {
                // each "phase" recomputes everything, as the pre-refactor
                // passes did
                for _ in 0..QUERIES_PER_RUN {
                    let dom = Dominators::compute(f);
                    let pdom = PostDominators::compute(f);
                    let forest = LoopForest::compute_with(f, &dom);
                    let ssa = Ssa::compute(f, &dom);
                    let udefs = unique_defs(f);
                    let classes = classify_function(f, &ssa, &forest);
                    total += usize::from(pdom.ipdom(f.entry).is_some())
                        + forest.loops.len()
                        + udefs.len()
                        + classes.len();
                }
            }
            total
        });
    });
}

fn bench_cached(c: &mut Criterion) {
    let funcs: Vec<_> = suite(Scale::Small)
        .iter()
        .flat_map(|b| compile(&b.source).expect("compiles").functions)
        .collect();
    c.bench_function("analysis_bundle_cached", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for f in &funcs {
                let mut ctx = PassContext::new();
                for _ in 0..QUERIES_PER_RUN {
                    let pdom = ctx.post_dominators(f);
                    let forest = ctx.loop_forest(f);
                    let udefs = ctx.unique_defs(f);
                    let classes = ctx.induction(f);
                    total += usize::from(pdom.ipdom(f.entry).is_some())
                        + forest.loops.len()
                        + udefs.len()
                        + classes.len();
                }
            }
            total
        });
    });
}

criterion_group!(benches, bench_uncached, bench_cached);
criterion_main!(benches);
