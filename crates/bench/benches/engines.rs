//! Criterion bench: tree-walking interpreter vs register-bytecode VM on
//! the benchmark suite (naive, fully checked programs — the exact runs the
//! measurement harness performs for every matrix cell).
//!
//! `vm/<name>` excludes lowering (the harness lowers once per prepared
//! benchmark); `vm_lower/<name>` includes it, which is what a cold cell
//! pays. `suite/*` runs all ten programs back to back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nascent_bench::{harness_limits, prepare, PreparedBenchmark};
use nascent_interp::{lower, run, run_compiled};
use nascent_suite::{suite, Scale};

fn prepared() -> Vec<PreparedBenchmark> {
    suite(Scale::Small).iter().map(prepare).collect()
}

fn bench_per_program(c: &mut Criterion) {
    let prepared = prepared();
    let limits = harness_limits();
    let mut g = c.benchmark_group("engine");
    for pb in &prepared {
        g.bench_with_input(BenchmarkId::new("tree", pb.bench.name), pb, |b, pb| {
            b.iter(|| run(&pb.checked, &limits).expect("runs"))
        });
        g.bench_with_input(BenchmarkId::new("vm", pb.bench.name), pb, |b, pb| {
            b.iter(|| run_compiled(&pb.lowered, &limits).expect("runs"))
        });
        g.bench_with_input(BenchmarkId::new("vm_lower", pb.bench.name), pb, |b, pb| {
            b.iter(|| run_compiled(&lower(&pb.checked), &limits).expect("runs"))
        });
    }
    g.finish();
}

fn bench_whole_suite(c: &mut Criterion) {
    let prepared = prepared();
    let limits = harness_limits();
    let mut g = c.benchmark_group("suite");
    g.bench_function("tree", |b| {
        b.iter(|| {
            let mut checks = 0u64;
            for pb in &prepared {
                checks += run(&pb.checked, &limits).expect("runs").dynamic_checks;
            }
            checks
        });
    });
    g.bench_function("vm", |b| {
        b.iter(|| {
            let mut checks = 0u64;
            for pb in &prepared {
                checks += run_compiled(&pb.lowered, &limits)
                    .expect("runs")
                    .dynamic_checks;
            }
            checks
        });
    });
    g.finish();
}

criterion_group!(benches, bench_per_program, bench_whole_suite);
criterion_main!(benches);
