//! Criterion benches of the supporting pipeline: frontend compilation,
//! the analyses (dominators, loops, SSA), the check-universe build, and
//! instrumented execution — the substrate costs behind the paper's
//! "Nascent" compile-time column.

use criterion::{criterion_group, criterion_main, Criterion};
use nascent_analysis::dom::Dominators;
use nascent_analysis::loops::LoopForest;
use nascent_analysis::ssa::Ssa;
use nascent_frontend::compile;
use nascent_interp::{run, Limits};
use nascent_rangecheck::{universe::Universe, ImplicationMode};
use nascent_suite::{suite, Scale};

fn bench_frontend(c: &mut Criterion) {
    let benches = suite(Scale::Small);
    c.bench_function("compile_suite", |b| {
        b.iter(|| {
            let mut checks = 0usize;
            for bench in &benches {
                checks += compile(&bench.source).expect("compiles").check_count();
            }
            checks
        });
    });
}

fn bench_analyses(c: &mut Criterion) {
    let benches = suite(Scale::Small);
    let funcs: Vec<_> = benches
        .iter()
        .flat_map(|b| compile(&b.source).expect("compiles").functions)
        .collect();
    c.bench_function("dominators_suite", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|f| Dominators::compute(f).rpo().len())
                .sum::<usize>()
        });
    });
    c.bench_function("loop_forest_suite", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|f| LoopForest::compute(f).loops.len())
                .sum::<usize>()
        });
    });
    c.bench_function("ssa_suite", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|f| {
                    let dom = Dominators::compute(f);
                    Ssa::compute(f, &dom).defs.len()
                })
                .sum::<usize>()
        });
    });
    c.bench_function("universe_suite", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|f| Universe::build(f, ImplicationMode::All).len())
                .sum::<usize>()
        });
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let b0 = &suite(Scale::Small)[0];
    let prog = compile(&b0.source).expect("compiles");
    let limits = Limits::default();
    c.bench_function("interpret_vortex_small", |b| {
        b.iter(|| run(&prog, &limits).expect("runs").dynamic_instructions);
    });
}

criterion_group!(benches, bench_frontend, bench_analyses, bench_interpreter);
criterion_main!(benches);
