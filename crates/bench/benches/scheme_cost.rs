//! Criterion measurement of the range-check optimizer's compile-time cost
//! per placement scheme — the analog of the paper's "Range" column in
//! Tables 2 and 3 (relative ordering is the claim: NI fastest, preheader
//! schemes moderate, PRE-based schemes slowest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nascent_frontend::compile;
use nascent_rangecheck::{optimize_program, CheckKind, ImplicationMode, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn bench_schemes(c: &mut Criterion) {
    let benches = suite(Scale::Small);
    let compiled: Vec<_> = benches
        .iter()
        .map(|b| (b.name, compile(&b.source).expect("compiles")))
        .collect();
    let mut group = c.benchmark_group("optimize_suite");
    for scheme in Scheme::EACH {
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.name()),
            &scheme,
            |bch, &scheme| {
                let opts = OptimizeOptions::scheme(scheme);
                bch.iter(|| {
                    let mut total = 0usize;
                    for (_, prog) in &compiled {
                        let mut p = prog.clone();
                        let stats = optimize_program(&mut p, &opts);
                        total += stats.static_after;
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

fn bench_kinds_and_modes(c: &mut Criterion) {
    let benches = suite(Scale::Small);
    let compiled: Vec<_> = benches
        .iter()
        .map(|b| compile(&b.source).expect("compiles"))
        .collect();
    let mut group = c.benchmark_group("optimize_variants");
    let cases = [
        ("LLS-PRX-all", OptimizeOptions::scheme(Scheme::Lls)),
        (
            "LLS-INX-all",
            OptimizeOptions::scheme(Scheme::Lls).with_kind(CheckKind::Inx),
        ),
        (
            "NI-PRX-none",
            OptimizeOptions::scheme(Scheme::Ni).with_implications(ImplicationMode::None),
        ),
        (
            "SE-PRX-none",
            OptimizeOptions::scheme(Scheme::Se).with_implications(ImplicationMode::None),
        ),
    ];
    for (label, opts) in cases {
        group.bench_function(label, |bch| {
            bch.iter(|| {
                let mut total = 0usize;
                for prog in &compiled {
                    let mut p = prog.clone();
                    total += optimize_program(&mut p, &opts).static_after;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_kinds_and_modes);
criterion_main!(benches);
