//! Regenerates the paper's **Table 2**: percentage of dynamic checks
//! eliminated by the seven placement schemes × {PRX, INX} check kinds,
//! plus the time spent in the range-check optimizer ("Range") and the
//! total compile time ("Nascent") over the whole suite.
//!
//! Run with `cargo run --release -p nascent-bench --bin table2`.
//! Pass `--small` for the test-scale suite.

use std::time::Duration;

use nascent_bench::{certify_benchmark, evaluate, format_table, naive_run, table2_configs};
use nascent_rangecheck::{CheckKind, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let benches = suite(scale);
    let naives: Vec<_> = benches.iter().map(naive_run).collect();

    let mut headers: Vec<String> = vec!["".into(), "scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("Range(ms)".into());
    headers.push("Nascent(ms)".into());

    let mut rows = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        let kind_label = match kind {
            CheckKind::Prx => "PRX",
            CheckKind::Inx => "INX",
        };
        for cfg in table2_configs(kind) {
            let mut row = vec![kind_label.to_string(), cfg.label.to_string()];
            let mut range = Duration::ZERO;
            let mut total = Duration::ZERO;
            for (b, naive) in benches.iter().zip(&naives) {
                let r = evaluate(b, naive, &cfg.opts);
                range += r.optimize_time;
                total += r.total_time;
                row.push(format!("{:.2}", r.percent_eliminated));
            }
            row.push(format!("{:.1}", range.as_secs_f64() * 1e3));
            row.push(format!("{:.1}", total.as_secs_f64() * 1e3));
            rows.push(row);
        }
    }
    println!(
        "Table 2: percentage of dynamic checks eliminated by optimizations\nand time required for compilation (all {} programs)\n",
        benches.len()
    );
    println!("{}", format_table(&headers, &rows));
    println!("NI = no insertion, CS = check strengthening, LNI = latest placement,");
    println!("SE = safe-earliest, LI = preheader (invariant), LLS = preheader with");
    println!("loop-limit substitution, ALL = LLS followed by SE.");

    // Extension over the paper: the certifier's value-range analysis
    // proves a fraction of the static checks always-true before any
    // placement runs; every table row above was also re-validated here.
    let cert_headers: Vec<String> = ["program", "checks-st", "disch-st", "disch-%"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut cert_rows = Vec::new();
    for b in &benches {
        let cert = certify_benchmark(b, &OptimizeOptions::scheme(Scheme::Ni));
        let total = nascent_frontend::compile(&b.source)
            .expect("benchmark compiles")
            .check_count();
        cert_rows.push(vec![
            b.name.to_string(),
            total.to_string(),
            cert.vra_discharged.to_string(),
            format!(
                "{:.1}",
                100.0 * cert.vra_discharged as f64 / total.max(1) as f64
            ),
        ]);
    }
    println!("\nStatically discharged checks (certifier value-range analysis):\n");
    println!("{}", format_table(&cert_headers, &cert_rows));
}
