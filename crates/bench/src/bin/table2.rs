//! Regenerates the paper's **Table 2**: percentage of dynamic checks
//! eliminated by the seven placement schemes × {PRX, INX} check kinds,
//! plus the time spent in the range-check optimizer ("Range") and the
//! total compile time ("Nascent") over the whole suite.
//!
//! Run with `cargo run --release -p nascent-bench --bin table2`.
//!
//! * `--small` — the test-scale suite,
//! * `--timings` — per-analysis/per-pass wall-time decomposition plus
//!   the parallel-harness accounting (stable `timings-format 1` block),
//! * `--certify` — re-validate the **full** scheme × kind ×
//!   implication-mode matrix with the static certifier,
//! * `--discharge on|off` — run the static-discharge tier before every
//!   scheme; the table gains a discharge-rate section and `--certify`
//!   additionally re-proves every logged deletion.
//!
//! Each benchmark is compiled and its naive baseline run exactly once;
//! the configuration × program matrix is then fanned out across worker
//! threads ([`nascent_bench::run_matrix`]).

use std::time::Duration;

use nascent_bench::{
    certify_prepared, format_table, full_matrix_configs, prepare, run_matrix, table2_configs,
    Config,
};
use nascent_rangecheck::{CheckKind, Discharge, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let timings = args.iter().any(|a| a == "--timings");
    let certify = args.iter().any(|a| a == "--certify");
    let discharge = match args.iter().position(|a| a == "--discharge") {
        None => Discharge::Off,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("on") => Discharge::On,
            Some("off") => Discharge::Off,
            other => {
                eprintln!("table2: --discharge needs `on` or `off`, got {other:?}");
                std::process::exit(2);
            }
        },
    };
    let benches = suite(scale);
    let prepared: Vec<_> = benches.iter().map(prepare).collect();

    // one flattened kind × scheme configuration list; row order matches
    // the old serial nested loop
    let mut kind_labels: Vec<&'static str> = Vec::new();
    let mut configs: Vec<Config> = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        for mut cfg in table2_configs(kind) {
            kind_labels.push(match kind {
                CheckKind::Prx => "PRX",
                CheckKind::Inx => "INX",
            });
            cfg.opts = cfg.opts.with_discharge(discharge);
            configs.push(cfg);
        }
    }
    let report = run_matrix(&prepared, &configs, false);

    let mut headers: Vec<String> = vec!["".into(), "scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("Range(ms)".into());
    headers.push("Nascent(ms)".into());

    let mut rows = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        let mut row = vec![kind_labels[ci].to_string(), cfg.label.to_string()];
        let mut range = Duration::ZERO;
        let mut total = Duration::ZERO;
        for bi in 0..prepared.len() {
            let r = &report.cell(ci, bi).result;
            range += r.optimize_time;
            total += r.total_time;
            row.push(format!("{:.2}", r.percent_eliminated));
        }
        row.push(format!("{:.1}", range.as_secs_f64() * 1e3));
        row.push(format!("{:.1}", total.as_secs_f64() * 1e3));
        rows.push(row);
    }
    println!(
        "Table 2: percentage of dynamic checks eliminated by optimizations\nand time required for compilation (all {} programs)\n",
        benches.len()
    );
    println!("{}", format_table(&headers, &rows));
    println!("NI = no insertion, CS = check strengthening, LNI = latest placement,");
    println!("SE = safe-earliest, LI = preheader (invariant), LLS = preheader with");
    println!("loop-limit substitution, ALL = LLS followed by SE.");

    if timings {
        println!("\nPer-pass timing decomposition (all cells, merged):\n");
        print!("{}", report.timings_report());
    }

    if discharge == Discharge::On {
        // Static-discharge rate per table row: checks the value-range
        // tier deleted outright, as a fraction of the naive placement.
        let disch_headers: Vec<String> = ["", "scheme", "static", "discharged", "rate-%"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut disch_rows = Vec::new();
        for (ci, cfg) in configs.iter().enumerate() {
            let mut static_before = 0usize;
            let mut discharged = 0usize;
            for bi in 0..prepared.len() {
                let s = &report.cell(ci, bi).result.stats;
                static_before += s.static_before;
                discharged += s.discharged;
            }
            disch_rows.push(vec![
                kind_labels[ci].to_string(),
                cfg.label.to_string(),
                static_before.to_string(),
                discharged.to_string(),
                format!(
                    "{:.1}",
                    100.0 * discharged as f64 / static_before.max(1) as f64
                ),
            ]);
        }
        println!("\nStatic-discharge rate (optimizer value-range tier, per scheme):\n");
        println!("{}", format_table(&disch_headers, &disch_rows));
    }

    if certify {
        let full: Vec<Config> = full_matrix_configs()
            .into_iter()
            .map(|mut cfg| {
                cfg.opts = cfg.opts.with_discharge(discharge);
                cfg
            })
            .collect();
        let cert_report = run_matrix(&prepared, &full, true);
        let mut obligations = 0usize;
        let mut failed = 0usize;
        let mut discharge_events = 0usize;
        let mut discharge_rejected = 0usize;
        for cell in &cert_report.cells {
            let cert = cell.certificate.as_ref().expect("certified cell");
            obligations += cert.obligations;
            failed += cert.diagnostics.len();
            discharge_events += cert.discharge_events;
            discharge_rejected += cert.discharge_rejected;
        }
        println!(
            "\nFull-matrix certification: {} configs x {} programs = {} cells, {} obligations, {} uncovered",
            full.len(),
            prepared.len(),
            cert_report.cells.len(),
            obligations,
            failed
        );
        if discharge == Discharge::On {
            println!(
                "Discharge re-proof: {discharge_events} deletion events, {discharge_rejected} rejected"
            );
        }
        assert_eq!(failed, 0, "uncovered obligations in the full matrix");
        assert_eq!(
            discharge_rejected, 0,
            "rejected discharge events in the full matrix"
        );
        if timings {
            println!(
                "certification harness threads={} wall_ms={:.1}",
                cert_report.threads,
                cert_report.wall_time.as_secs_f64() * 1e3
            );
        }
    }

    // Extension over the paper: the certifier's value-range analysis
    // proves a fraction of the static checks always-true before any
    // placement runs; every table row above was also re-validated here.
    let cert_headers: Vec<String> = ["program", "checks-st", "disch-st", "disch-%"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut cert_rows = Vec::new();
    for pb in &prepared {
        let cert = certify_prepared(pb, &OptimizeOptions::scheme(Scheme::Ni));
        let total = pb.checked.check_count();
        cert_rows.push(vec![
            pb.bench.name.to_string(),
            total.to_string(),
            cert.vra_discharged.to_string(),
            format!(
                "{:.1}",
                100.0 * cert.vra_discharged as f64 / total.max(1) as f64
            ),
        ]);
    }
    println!("\nStatically discharged checks (certifier value-range analysis):\n");
    println!("{}", format_table(&cert_headers, &cert_rows));
}
