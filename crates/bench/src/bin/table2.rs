//! Regenerates the paper's **Table 2**: percentage of dynamic checks
//! eliminated by the seven placement schemes × {PRX, INX} check kinds,
//! plus the time spent in the range-check optimizer ("Range") and the
//! total compile time ("Nascent") over the whole suite.
//!
//! Run with `cargo run --release -p nascent-bench --bin table2`.
//! Pass `--small` for the test-scale suite.

use std::time::Duration;

use nascent_bench::{evaluate, format_table, naive_run, table2_configs};
use nascent_rangecheck::CheckKind;
use nascent_suite::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let benches = suite(scale);
    let naives: Vec<_> = benches.iter().map(naive_run).collect();

    let mut headers: Vec<String> = vec!["".into(), "scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("Range(ms)".into());
    headers.push("Nascent(ms)".into());

    let mut rows = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        let kind_label = match kind {
            CheckKind::Prx => "PRX",
            CheckKind::Inx => "INX",
        };
        for cfg in table2_configs(kind) {
            let mut row = vec![kind_label.to_string(), cfg.label.to_string()];
            let mut range = Duration::ZERO;
            let mut total = Duration::ZERO;
            for (b, naive) in benches.iter().zip(&naives) {
                let r = evaluate(b, naive, &cfg.opts);
                range += r.optimize_time;
                total += r.total_time;
                row.push(format!("{:.2}", r.percent_eliminated));
            }
            row.push(format!("{:.1}", range.as_secs_f64() * 1e3));
            row.push(format!("{:.1}", total.as_secs_f64() * 1e3));
            rows.push(row);
        }
    }
    println!(
        "Table 2: percentage of dynamic checks eliminated by optimizations\nand time required for compilation (all {} programs)\n",
        benches.len()
    );
    println!("{}", format_table(&headers, &rows));
    println!("NI = no insertion, CS = check strengthening, LNI = latest placement,");
    println!("SE = safe-earliest, LI = preheader (invariant), LLS = preheader with");
    println!("loop-limit substitution, ALL = LLS followed by SE.");
}
