//! Reproduces the paper's worked examples (Figures 1–6) and prints each
//! program fragment before and after the relevant transformation.
//!
//! Run with `cargo run -p nascent-bench --bin figures [-- fig1|fig2|...]`.

use nascent_analysis::context::PassContext;
use nascent_frontend::compile;
use nascent_ir::pretty::DisplayFunction;
use nascent_rangecheck::{
    optimize_program, universe::Universe, ImplicationMode, OptimizeOptions, Scheme,
};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |name: &str| all || which.iter().any(|w| w == name);
    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
}

const FIG1: &str = "program fig1
 integer a(5:10)
 integer n
 n = 4
 a(2*n) = 0
 a(2*n - 1) = 1
end
";

fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

fn fig1() {
    banner("Figure 1: redundancy within a family + check strengthening");
    let p = compile(FIG1).unwrap();
    println!(
        "(a) naive — 4 checks:\n{}",
        DisplayFunction(&p.functions[0])
    );
    let mut pb = compile(FIG1).unwrap();
    optimize_program(&mut pb, &OptimizeOptions::scheme(Scheme::Ni));
    println!(
        "(b) after redundancy elimination (NI) — 3 checks:\n{}",
        DisplayFunction(&pb.functions[0])
    );
    let mut pc = compile(FIG1).unwrap();
    optimize_program(&mut pc, &OptimizeOptions::scheme(Scheme::Cs));
    println!(
        "(c) after check strengthening (CS) — 2 checks:\n{}",
        DisplayFunction(&pc.functions[0])
    );
}

fn fig2() {
    banner("Figure 2: induction variable analysis");
    let src = "program fig2
 integer a(1:100)
 integer i, j, k, m, n, t
 n = 8
 j = 0
 k = 3
 m = 5
 t = 0
 do i = 0, n - 1
  j = j + 1
  k = k + m
  t = t + j
  a(k) = 2 * m + 1
 enddo
end
";
    let p = compile(src).unwrap();
    let f = &p.functions[0];
    let mut ctx = PassContext::new();
    let classes = ctx.induction(f);
    println!("{src}");
    println!("classification at the loop header (h = basic loop variable):");
    let mut rows: Vec<(String, String)> = Vec::new();
    for ((_, var), class) in classes.iter() {
        let name = &f.vars[var.index()].name;
        if name.starts_with('%') {
            continue;
        }
        rows.push((name.clone(), format!("{class:?}")));
    }
    rows.sort();
    for (name, class) in rows {
        println!("  {name:4} -> {class}");
    }
}

fn fig3() {
    banner("Figure 3: check implication graph of Figure 1(a)");
    let p = compile(FIG1).unwrap();
    let u = Universe::build(&p.functions[0], ImplicationMode::All);
    println!("checks and families:");
    for (i, c) in u.checks.iter().enumerate() {
        println!("  C{} = Check ({c})   family F{}", i + 1, u.family_of[i].0);
    }
    println!("\nimplications (within families, by range constant):");
    for (i, c) in u.checks.iter().enumerate() {
        for j in u.gen_avail[i].iter() {
            if i != j {
                println!("  Check ({c}) ==> Check ({})", u.checks[j]);
            }
        }
    }
}

fn fig4() {
    banner("Figure 4: CIG with families as nodes and weighted edges");
    // two related families via m = n + 4
    let src = "program fig4
 integer a(1:20)
 integer n, m
 n = 3
 m = n + 4
 a(n) = 1
 a(m) = 2
end
";
    let p = compile(src).unwrap();
    let u = Universe::build(&p.functions[0], ImplicationMode::All);
    println!("{src}");
    println!(
        "families: {}   cross-family edges: {}",
        u.cig.family_count(),
        u.cig.edge_count()
    );
    let mut seen = Vec::new();
    for (i, c) in u.checks.iter().enumerate() {
        if seen.contains(&u.family_of[i]) {
            continue;
        }
        seen.push(u.family_of[i]);
        for (g, w) in u.closure.reachable(u.family_of[i]) {
            println!(
                "  family of ({c}) --[{w:+}]--> F{}   (form <= c implies target <= c{w:+})",
                g.0
            );
        }
    }
}

fn fig5() {
    banner("Figure 5: safe-earliest placement is not always profitable");
    let src = "program fig5
 integer a(1:10)
 integer i, c
 c = 0
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  a(i + 4) = 1
 endif
end
";
    let p = compile(src).unwrap();
    println!("(a) original:\n{}", DisplayFunction(&p.functions[0]));
    let mut pse = compile(src).unwrap();
    optimize_program(&mut pse, &OptimizeOptions::scheme(Scheme::Se));
    println!(
        "(b)+(c) after safe-earliest placement and elimination:\n{}",
        DisplayFunction(&pse.functions[0])
    );
    println!("note: the else path now performs two checks instead of one —");
    println!("the profitability caveat the paper illustrates with this figure.");
}

fn fig6() {
    banner("Figure 6: preheader insertion with loop-limit substitution");
    let src = "program fig6
 integer a(1:10)
 integer j, k, n
 n = 4
 k = 7
 do j = 1, 2 * n
  a(k) = a(j) + 1
 enddo
end
";
    let p = compile(src).unwrap();
    println!("(a) original:\n{}", DisplayFunction(&p.functions[0]));
    let mut pl = compile(src).unwrap();
    optimize_program(&mut pl, &OptimizeOptions::scheme(Scheme::Lls));
    println!(
        "(b)+(c) after preheader insertion and elimination:\n{}",
        DisplayFunction(&pl.functions[0])
    );
    println!("the loop body performs no checks; the preheader holds the");
    println!("Cond-checks for the invariant (k) and substituted (2n) families.");
}
