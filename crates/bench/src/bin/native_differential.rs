//! Three-way engine differential + `BENCH_10.json` snapshot.
//!
//! Drives the full 42-configuration × 10-program matrix through all
//! three execution engines — tree-walker, register-bytecode VM, and the
//! native tier (instrumented C through the content-hash compile cache) —
//! and asserts the outcomes are **bit-identical**: counters, outputs
//! (reals by bit pattern), and trap records. Any divergence panics with
//! the offending cell's label, so a zero exit *is* the 0-divergences
//! assertion.
//!
//! Then it measures what the native tier buys:
//!
//! * a second full native round over the same matrix, whose compile-cache
//!   hit rate (per-round delta, not cumulative) must be ≥ 90%,
//! * per-program ns/step on the VM vs the native binary's in-process
//!   self-timing (`NASCENT_CBACK_REPEAT` amortizes spawn + protocol
//!   overhead), and the aggregate steps/sec speedup, which must be ≥ 10×.
//!
//! Skips gracefully (exit 0, stub snapshot) when the host has no C
//! compiler.
//!
//! Usage: `cargo run --release -p nascent-bench --bin native_differential
//! [out.json]` (default `BENCH_10.json`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use nascent_bench::{
    compare_engines, full_matrix_configs, harness_limits, matrix_threads, prepare,
    PreparedBenchmark,
};
use nascent_cback::cc_available;
use nascent_cback::native::{global, global_stats, NativeCacheStats};
use nascent_interp::{run_compiled, Engine};
use nascent_ir::Program;
use nascent_suite::{suite, Scale};

const THREE: [Engine; 3] = [Engine::Tree, Engine::Vm, Engine::Native];

/// In-binary repeats for the native timing runs: enough to amortize the
/// per-exec spawn + protocol cost to noise on µs-scale programs.
const REPEAT: u64 = 500;

/// Best-of-N passes for each timing measurement (the minimum is the
/// standard estimator for noisy shared hosts).
const PASSES: usize = 7;

/// Best-of-[`PASSES`] wall time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..PASSES {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn cache_json(label: &str, s: &NativeCacheStats) -> String {
    format!(
        "\"{label}\": {{\"hits\": {}, \"compiles\": {}, \"coalesced\": {}, \
         \"hit_rate\": {:.4}}}",
        s.hits,
        s.compiles,
        s.coalesced,
        s.hit_rate()
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    if !cc_available() {
        let stub = "{\n  \"format\": \"bench-snapshot\",\n  \"pr\": 10,\n  \
                    \"skipped\": \"no C compiler for the native tier ($CC / cc)\"\n}\n";
        std::fs::write(&out_path, stub).expect("write snapshot");
        eprintln!("native_differential: skipping: no C compiler for the native tier ($CC / cc)");
        eprintln!("wrote {out_path} (skip stub)");
        return;
    }

    let limits = harness_limits();
    let prepared: Vec<PreparedBenchmark> = suite(Scale::Small).iter().map(prepare).collect();
    let configs = full_matrix_configs();
    assert_eq!(configs.len(), 42, "the full matrix is 42 configurations");

    // ---- every cell's optimized program (cheap; serial) ----
    let cells: Vec<(String, Program)> = configs
        .iter()
        .flat_map(|cfg| {
            prepared.iter().map(move |pb| {
                let mut prog = pb.checked.clone();
                nascent_rangecheck::optimize_program(&mut prog, &cfg.opts);
                let label = format!("{} {} {:?}", pb.bench.name, cfg.label, cfg.opts);
                (label, prog)
            })
        })
        .collect();

    // ---- round 1: the three-way differential over all 420 cells ----
    let threads = matrix_threads(cells.len());
    let before_r1 = global_stats();
    let t1 = Instant::now();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((label, prog)) = cells.get(i) else {
                    break;
                };
                // panics (non-zero exit) on any engine divergence
                let r = compare_engines(label, prog, &limits, &THREE)
                    .unwrap_or_else(|e| panic!("{label}: suite cell errored: {e}"));
                assert!(r.trap.is_none(), "{label}: suite cell trapped");
            });
        }
    });
    let wall_r1 = t1.elapsed();
    let round1 = global_stats().since(&before_r1);
    eprintln!(
        "native_differential: round 1: {} cells x 3 engines, 0 divergences, \
         {} native compiles, {:.1}s on {} threads",
        cells.len(),
        round1.compiles,
        wall_r1.as_secs_f64(),
        threads,
    );

    // ---- round 2: native only, all cells again; must be ~all cache hits ----
    let before_r2 = global_stats();
    let t2 = Instant::now();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((label, prog)) = cells.get(i) else {
                    break;
                };
                global()
                    .run(prog, limits.max_steps, limits.max_call_depth as u64)
                    .unwrap_or_else(|e| panic!("{label}: round-2 native run failed: {e}"));
            });
        }
    });
    let wall_r2 = t2.elapsed();
    let round2 = global_stats().since(&before_r2);
    eprintln!(
        "native_differential: round 2: {} native runs in {:.1}s, \
         compile-cache hit rate {:.1}%",
        cells.len(),
        wall_r2.as_secs_f64(),
        100.0 * round2.hit_rate(),
    );
    assert!(
        round2.hit_rate() >= 0.90,
        "round-2 compile-cache hit rate {:.4} < 0.90 ({round2:?})",
        round2.hit_rate()
    );

    // ---- per-program perf: VM wall time vs native in-binary self-timing ----
    let mut programs = String::new();
    let mut vm_total_ns = 0f64;
    let mut native_total_ns = 0f64;
    let mut total_steps = 0u64;
    for (i, pb) in prepared.iter().enumerate() {
        let steps = pb.naive.dynamic_instructions + pb.naive.dynamic_checks;
        let vm_ns = best_ns(|| {
            run_compiled(&pb.lowered, &limits).expect("runs");
        }) as f64;
        let native_ns = {
            let mut best = f64::MAX;
            for _ in 0..PASSES {
                let r = global()
                    .run_repeat(
                        &pb.checked,
                        limits.max_steps,
                        limits.max_call_depth as u64,
                        REPEAT,
                    )
                    .expect("native timing run");
                let total = r.exec_ns.expect("binary reports exec_ns") as f64;
                best = best.min(total / REPEAT as f64);
            }
            best
        };
        vm_total_ns += vm_ns;
        native_total_ns += native_ns;
        total_steps += steps;
        let per = |ns: f64| ns / steps.max(1) as f64;
        if i > 0 {
            programs.push_str(",\n");
        }
        write!(
            programs,
            "    {{\"name\": \"{}\", \"steps\": {}, \"dynamic_checks\": {}, \
             \"vm_ns\": {:.0}, \"native_ns\": {:.0}, \
             \"vm_ns_per_step\": {:.2}, \"native_ns_per_step\": {:.3}, \
             \"speedup_vs_vm\": {:.1}}}",
            pb.bench.name,
            steps,
            pb.naive.dynamic_checks,
            vm_ns,
            native_ns,
            per(vm_ns),
            per(native_ns),
            vm_ns / native_ns.max(1.0),
        )
        .expect("write");
    }
    let aggregate_speedup = vm_total_ns / native_total_ns.max(1.0);
    eprintln!(
        "native_differential: native is {aggregate_speedup:.1}x the VM in steps/sec \
         ({:.2} vs {:.3} ns/step over {total_steps} steps)",
        vm_total_ns / total_steps.max(1) as f64,
        native_total_ns / total_steps.max(1) as f64,
    );
    if std::env::var("NASCENT_BENCH_NO_SPEEDUP_ASSERT").is_err() {
        assert!(
            aggregate_speedup >= 10.0,
            "native tier is only {aggregate_speedup:.1}x the VM (need >= 10x)"
        );
    }

    let total = global_stats();
    let json = format!(
        "{{\n  \"format\": \"bench-snapshot\",\n  \"pr\": 10,\n  \"suite_scale\": \"small\",\n  \
         \"programs\": [\n{programs}\n  ],\n  \
         \"differential\": {{\"configs\": {}, \"programs\": {}, \"cells\": {}, \
         \"engines\": [\"tree\", \"vm\", \"native\"], \"divergences\": 0, \
         \"threads\": {threads}, \"round1_wall_ms\": {:.1}, \"round2_wall_ms\": {:.1}}},\n  \
         \"native\": {{\"repeat\": {REPEAT}, \
         \"aggregate_speedup_vs_vm\": {aggregate_speedup:.1}, \
         \"compile_cache\": {{{}, {}, \"entries\": {}}}}}\n}}\n",
        configs.len(),
        prepared.len(),
        cells.len(),
        wall_r1.as_secs_f64() * 1e3,
        wall_r2.as_secs_f64() * 1e3,
        cache_json("round1", &round1),
        cache_json("round2", &round2),
        total.entries,
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
