//! Extension experiments beyond the paper's tables:
//!
//! 1. **MCM vs LI vs LLS** — §5 of the paper proposes implementing the
//!    Markstein–Cocke–Markstein algorithm "to compare its effectiveness
//!    with the loop-limit substitution algorithm"; this harness runs that
//!    comparison.
//! 2. **Guard overhead** — hoisted `Cond-check`s trade checks for guard
//!    evaluations; this reports the residual guard operations that the
//!    check-elimination percentages do not show.
//! 3. **INX substitution depth ablation** — how much of the INX benefit
//!    comes from the rewrite alone (NI-INX vs NI-PRX per program).
//! 4. **Compile-time scaling** — optimizer time per scheme on synthetic
//!    programs whose check universe grows quadratically.
//!
//! Run with `cargo run --release -p nascent-bench --bin extensions`
//! (pass `--small` for the test-scale suite).

use std::fmt::Write as _;
use std::time::Instant;

use nascent_bench::{evaluate_prepared, format_table, prepare};
use nascent_frontend::compile;
use nascent_rangecheck::{optimize_program, CheckKind, OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let benches = suite(scale);
    let prepared: Vec<_> = benches.iter().map(prepare).collect();

    // --- experiment 1: MCM vs LI vs LLS --------------------------------
    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("mean".into());
    let mut rows = Vec::new();
    for scheme in [Scheme::Mcm, Scheme::Li, Scheme::Lls] {
        let mut row = vec![scheme.name().to_string()];
        let mut sum = 0.0;
        for pb in &prepared {
            let r = evaluate_prepared(pb, &OptimizeOptions::scheme(scheme));
            sum += r.percent_eliminated;
            row.push(format!("{:.2}", r.percent_eliminated));
        }
        row.push(format!("{:.2}", sum / benches.len() as f64));
        rows.push(row);
    }
    println!("Extension 1: Markstein-Cocke-Markstein ('82) vs the paper's preheader schemes");
    println!("(% dynamic checks eliminated; the comparison proposed in the paper's section 5)\n");
    println!("{}", format_table(&headers, &rows));

    // --- experiment 2: guard overhead of hoisting ----------------------
    let mut rows = Vec::new();
    for scheme in [Scheme::Li, Scheme::Lls, Scheme::All] {
        let mut row = vec![scheme.name().to_string()];
        for pb in &prepared {
            let r = evaluate_prepared(pb, &OptimizeOptions::scheme(scheme));
            let guards_pct =
                100.0 * r.dynamic_guard_ops as f64 / pb.naive.dynamic_checks.max(1) as f64;
            row.push(format!("{:.2}", guards_pct));
        }
        row.push(String::new());
        rows.push(row);
    }
    println!("\nExtension 2: residual guard evaluations of hoisted Cond-checks");
    println!("(dynamic guard ops as % of the naive dynamic check count — the");
    println!("hidden cost of conditional preheader checks)\n");
    println!("{}", format_table(&headers, &rows));

    // --- experiment 3: what the INX rewrite alone buys ------------------
    let mut rows = Vec::new();
    let mut row_prx = vec!["NI-PRX".to_string()];
    let mut row_inx = vec!["NI-INX".to_string()];
    let mut row_gain = vec!["gain".to_string()];
    for pb in &prepared {
        let prx = evaluate_prepared(pb, &OptimizeOptions::scheme(Scheme::Ni));
        let inx = evaluate_prepared(
            pb,
            &OptimizeOptions::scheme(Scheme::Ni).with_kind(CheckKind::Inx),
        );
        row_prx.push(format!("{:.2}", prx.percent_eliminated));
        row_inx.push(format!("{:.2}", inx.percent_eliminated));
        row_gain.push(format!(
            "{:+.2}",
            inx.percent_eliminated - prx.percent_eliminated
        ));
    }
    row_prx.push(String::new());
    row_inx.push(String::new());
    row_gain.push(String::new());
    rows.push(row_prx);
    rows.push(row_inx);
    rows.push(row_gain);
    println!("\nExtension 3: effect of the induction-expression rewrite alone (under NI)\n");
    println!("{}", format_table(&headers, &rows));

    // --- experiment 4: compile-time scaling --------------------------
    println!("\nExtension 4: optimizer compile-time scaling");
    println!("(synthetic programs with k loops x k accesses; time per scheme, ms)\n");
    let sizes = [4usize, 8, 16, 32];
    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(sizes.iter().map(|k| format!("k={k}")));
    let mut rows = Vec::new();
    for scheme in [Scheme::Ni, Scheme::Cs, Scheme::Se, Scheme::Lls] {
        let mut row = vec![scheme.name().to_string()];
        for &k in &sizes {
            let src = scaling_program(k);
            let prog = compile(&src).expect("scaling program compiles");
            let t0 = Instant::now();
            let mut p = prog.clone();
            optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
            row.push(format!("{:.2}", t0.elapsed().as_secs_f64() * 1e3));
        }
        rows.push(row);
    }
    println!("{}", format_table(&headers, &rows));
}

/// A synthetic program with `k` sequential loops, each performing `k`
/// distinct array accesses (so the check universe grows as k^2).
fn scaling_program(k: usize) -> String {
    let n = 4 * k + 8;
    let mut src = String::new();
    let _ = writeln!(src, "program scale");
    let _ = writeln!(src, " integer a({n})");
    let _ = writeln!(src, " integer i");
    for li in 0..k {
        let _ = writeln!(src, " do i = 1, {}", n - k - 1);
        for ai in 0..k {
            let _ = writeln!(src, "  a(i + {}) = i + {li}", ai + 1);
        }
        let _ = writeln!(src, " enddo");
    }
    let _ = writeln!(src, " print a(1)");
    let _ = writeln!(src, "end");
    src
}
