//! Regenerates the paper's **Table 1**: program characteristics of the
//! benchmark programs — lines, subroutines, loops, static/dynamic
//! instruction counts, static/dynamic naive check counts, and the
//! check/instruction ratios. Also prints the §4.1 overhead estimate
//! (each check ≈ 2 instructions). The `disch-st` column is the number of
//! static checks the certifier's value-range analysis proves always-true
//! without any optimization.
//!
//! Run with `cargo run --release -p nascent-bench --bin table1`.
//! Pass `--small` for the test-scale suite. Each benchmark is compiled
//! and its naive baseline run once ([`nascent_bench::prepare`]); the
//! measurement and certification both reuse that baseline.

use nascent_bench::{certify_prepared, format_table, measure_prepared, prepare};
use nascent_rangecheck::{OptimizeOptions, Scheme};
use nascent_suite::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let headers: Vec<String> = [
        "program",
        "lines",
        "subr",
        "loops",
        "instr-st",
        "instr-dyn",
        "checks-st",
        "checks-dyn",
        "st-%",
        "dyn-%",
        "disch-st",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let mut rows = Vec::new();
    let mut min_ratio = f64::MAX;
    let mut max_ratio: f64 = 0.0;
    for b in suite(scale) {
        let pb = prepare(&b);
        let m = measure_prepared(&pb);
        min_ratio = min_ratio.min(m.dynamic_ratio());
        max_ratio = max_ratio.max(m.dynamic_ratio());
        rows.push(vec![
            m.name.to_string(),
            m.lines.to_string(),
            m.subroutines.to_string(),
            m.loops.to_string(),
            m.static_instructions.to_string(),
            m.dynamic_instructions.to_string(),
            m.static_checks.to_string(),
            m.dynamic_checks.to_string(),
            format!("{:.0}", m.static_ratio()),
            format!("{:.0}", m.dynamic_ratio()),
            certify_prepared(&pb, &OptimizeOptions::scheme(Scheme::Ni))
                .vra_discharged
                .to_string(),
        ]);
    }
    println!("Table 1: program characteristics of benchmark programs\n");
    println!("{}", format_table(&headers, &rows));
    println!(
        "Estimated naive range-checking overhead (>= 2 instructions per check):\n  {:.0}% .. {:.0}%   (paper: 44% .. 132%)",
        2.0 * min_ratio,
        2.0 * max_ratio
    );
}
