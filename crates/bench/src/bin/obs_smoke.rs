//! Observability smoke check for a running `nascentd` (CI `obs-smoke`).
//!
//! Drives a live service through the obs surface end to end:
//!
//! 1. `POST /certify?trace=1` (discharge on) — asserts the response
//!    carries a `request_id` and an embedded Chrome trace, writes the
//!    trace to a file, and checks it contains at least one span per
//!    pipeline stage (`parse`, `naive-run`, `optimize`, `certify`,
//!    `execute`) plus optimizer pass spans (the `discharge` pass among
//!    them, since the request ran with `--discharge on`),
//! 2. a handful of plain `/optimize` + `/certify` requests across
//!    schemes, so the per-scheme counters and per-stage histograms have
//!    traffic,
//! 3. `GET /metrics?format=prom` — validates every line of the
//!    exposition format (including histogram bucket monotonicity, via
//!    [`nascent_obs::metrics::validate_prom`]) and spot-checks that the
//!    stage histograms and elimination counters are present.
//!
//! Usage: `obs_smoke [--addr HOST:PORT] [trace-out.json]` (default:
//! in-process server, `obs_trace.json`).

use std::process::ExitCode;

use nascent_driver::http::request;
use nascent_driver::json::{obj, parse, Json};
use nascent_driver::service::{start, ServiceConfig};
use nascent_suite::{suite, Scale};

fn body(program: &str, scheme: &str, discharge: bool) -> String {
    let mut fields = vec![
        ("program", Json::Str(program.into())),
        ("scheme", Json::Str(scheme.into())),
    ];
    if discharge {
        fields.push(("discharge", Json::Str("on".into())));
    }
    obj(fields).render()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_smoke: FAILED: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr_arg: Option<String> = None;
    let mut trace_path = "obs_trace.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr_arg = Some(args.get(i).expect("--addr needs a value").clone());
            }
            other => trace_path = other.to_string(),
        }
        i += 1;
    }
    let in_process = addr_arg
        .is_none()
        .then(|| start(ServiceConfig::default()).expect("server starts"));
    let addr = addr_arg.unwrap_or_else(|| in_process.as_ref().unwrap().addr.to_string());

    let benches = suite(Scale::Small);
    let program = &benches[0].source;

    // ---- 1. traced certify request ----
    let (status, resp) = request(
        &addr,
        "POST",
        "/certify?trace=1",
        body(program, "LLS", true).as_bytes(),
    )
    .expect("traced certify reachable");
    if status != 200 {
        return fail(&format!(
            "traced /certify -> {status}: {}",
            String::from_utf8_lossy(&resp)
        ));
    }
    let resp = parse(std::str::from_utf8(&resp).expect("utf-8")).expect("json response");
    let Some(request_id) = resp.get("request_id").and_then(Json::as_str) else {
        return fail("traced response has no request_id");
    };
    let Some(trace) = resp.get("trace") else {
        return fail("traced response has no trace field");
    };
    let trace_json = trace.render();
    std::fs::write(&trace_path, &trace_json).expect("write trace file");
    // the written file must load as valid JSON on its own
    let reloaded = parse(&std::fs::read_to_string(&trace_path).expect("read trace file"))
        .expect("trace file is valid JSON");
    let Some(Json::Arr(events)) = reloaded.get("traceEvents") else {
        return fail("trace has no traceEvents array");
    };
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for stage in ["parse", "naive-run", "optimize", "certify", "execute"] {
        if !names.contains(&stage) {
            return fail(&format!("trace has no `{stage}` stage span ({names:?})"));
        }
    }
    if !names.contains(&"discharge") {
        return fail("trace has no `discharge` pass span despite --discharge on");
    }
    let tagged = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str)
                == Some(request_id)
        })
        .count();
    if tagged == 0 {
        return fail("no trace span carries the response's request_id");
    }
    eprintln!(
        "obs_smoke: trace ok — {} spans ({} tagged {request_id}) -> {trace_path}",
        events.len(),
        tagged
    );

    // ---- 2. traffic for the counters/histograms ----
    for scheme in ["NI", "CS", "SE", "LLS", "ALL"] {
        for (path, discharge) in [("/optimize", false), ("/certify", true)] {
            let (status, resp) = request(
                &addr,
                "POST",
                path,
                body(program, scheme, discharge).as_bytes(),
            )
            .expect("pipeline request reachable");
            if status != 200 {
                return fail(&format!(
                    "{path} ({scheme}) -> {status}: {}",
                    String::from_utf8_lossy(&resp)
                ));
            }
        }
    }

    // ---- 3. Prometheus exposition ----
    let (status, prom) = request(&addr, "GET", "/metrics?format=prom", b"").expect("prom scrape");
    if status != 200 {
        return fail(&format!("/metrics?format=prom -> {status}"));
    }
    let prom = String::from_utf8(prom).expect("prom text is utf-8");
    if let Err(e) = nascent_obs::metrics::validate_prom(&prom) {
        return fail(&format!("prom exposition invalid: {e}"));
    }
    for needle in [
        "# TYPE nascentd_requests_total counter",
        "# TYPE nascentd_stage_duration_seconds histogram",
        "nascentd_stage_duration_seconds_bucket{stage=\"parse\"",
        "nascentd_stage_duration_seconds_bucket{stage=\"execute\"",
        "nascentd_request_duration_seconds_bucket{endpoint=\"certify\"",
        "nascentd_checks_eliminated_total{scheme=\"LLS\"}",
    ] {
        if !prom.contains(needle) {
            return fail(&format!("prom exposition is missing `{needle}`"));
        }
    }
    eprintln!(
        "obs_smoke: prom exposition ok ({} lines)",
        prom.lines().count()
    );

    if let Some(server) = in_process {
        server.stop();
    }
    eprintln!("obs_smoke: ok");
    ExitCode::SUCCESS
}
