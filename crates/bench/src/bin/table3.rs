//! Regenerates the paper's **Table 3**: the implication ablation —
//! `NI` vs `NI'` (no implications), `SE` vs `SE'` (no implications), and
//! `LLS` vs `LLS'` (implications between different families only) — for
//! both PRX and INX checks.
//!
//! Run with `cargo run --release -p nascent-bench --bin table3`.
//! Pass `--small` for the test-scale suite, `--timings` for the
//! per-pass decomposition. Baselines are prepared once per benchmark and
//! the matrix runs in parallel, exactly like `table2`.

use std::time::Duration;

use nascent_bench::{format_table, prepare, run_matrix, table3_configs, Config};
use nascent_rangecheck::CheckKind;
use nascent_suite::{suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let timings = args.iter().any(|a| a == "--timings");
    let benches = suite(scale);
    let prepared: Vec<_> = benches.iter().map(prepare).collect();

    let mut kind_labels: Vec<&'static str> = Vec::new();
    let mut configs: Vec<Config> = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        for cfg in table3_configs(kind) {
            kind_labels.push(match kind {
                CheckKind::Prx => "PRX",
                CheckKind::Inx => "INX",
            });
            configs.push(cfg);
        }
    }
    let report = run_matrix(&prepared, &configs, false);

    let mut headers: Vec<String> = vec!["".into(), "scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("Range(ms)".into());
    headers.push("Nascent(ms)".into());

    let mut rows = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        let mut row = vec![kind_labels[ci].to_string(), cfg.label.to_string()];
        let mut range = Duration::ZERO;
        let mut total = Duration::ZERO;
        for bi in 0..prepared.len() {
            let r = &report.cell(ci, bi).result;
            range += r.optimize_time;
            total += r.total_time;
            row.push(format!("{:.2}", r.percent_eliminated));
        }
        row.push(format!("{:.1}", range.as_secs_f64() * 1e3));
        row.push(format!("{:.1}", total.as_secs_f64() * 1e3));
        rows.push(row);
    }
    println!(
        "Table 3: percentage of checks eliminated with and without\nimplications between checks\n"
    );
    println!("{}", format_table(&headers, &rows));
    println!("NI' / SE' = no implications between checks;");
    println!("LLS' = no implications within a family (cross-family only).");

    if timings {
        println!("\nPer-pass timing decomposition (all cells, merged):\n");
        print!("{}", report.timings_report());
    }
}
