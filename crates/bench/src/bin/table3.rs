//! Regenerates the paper's **Table 3**: the implication ablation —
//! `NI` vs `NI'` (no implications), `SE` vs `SE'` (no implications), and
//! `LLS` vs `LLS'` (implications between different families only) — for
//! both PRX and INX checks.
//!
//! Run with `cargo run --release -p nascent-bench --bin table3`.
//! Pass `--small` for the test-scale suite.

use std::time::Duration;

use nascent_bench::{evaluate, format_table, naive_run, table3_configs};
use nascent_rangecheck::CheckKind;
use nascent_suite::{suite, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    let benches = suite(scale);
    let naives: Vec<_> = benches.iter().map(naive_run).collect();

    let mut headers: Vec<String> = vec!["".into(), "scheme".into()];
    headers.extend(benches.iter().map(|b| b.name.to_string()));
    headers.push("Range(ms)".into());
    headers.push("Nascent(ms)".into());

    let mut rows = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        let kind_label = match kind {
            CheckKind::Prx => "PRX",
            CheckKind::Inx => "INX",
        };
        for cfg in table3_configs(kind) {
            let mut row = vec![kind_label.to_string(), cfg.label.to_string()];
            let mut range = Duration::ZERO;
            let mut total = Duration::ZERO;
            for (b, naive) in benches.iter().zip(&naives) {
                let r = evaluate(b, naive, &cfg.opts);
                range += r.optimize_time;
                total += r.total_time;
                row.push(format!("{:.2}", r.percent_eliminated));
            }
            row.push(format!("{:.1}", range.as_secs_f64() * 1e3));
            row.push(format!("{:.1}", total.as_secs_f64() * 1e3));
            rows.push(row);
        }
    }
    println!(
        "Table 3: percentage of checks eliminated with and without\nimplications between checks\n"
    );
    println!("{}", format_table(&headers, &rows));
    println!("NI' / SE' = no implications between checks;");
    println!("LLS' = no implications within a family (cross-family only).");
}
