//! Emits a machine-readable performance snapshot (`BENCH_9.json`) that
//! extends the repo's perf trajectory (`BENCH_5.json` seeded it):
//!
//! * per-program ns/step on both execution engines (tree-walker vs
//!   register-bytecode VM) over the naive, fully checked suite,
//! * the Table 2 matrix wall time (7 schemes × {PRX, INX} × 10 programs)
//!   on the parallel harness,
//! * total dataflow solver iterations and the per-analysis/per-pass wall
//!   time split from the optimizer's timing counters.
//!
//! Check and guard counts are engine-invariant (asserted by the
//! differential test); only the timing fields vary between machines.
//!
//! * the obs overhead check: the same optimize sweep with the trace
//!   recorder off vs on (spans recorded and drained), plus the spans
//!   captured per sweep — the evidence behind the "recorder off is
//!   near-free" guarantee (`tests/overhead.rs` enforces the bound).
//!
//! Usage: `cargo run --release -p nascent-bench --bin bench_snapshot
//! [out.json]` (default `BENCH_9.json`).

use std::fmt::Write as _;
use std::time::Instant;

use nascent_bench::{harness_limits, prepare, run_matrix, table2_configs, Config};
use nascent_interp::{run, run_compiled};
use nascent_rangecheck::CheckKind;
use nascent_suite::{suite, Scale};

/// Best-of-N wall time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let limits = harness_limits();
    let prepared: Vec<_> = suite(Scale::Small).iter().map(prepare).collect();

    let mut programs = String::new();
    for (i, pb) in prepared.iter().enumerate() {
        let steps = pb.naive.dynamic_instructions + pb.naive.dynamic_checks;
        let tree_ns = best_ns(|| {
            run(&pb.checked, &limits).expect("runs");
        });
        let vm_ns = best_ns(|| {
            run_compiled(&pb.lowered, &limits).expect("runs");
        });
        let per = |ns: u128| ns as f64 / steps.max(1) as f64;
        if i > 0 {
            programs.push_str(",\n");
        }
        write!(
            programs,
            "    {{\"name\": \"{}\", \"steps\": {}, \"dynamic_checks\": {}, \
             \"tree_ns\": {}, \"vm_ns\": {}, \
             \"tree_ns_per_step\": {:.2}, \"vm_ns_per_step\": {:.2}, \
             \"speedup\": {:.2}}}",
            pb.bench.name,
            steps,
            pb.naive.dynamic_checks,
            tree_ns,
            vm_ns,
            per(tree_ns),
            per(vm_ns),
            tree_ns as f64 / vm_ns.max(1) as f64,
        )
        .expect("write");
    }

    // Table 2 matrix (both check kinds) on the parallel harness + VM.
    let configs: Vec<Config> = table2_configs(CheckKind::Prx)
        .into_iter()
        .chain(table2_configs(CheckKind::Inx))
        .collect();
    let report = run_matrix(&prepared, &configs, false);
    let solver_iterations: u64 = {
        // re-derive the solver iteration total serially (OptimizeStats is
        // not carried through matrix cells)
        let mut total = 0u64;
        for pb in &prepared {
            for cfg in &configs {
                let mut prog = pb.checked.clone();
                let (stats, _) = nascent_rangecheck::optimize_program_timed(&mut prog, &cfg.opts);
                total += stats.dataflow_iterations;
            }
        }
        total
    };

    // obs overhead: the identical optimize sweep with the trace recorder
    // off vs on; the on-sweep's spans are drained and counted
    let tracing_off_ns = best_ns(|| {
        for pb in &prepared {
            for cfg in &configs {
                let mut prog = pb.checked.clone();
                let _ = nascent_rangecheck::optimize_program_timed(&mut prog, &cfg.opts);
            }
        }
    });
    nascent_obs::trace::set_global_enabled(true);
    let tracing_on_ns = best_ns(|| {
        let _ = nascent_obs::trace::drain_global();
        for pb in &prepared {
            for cfg in &configs {
                let mut prog = pb.checked.clone();
                let _ = nascent_rangecheck::optimize_program_timed(&mut prog, &cfg.opts);
            }
        }
    });
    nascent_obs::trace::set_global_enabled(false);
    let spans_per_sweep = nascent_obs::trace::drain_global().len();
    let overhead_pct =
        100.0 * (tracing_on_ns as f64 - tracing_off_ns as f64) / tracing_off_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"format\": \"bench-snapshot\",\n  \"pr\": 9,\n  \"suite_scale\": \"small\",\n  \
         \"programs\": [\n{programs}\n  ],\n  \
         \"matrix\": {{\"cells\": {}, \"threads\": {}, \"wall_ms\": {:.3}, \
         \"serial_ms\": {:.3}, \"speedup\": {:.2}}},\n  \
         \"solver\": {{\"dataflow_iterations\": {solver_iterations}, \
         \"analysis_ns\": {}, \"pass_ns\": {}}},\n  \
         \"obs\": {{\"tracing_off_ns\": {tracing_off_ns}, \
         \"tracing_on_ns\": {tracing_on_ns}, \
         \"overhead_pct\": {overhead_pct:.2}, \
         \"spans_per_sweep\": {spans_per_sweep}}}\n}}\n",
        report.cells.len(),
        report.threads,
        report.wall_time.as_secs_f64() * 1e3,
        report.serial_time.as_secs_f64() * 1e3,
        report.speedup(),
        report.timings.analysis_nanos(),
        report.timings.pass_nanos(),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    print!("{json}");
}
