//! Writes the benchmark suite's MiniF sources to a directory so they can
//! be inspected or fed to `nascentc`.
//!
//! Run with `cargo run -p nascent-bench --bin dump_suite -- <dir> [--small]`.

use nascent_suite::{suite, Scale};

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = args.first() else {
        eprintln!("usage: dump_suite <dir> [--small]");
        return std::process::ExitCode::FAILURE;
    };
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("dump_suite: {dir}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    for b in suite(scale) {
        let path = format!("{dir}/{}.mf", b.name);
        if let Err(e) = std::fs::write(&path, &b.source) {
            eprintln!("dump_suite: {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    std::process::ExitCode::SUCCESS
}
