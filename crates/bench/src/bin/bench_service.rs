//! Drives a `nascentd` service with concurrent clients over the full
//! 42-configuration × 10-program matrix and proves the service path is
//! **bit-identical** to the CLI path: every response's `result` object
//! is compared byte-for-byte against a locally computed
//! [`nascent_driver::compute`] outcome for the same request.
//!
//! Four phases:
//!
//! 1. local reference outcomes for every (cell, mode) pair,
//! 2. round A — N concurrent clients drain mixed `/optimize` +
//!    `/certify` requests (every key a cache miss),
//! 3. round B — the `/certify` half again (every key a cache hit; the
//!    bytes must not change),
//! 4. round C — mixed-engine requests (`"engine": "vm"` and
//!    `"engine": "native"` for every program under one configuration),
//!    proving the service's native tier is byte-identical to the VM
//!    path and that its compile cache reports a non-zero hit rate in
//!    `/metrics`. Skipped (with a named reason) when the host has no C
//!    compiler.
//!
//! Exit is non-zero if any request fails (non-200), any response
//! diverges from the CLI path, or the service rejected anything
//! (`503`) — the queue is sized so backpressure must never fire here.
//!
//! Emits a `BENCH_8.json` snapshot: the engine numbers of the
//! `bench_snapshot` format plus a `service` section (throughput,
//! latency percentiles, cache hit rate).
//!
//! Usage: `bench_service [--addr HOST:PORT] [--clients N] [out.json]`
//! (default: in-process server, 64 clients, `BENCH_8.json`).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nascent_bench::{full_matrix_configs, harness_limits, prepare, run_matrix, Config};
use nascent_cback::cc_available;
use nascent_driver::config::Mode;
use nascent_driver::http::request;
use nascent_driver::json::{obj, parse, Json};
use nascent_driver::service::{start, ServiceConfig};
use nascent_driver::{compute, Request, RunConfig};
use nascent_interp::{run, run_compiled, Engine};
use nascent_rangecheck::{CheckKind, ImplicationMode, Scheme};
use nascent_suite::{suite, Scale};

/// Best-of-N wall time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// One service request to issue and check: the wire body plus the
/// locally computed reference bytes it must match.
struct Job {
    path: &'static str,
    body: String,
    reference: String,
    label: String,
}

fn body_json(source: &str, cfg: &Config, engine: Option<Engine>) -> String {
    let mut fields = vec![
        ("program", Json::Str(source.into())),
        ("scheme", Json::Str(cfg.opts.scheme.name().into())),
        (
            "kind",
            Json::Str(
                match cfg.opts.kind {
                    CheckKind::Prx => "prx",
                    CheckKind::Inx => "inx",
                }
                .into(),
            ),
        ),
        (
            "implications",
            Json::Str(
                match cfg.opts.implications {
                    ImplicationMode::All => "all",
                    ImplicationMode::CrossFamilyOnly => "cross",
                    ImplicationMode::None => "none",
                }
                .into(),
            ),
        ),
    ];
    if let Some(e) = engine {
        fields.push(("engine", Json::Str(e.name().into())));
    }
    obj(fields).render()
}

fn main() -> ExitCode {
    let mut addr_arg: Option<String> = None;
    let mut clients = 64usize;
    let mut out_path = "BENCH_8.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr_arg = Some(args.get(i).expect("--addr needs a value").clone());
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a number");
            }
            other => out_path = other.to_string(),
        }
        i += 1;
    }

    let benches = suite(Scale::Small);
    let configs = full_matrix_configs();
    assert_eq!(configs.len(), 42, "the full matrix is 42 configurations");
    eprintln!(
        "bench_service: {} configs x {} programs, {} concurrent clients",
        configs.len(),
        benches.len(),
        clients
    );

    // ---- local reference: the CLI path, computed in-process ----
    let limits = harness_limits();
    let cells: Vec<(usize, usize, Mode)> = (0..configs.len())
        .flat_map(|c| (0..benches.len()).map(move |b| (c, b)))
        .flat_map(|(c, b)| [(c, b, Mode::Optimize), (c, b, Mode::Certify)])
        .collect();
    let t_local = Instant::now();
    let slots: Vec<Mutex<Option<Job>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..nascent_bench::matrix_threads(cells.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(ci, bi, mode)) = cells.get(i) else {
                    break;
                };
                let cfg = &configs[ci];
                let bench = &benches[bi];
                let req = Request {
                    program: bench.source.clone(),
                    config: RunConfig::from_opts(&cfg.opts),
                    mode,
                };
                let outcome = compute(&req, &limits).expect("suite cell computes");
                *slots[i].lock().expect("slot") = Some(Job {
                    path: match mode {
                        Mode::Optimize => "/optimize",
                        Mode::Certify => "/certify",
                    },
                    body: body_json(&bench.source, cfg, None),
                    reference: outcome.deterministic_json().render(),
                    label: format!("{} {} {:?}", bench.name, cfg.label, mode),
                });
            });
        }
    });
    let jobs: Vec<Job> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("job computed"))
        .collect();
    eprintln!(
        "bench_service: {} local references in {:.1}s",
        jobs.len(),
        t_local.elapsed().as_secs_f64()
    );

    // ---- the server: external (--addr) or in-process ----
    let in_process = addr_arg.is_none().then(|| {
        start(ServiceConfig {
            queue_limit: clients * 8,
            ..ServiceConfig::default()
        })
        .expect("server starts")
    });
    let addr = addr_arg.unwrap_or_else(|| in_process.as_ref().unwrap().addr.to_string());

    // ---- rounds A and B: concurrent mixed requests + byte parity ----
    let divergences = AtomicUsize::new(0);
    let non_200 = AtomicUsize::new(0);
    let missing_ids = AtomicUsize::new(0);
    let request_ids: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let drive = |round: &'static str, pool: &[&Job]| {
        let next = AtomicUsize::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..clients {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = pool.get(i) else { break };
                    match request(&addr, "POST", job.path, job.body.as_bytes()) {
                        Ok((200, body)) => {
                            let response =
                                parse(std::str::from_utf8(&body).expect("utf-8 response"))
                                    .expect("json response");
                            let got = response.get("result").expect("result field").render();
                            if got != job.reference {
                                eprintln!("DIVERGENCE at {}", job.label);
                                divergences.fetch_add(1, Ordering::Relaxed);
                            }
                            // every pipeline response carries a request id
                            match response.get("request_id").and_then(Json::as_str) {
                                Some(id) if !id.is_empty() => {
                                    request_ids.lock().expect("ids").push(id.to_string());
                                }
                                _ => {
                                    eprintln!("MISSING request_id at {}", job.label);
                                    missing_ids.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Ok((status, body)) => {
                            eprintln!(
                                "{} -> {status}: {}",
                                job.label,
                                String::from_utf8_lossy(&body)
                            );
                            non_200.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("{} -> transport error: {e}", job.label);
                            non_200.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "bench_service: round {round}: {} requests in {:.2}s ({:.0} req/s)",
            pool.len(),
            secs,
            pool.len() as f64 / secs.max(1e-9)
        );
        (pool.len(), secs)
    };
    let all: Vec<&Job> = jobs.iter().collect();
    let certify: Vec<&Job> = jobs.iter().filter(|j| j.path == "/certify").collect();
    let (count_a, secs_a) = drive("A (all misses)", &all);
    let (count_b, secs_b) = drive("B (all hits)", &certify);

    // ---- round C: mixed engines, exercising the service's native tier ----
    // One configuration, every program, both modes, under `engine: vm`
    // and `engine: native`. The two pipeline-cache keys per (program,
    // engine=native) pair map to one optimized program, so the second
    // request is a native compile-cache hit — the /metrics assertion
    // below checks the cache actually reports it.
    let native_jobs: Vec<Job> = if cc_available() {
        let cfg = configs
            .iter()
            .find(|c| {
                c.opts.scheme == Scheme::Lls
                    && c.opts.kind == CheckKind::Prx
                    && c.opts.implications == ImplicationMode::All
            })
            .expect("LLS/prx/all is in the full matrix");
        benches
            .iter()
            .flat_map(|bench| {
                [Engine::Vm, Engine::Native]
                    .into_iter()
                    .flat_map(move |engine| {
                        [Mode::Optimize, Mode::Certify]
                            .into_iter()
                            .map(move |mode| {
                                let mut config = RunConfig::from_opts(&cfg.opts);
                                config.engine = engine;
                                let req = Request {
                                    program: bench.source.clone(),
                                    config,
                                    mode,
                                };
                                let outcome = compute(&req, &limits).expect("engine cell computes");
                                Job {
                                    path: match mode {
                                        Mode::Optimize => "/optimize",
                                        Mode::Certify => "/certify",
                                    },
                                    body: body_json(&bench.source, cfg, Some(engine)),
                                    reference: outcome.deterministic_json().render(),
                                    label: format!(
                                        "{} {} {:?} engine={}",
                                        bench.name,
                                        cfg.label,
                                        mode,
                                        engine.name()
                                    ),
                                }
                            })
                    })
            })
            .collect()
    } else {
        eprintln!(
            "bench_service: skipping mixed-engine round: no C compiler for the \
             native tier ($CC / cc)"
        );
        Vec::new()
    };
    let (count_c, secs_c) = if native_jobs.is_empty() {
        (0, 0.0)
    } else {
        let pool: Vec<&Job> = native_jobs.iter().collect();
        drive("C (mixed engines)", &pool)
    };

    // ---- request ids: present in every response, unique across clients ----
    let missing_ids = missing_ids.load(Ordering::Relaxed);
    let ids = request_ids.into_inner().expect("ids");
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    let duplicate_ids = ids.len() - unique.len();
    eprintln!(
        "bench_service: {} request ids, {} unique, {missing_ids} missing",
        ids.len(),
        unique.len()
    );

    // ---- Prometheus exposition: scrape, validate, spot-check families ----
    let (status, prom_body) =
        request(&addr, "GET", "/metrics?format=prom", b"").expect("prom metrics reachable");
    assert_eq!(status, 200, "prom metrics endpoint failed");
    let prom_text = String::from_utf8(prom_body).expect("prom metrics are utf-8");
    nascent_obs::metrics::validate_prom(&prom_text).expect("prom exposition validates");
    for needle in [
        "nascentd_stage_duration_seconds_bucket{stage=\"optimize\"",
        "nascentd_stage_duration_seconds_bucket{stage=\"certify\"",
        "nascentd_request_duration_seconds_bucket{endpoint=\"optimize\"",
        "nascentd_checks_eliminated_total{scheme=",
        "nascentd_native_cache{stat=\"hit_rate\"}",
        "nascentd_engine_duration_seconds_bucket{engine=\"native\"",
    ] {
        assert!(
            prom_text.contains(needle),
            "prom exposition is missing `{needle}`"
        );
    }
    eprintln!(
        "bench_service: prom exposition validates ({} lines)",
        prom_text.lines().count()
    );

    // ---- service-side accounting ----
    let (status, body) = request(&addr, "GET", "/metrics", b"").expect("metrics reachable");
    assert_eq!(status, 200, "metrics endpoint failed");
    let metrics = parse(std::str::from_utf8(&body).expect("utf-8")).expect("metrics json");
    let int_at = |a: &str, b: &str| {
        metrics
            .get(a)
            .and_then(|v| v.get(b))
            .and_then(Json::as_i64)
            .unwrap_or(-1)
    };
    let num_at = |a: &str, b: &str| {
        metrics
            .get(a)
            .and_then(|v| v.get(b))
            .and_then(Json::as_f64)
            .unwrap_or(-1.0)
    };
    let rejected = int_at("responses", "503");
    let hit_rate = num_at("cache", "hit_rate");
    let native_hit_rate = num_at("native_cache", "hit_rate");
    assert!(
        native_hit_rate >= 0.0,
        "/metrics is missing the native_cache section"
    );
    if count_c > 0 {
        assert!(
            int_at("native_cache", "compiles") > 0,
            "mixed-engine round ran but the native compile cache reports no compiles"
        );
        assert!(
            native_hit_rate > 0.0,
            "mixed-engine round ran but /metrics reports a zero native \
             compile-cache hit rate"
        );
    }
    let total = (count_a + count_b + count_c) as f64;
    let throughput = total / (secs_a + secs_b + secs_c).max(1e-9);

    let divergences = divergences.load(Ordering::Relaxed);
    let non_200 = non_200.load(Ordering::Relaxed);
    eprintln!(
        "bench_service: non_200={non_200} divergences={divergences} rejected={rejected} \
         cache_hit_rate={hit_rate:.4} native_cache_hit_rate={native_hit_rate:.4} \
         p50={}ms p99={}ms",
        num_at("latency_ms", "p50"),
        num_at("latency_ms", "p99"),
    );

    // ---- the BENCH_8.json snapshot: engine numbers + service section ----
    let prepared: Vec<_> = benches.iter().map(prepare).collect();
    let mut programs = String::new();
    for (i, pb) in prepared.iter().enumerate() {
        let steps = pb.naive.dynamic_instructions + pb.naive.dynamic_checks;
        let tree_ns = best_ns(|| {
            run(&pb.checked, &limits).expect("runs");
        });
        let vm_ns = best_ns(|| {
            run_compiled(&pb.lowered, &limits).expect("runs");
        });
        let per = |ns: u128| ns as f64 / steps.max(1) as f64;
        if i > 0 {
            programs.push_str(",\n");
        }
        write!(
            programs,
            "    {{\"name\": \"{}\", \"steps\": {}, \"dynamic_checks\": {}, \
             \"tree_ns\": {}, \"vm_ns\": {}, \
             \"tree_ns_per_step\": {:.2}, \"vm_ns_per_step\": {:.2}, \
             \"speedup\": {:.2}}}",
            pb.bench.name,
            steps,
            pb.naive.dynamic_checks,
            tree_ns,
            vm_ns,
            per(tree_ns),
            per(vm_ns),
            tree_ns as f64 / vm_ns.max(1) as f64,
        )
        .expect("write");
    }
    let report = run_matrix(&prepared, &configs, false);

    let json = format!(
        "{{\n  \"format\": \"bench-snapshot\",\n  \"pr\": 8,\n  \"suite_scale\": \"small\",\n  \
         \"programs\": [\n{programs}\n  ],\n  \
         \"matrix\": {{\"cells\": {}, \"threads\": {}, \"wall_ms\": {:.3}, \
         \"serial_ms\": {:.3}, \"speedup\": {:.2}}},\n  \
         \"service\": {{\"clients\": {clients}, \"requests\": {}, \
         \"non_200\": {non_200}, \"divergences\": {divergences}, \"rejected\": {rejected}, \
         \"throughput_rps\": {throughput:.1}, \
         \"round_a_rps\": {:.1}, \"round_b_rps\": {:.1}, \
         \"cache_hit_rate\": {hit_rate:.4}, \
         \"mixed_engine_requests\": {count_c}, \
         \"native_cache_hit_rate\": {native_hit_rate:.4}, \
         \"latency_ms\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}}}}\n}}\n",
        report.cells.len(),
        report.threads,
        report.wall_time.as_secs_f64() * 1e3,
        report.serial_time.as_secs_f64() * 1e3,
        report.speedup(),
        count_a + count_b + count_c,
        count_a as f64 / secs_a.max(1e-9),
        count_b as f64 / secs_b.max(1e-9),
        num_at("latency_ms", "p50"),
        num_at("latency_ms", "p90"),
        num_at("latency_ms", "p99"),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    print!("{json}");

    if let Some(server) = in_process {
        server.stop();
    }
    if non_200 > 0 || divergences > 0 || rejected != 0 || missing_ids > 0 || duplicate_ids > 0 {
        eprintln!(
            "bench_service: FAILED (non_200={non_200} divergences={divergences} \
             rejected={rejected} missing_ids={missing_ids} duplicate_ids={duplicate_ids})"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("bench_service: service path is byte-identical to the CLI path");
    ExitCode::SUCCESS
}
