//! Experiment harness: everything needed to regenerate the paper's
//! Tables 1–3 and Figures 1–6.
//!
//! Binaries (see `src/bin/`):
//!
//! * `table1` — program characteristics and naive check overhead,
//! * `table2` — % checks eliminated per scheme × {PRX, INX} + compile time,
//! * `table3` — the implication ablation (`NI'`, `SE'`, `LLS'`),
//! * `figures` — the paper's worked examples, before/after,
//! * `bench_service` — drives a `nascentd` instance with concurrent
//!   clients and checks byte-parity against the in-process pipeline.
//!
//! The harness machinery itself (prepared baselines, per-configuration
//! evaluation, certification, the parallel configuration × program
//! matrix) lives in [`nascent_driver::harness`] — the same pipeline
//! layer that serves the `nascentc` CLI and the `nascentd` service —
//! and is re-exported here unchanged. This crate only keeps what is
//! specific to reproducing the paper's tables: the Table 1 metrics and
//! the text-table formatter.

use nascent_frontend::{compile_with, CheckInsertion};
use nascent_interp::{lower, run_compiled};
use nascent_ir::{Program, Stmt};

// The harness proper: one copy, in the driver layer.
pub use nascent_driver::harness::{
    certify_benchmark, certify_prepared, compare_engines, evaluate, evaluate_prepared,
    evaluate_prepared_with, full_matrix_configs, harness_limits, loop_count, matrix_threads,
    naive_run, prepare, results_bit_identical, run_matrix, run_matrix_with,
    static_instruction_count, table2_configs, table3_configs, Config, MatrixCell, MatrixReport,
    PreparedBenchmark, SchemeResult,
};

/// Static and dynamic characteristics of one benchmark (Table 1 row).
#[derive(Debug, Clone)]
pub struct ProgramMetrics {
    /// Program name.
    pub name: &'static str,
    /// Source lines (non-empty).
    pub lines: usize,
    /// Number of units (program + subroutines).
    pub subroutines: usize,
    /// Natural loops across all units.
    pub loops: usize,
    /// Static instruction count (cost-model units, without checks).
    pub static_instructions: u64,
    /// Dynamic instruction count (without checks).
    pub dynamic_instructions: u64,
    /// Static naive check count.
    pub static_checks: u64,
    /// Dynamic naive check count.
    pub dynamic_checks: u64,
}

impl ProgramMetrics {
    /// Static check/instruction ratio in percent.
    pub fn static_ratio(&self) -> f64 {
        100.0 * self.static_checks as f64 / self.static_instructions.max(1) as f64
    }

    /// Dynamic check/instruction ratio in percent.
    pub fn dynamic_ratio(&self) -> f64 {
        100.0 * self.dynamic_checks as f64 / self.dynamic_instructions.max(1) as f64
    }
}

/// Measures one benchmark's Table 1 row from its prepared baseline
/// (adds the one unchecked compile + run that only Table 1 needs).
pub fn measure_prepared(pb: &PreparedBenchmark) -> ProgramMetrics {
    let unchecked =
        compile_with(&pb.bench.source, CheckInsertion::None).expect("benchmark compiles");
    let ru = run_compiled(&lower(&unchecked), &harness_limits()).expect("benchmark runs");
    ProgramMetrics {
        name: pb.bench.name,
        lines: pb
            .bench
            .source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count(),
        subroutines: pb.checked.functions.len(),
        loops: pb.loops,
        static_instructions: static_instruction_count(&unchecked),
        dynamic_instructions: ru.dynamic_instructions,
        static_checks: pb.checked.check_count() as u64,
        dynamic_checks: pb.naive.dynamic_checks,
    }
}

/// Measures one benchmark's Table 1 row.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or run — the suite is
/// expected to be trap-free.
pub fn measure_program(b: &nascent_suite::Benchmark) -> ProgramMetrics {
    measure_prepared(&prepare(b))
}

/// Formats an aligned text table from headers and rows.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Counts `Check` statements that are conditional (for reports).
pub fn conditional_check_count(p: &Program) -> usize {
    p.functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.stmts)
        .filter(|s| matches!(s, Stmt::Check(c) if !c.is_unconditional()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_rangecheck::{CheckKind, OptimizeOptions, Scheme};
    use nascent_suite::{suite, Scale};

    #[test]
    fn measure_and_evaluate_one_benchmark() {
        let b = &suite(Scale::Small)[0];
        let m = measure_program(b);
        assert!(m.dynamic_checks > 0);
        assert!(m.dynamic_ratio() > 5.0);
        let naive = naive_run(b);
        let r = evaluate(b, &naive, &OptimizeOptions::scheme(Scheme::Lls));
        assert!(r.percent_eliminated > 50.0, "got {}", r.percent_eliminated);
        assert!(r.timings.pass_nanos() > 0, "passes were timed");
        assert!(r.timings.report().contains("pass elim "), "elim pass timed");
    }

    #[test]
    fn lls_beats_ni_on_the_small_suite() {
        for b in suite(Scale::Small) {
            let pb = prepare(&b);
            let ni = evaluate_prepared(&pb, &OptimizeOptions::scheme(Scheme::Ni));
            let lls = evaluate_prepared(&pb, &OptimizeOptions::scheme(Scheme::Lls));
            assert!(
                lls.percent_eliminated >= ni.percent_eliminated - 1e-9,
                "{}: LLS {} < NI {}",
                b.name,
                lls.percent_eliminated,
                ni.percent_eliminated
            );
        }
    }

    #[test]
    fn every_config_is_sound_on_the_small_suite() {
        for b in suite(Scale::Small) {
            let pb = prepare(&b);
            for kind in [CheckKind::Prx, CheckKind::Inx] {
                for cfg in table2_configs(kind) {
                    // evaluate_prepared() panics on any soundness violation
                    let r = evaluate_prepared(&pb, &cfg.opts);
                    assert!(
                        r.percent_eliminated >= -1e-9,
                        "{} {} eliminated negative checks",
                        b.name,
                        cfg.label
                    );
                }
                for cfg in table3_configs(kind) {
                    evaluate_prepared(&pb, &cfg.opts);
                }
            }
        }
    }

    #[test]
    fn parallel_matrix_matches_serial_evaluation() {
        let benches = suite(Scale::Small);
        let prepared: Vec<_> = benches.iter().take(4).map(prepare).collect();
        let configs = table2_configs(CheckKind::Prx);
        let report = run_matrix(&prepared, &configs, false);
        assert_eq!(report.cells.len(), configs.len() * prepared.len());
        assert!(report.threads >= 1);
        for (ci, cfg) in configs.iter().enumerate() {
            for (bi, pb) in prepared.iter().enumerate() {
                let serial = evaluate_prepared(pb, &cfg.opts);
                let cell = report.cell(ci, bi);
                assert_eq!(
                    cell.result.dynamic_checks, serial.dynamic_checks,
                    "{} under {}: parallel and serial runs disagree",
                    pb.bench.name, cfg.label
                );
                assert_eq!(cell.result.percent_eliminated, serial.percent_eliminated);
            }
        }
        let rep = report.timings_report();
        assert!(rep.starts_with("timings-format 1\n"), "got:\n{rep}");
        assert!(rep.contains("harness threads="));
    }

    #[test]
    fn matrix_certification_discharges_everything() {
        let benches = suite(Scale::Small);
        let prepared: Vec<_> = benches.iter().take(2).map(prepare).collect();
        let configs = vec![
            Config {
                label: "NI",
                opts: OptimizeOptions::scheme(Scheme::Ni),
            },
            Config {
                label: "LLS",
                opts: OptimizeOptions::scheme(Scheme::Lls),
            },
        ];
        let report = run_matrix(&prepared, &configs, true);
        for cell in &report.cells {
            let cert = cell.certificate.as_ref().expect("certified cell");
            assert!(cert.ok());
            assert!(cert.obligations > 0);
        }
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("bb"));
        assert_eq!(t.lines().count(), 4);
    }
}
