//! Experiment harness: everything needed to regenerate the paper's
//! Tables 1–3 and Figures 1–6.
//!
//! Binaries (see `src/bin/`):
//!
//! * `table1` — program characteristics and naive check overhead,
//! * `table2` — % checks eliminated per scheme × {PRX, INX} + compile time,
//! * `table3` — the implication ablation (`NI'`, `SE'`, `LLS'`),
//! * `figures` — the paper's worked examples, before/after.
//!
//! Every optimized run is validated against the naive run (same output,
//! same trap verdict, never a later trap), so the tables double as an
//! end-to-end soundness check.

use std::time::{Duration, Instant};

use nascent_analysis::loops::LoopForest;
use nascent_frontend::{compile, compile_with, CheckInsertion};
use nascent_interp::{run, Limits, RunResult};
use nascent_ir::{Program, Stmt};
use nascent_rangecheck::{
    optimize_program, optimize_program_logged, CheckKind, ImplicationMode, OptimizeOptions, Scheme,
};
use nascent_suite::Benchmark;
use nascent_verify::{certify_program, Certificate};

/// Static and dynamic characteristics of one benchmark (Table 1 row).
#[derive(Debug, Clone)]
pub struct ProgramMetrics {
    /// Program name.
    pub name: &'static str,
    /// Source lines (non-empty).
    pub lines: usize,
    /// Number of units (program + subroutines).
    pub subroutines: usize,
    /// Natural loops across all units.
    pub loops: usize,
    /// Static instruction count (cost-model units, without checks).
    pub static_instructions: u64,
    /// Dynamic instruction count (without checks).
    pub dynamic_instructions: u64,
    /// Static naive check count.
    pub static_checks: u64,
    /// Dynamic naive check count.
    pub dynamic_checks: u64,
}

impl ProgramMetrics {
    /// Static check/instruction ratio in percent.
    pub fn static_ratio(&self) -> f64 {
        100.0 * self.static_checks as f64 / self.static_instructions.max(1) as f64
    }

    /// Dynamic check/instruction ratio in percent.
    pub fn dynamic_ratio(&self) -> f64 {
        100.0 * self.dynamic_checks as f64 / self.dynamic_instructions.max(1) as f64
    }
}

/// Interpreter limits used by the harness.
pub fn harness_limits() -> Limits {
    Limits {
        max_steps: 2_000_000_000,
        max_call_depth: 128,
    }
}

/// Sums the static instruction cost of a program (cost-model units).
pub fn static_instruction_count(p: &Program) -> u64 {
    let mut total = 0;
    for f in &p.functions {
        for b in &f.blocks {
            for s in &b.stmts {
                total += s.cost();
            }
            total += b.term.cost();
        }
    }
    total
}

/// Counts natural loops across all functions.
pub fn loop_count(p: &Program) -> usize {
    p.functions
        .iter()
        .map(|f| LoopForest::compute(f).loops.len())
        .sum()
}

/// Measures one benchmark's Table 1 row.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or run — the suite is
/// expected to be trap-free.
pub fn measure_program(b: &Benchmark) -> ProgramMetrics {
    let unchecked = compile_with(&b.source, CheckInsertion::None).expect("benchmark compiles");
    let checked = compile(&b.source).expect("benchmark compiles");
    let limits = harness_limits();
    let ru = run(&unchecked, &limits).expect("benchmark runs");
    let rc = run(&checked, &limits).expect("benchmark runs");
    assert!(rc.trap.is_none(), "{} trapped", b.name);
    ProgramMetrics {
        name: b.name,
        lines: b.source.lines().filter(|l| !l.trim().is_empty()).count(),
        subroutines: checked.functions.len(),
        loops: loop_count(&checked),
        static_instructions: static_instruction_count(&unchecked),
        dynamic_instructions: ru.dynamic_instructions,
        static_checks: checked.check_count() as u64,
        dynamic_checks: rc.dynamic_checks,
    }
}

/// Result of optimizing and running one benchmark under one configuration.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// % of dynamic checks eliminated relative to the naive run.
    pub percent_eliminated: f64,
    /// Residual dynamic checks.
    pub dynamic_checks: u64,
    /// Dynamic guard operations of hoisted conditional checks.
    pub dynamic_guard_ops: u64,
    /// Time spent in the range-check optimizer.
    pub optimize_time: Duration,
    /// Total compile + optimize time.
    pub total_time: Duration,
}

/// Optimizes a benchmark under `opts`, runs it, validates it against the
/// naive run, and reports elimination percentage and timings.
///
/// # Panics
///
/// Panics if the optimized program misbehaves (different output, trap
/// introduced, later trap, undetected violation) — optimizer bugs must
/// not produce table rows.
pub fn evaluate(b: &Benchmark, naive: &RunResult, opts: &OptimizeOptions) -> SchemeResult {
    let limits = harness_limits();
    let t0 = Instant::now();
    let mut prog = compile(&b.source).expect("benchmark compiles");
    let t1 = Instant::now();
    optimize_program(&mut prog, opts);
    let optimize_time = t1.elapsed();
    let total_time = t0.elapsed();
    let r = run(&prog, &limits).unwrap_or_else(|e| {
        panic!("{} under {:?}: {e}", b.name, opts);
    });
    assert!(
        r.trap.is_none(),
        "{} under {:?}: optimizer introduced trap {:?}",
        b.name,
        opts,
        r.trap
    );
    assert_eq!(
        r.output, naive.output,
        "{} under {:?}: output changed",
        b.name, opts
    );
    let pct = 100.0 * (1.0 - r.dynamic_checks as f64 / naive.dynamic_checks.max(1) as f64);
    SchemeResult {
        percent_eliminated: pct,
        dynamic_checks: r.dynamic_checks,
        dynamic_guard_ops: r.dynamic_guard_ops,
        optimize_time,
        total_time,
    }
}

/// Optimizes a benchmark with the justification log enabled and
/// re-validates every decision with the static certifier
/// (`nascent-verify`). The returned certificate carries the obligation
/// counts and the number of checks the value-range analysis discharges
/// statically.
///
/// # Panics
///
/// Panics if the certifier rejects the run — tables must not be produced
/// from uncertified optimizations.
pub fn certify_benchmark(b: &Benchmark, opts: &OptimizeOptions) -> Certificate {
    let naive = compile(&b.source).expect("benchmark compiles");
    let mut prog = naive.clone();
    let (_, logs) = optimize_program_logged(&mut prog, opts);
    let cert = certify_program(&naive, &prog, &logs, opts);
    assert!(
        cert.ok(),
        "{} under {:?} rejected by the certifier:\n{}",
        b.name,
        opts,
        cert.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    cert
}

/// Runs the naive (unoptimized, checked) version of a benchmark.
pub fn naive_run(b: &Benchmark) -> RunResult {
    let prog = compile(&b.source).expect("benchmark compiles");
    run(&prog, &harness_limits()).expect("benchmark runs")
}

/// One row of Table 2 / Table 3: a named configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Row label (`NI`, `SE'`, …).
    pub label: &'static str,
    /// Options for the optimizer.
    pub opts: OptimizeOptions,
}

/// The seven Table 2 rows for a check kind.
pub fn table2_configs(kind: CheckKind) -> Vec<Config> {
    Scheme::EACH
        .iter()
        .map(|s| Config {
            label: s.name(),
            opts: OptimizeOptions::scheme(*s).with_kind(kind),
        })
        .collect()
}

/// The six Table 3 rows for a check kind: NI, NI', SE, SE', LLS, LLS'.
pub fn table3_configs(kind: CheckKind) -> Vec<Config> {
    vec![
        Config {
            label: "NI",
            opts: OptimizeOptions::scheme(Scheme::Ni).with_kind(kind),
        },
        Config {
            label: "NI'",
            opts: OptimizeOptions::scheme(Scheme::Ni)
                .with_kind(kind)
                .with_implications(ImplicationMode::None),
        },
        Config {
            label: "SE",
            opts: OptimizeOptions::scheme(Scheme::Se).with_kind(kind),
        },
        Config {
            label: "SE'",
            opts: OptimizeOptions::scheme(Scheme::Se)
                .with_kind(kind)
                .with_implications(ImplicationMode::None),
        },
        Config {
            label: "LLS",
            opts: OptimizeOptions::scheme(Scheme::Lls).with_kind(kind),
        },
        Config {
            label: "LLS'",
            opts: OptimizeOptions::scheme(Scheme::Lls)
                .with_kind(kind)
                .with_implications(ImplicationMode::CrossFamilyOnly),
        },
    ]
}

/// Formats an aligned text table from headers and rows.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Counts `Check` statements that are conditional (for reports).
pub fn conditional_check_count(p: &Program) -> usize {
    p.functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.stmts)
        .filter(|s| matches!(s, Stmt::Check(c) if !c.is_unconditional()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_suite::{suite, Scale};

    #[test]
    fn measure_and_evaluate_one_benchmark() {
        let b = &suite(Scale::Small)[0];
        let m = measure_program(b);
        assert!(m.dynamic_checks > 0);
        assert!(m.dynamic_ratio() > 5.0);
        let naive = naive_run(b);
        let r = evaluate(b, &naive, &OptimizeOptions::scheme(Scheme::Lls));
        assert!(r.percent_eliminated > 50.0, "got {}", r.percent_eliminated);
    }

    #[test]
    fn lls_beats_ni_on_the_small_suite() {
        for b in suite(Scale::Small) {
            let naive = naive_run(&b);
            let ni = evaluate(&b, &naive, &OptimizeOptions::scheme(Scheme::Ni));
            let lls = evaluate(&b, &naive, &OptimizeOptions::scheme(Scheme::Lls));
            assert!(
                lls.percent_eliminated >= ni.percent_eliminated - 1e-9,
                "{}: LLS {} < NI {}",
                b.name,
                lls.percent_eliminated,
                ni.percent_eliminated
            );
        }
    }

    #[test]
    fn every_config_is_sound_on_the_small_suite() {
        for b in suite(Scale::Small) {
            let naive = naive_run(&b);
            for kind in [CheckKind::Prx, CheckKind::Inx] {
                for cfg in table2_configs(kind) {
                    // evaluate() panics on any soundness violation
                    let r = evaluate(&b, &naive, &cfg.opts);
                    assert!(
                        r.percent_eliminated >= -1e-9,
                        "{} {} eliminated negative checks",
                        b.name,
                        cfg.label
                    );
                }
                for cfg in table3_configs(kind) {
                    evaluate(&b, &naive, &cfg.opts);
                }
            }
        }
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        assert!(t.contains("bb"));
        assert_eq!(t.lines().count(), 4);
    }
}
