//! The benchmark suite: MiniF re-creations of the ten Fortran programs the
//! paper evaluates (Perfect: arc2d, bdna, dyfesm, mdg, qcd, spec77, trfd;
//! Mendez: vortex; Riceps: linpackd, simple), plus a random structured
//! program generator for property-based testing.
//!
//! The original sources and input decks are not available; each program
//! here is a synthetic kernel *modeled on* the original's domain and —
//! more importantly — on the control/subscript structure that drives the
//! paper's results (see `DESIGN.md` §2 for the substitution note):
//!
//! * dense linear subscripts in counted loops (hoistable by `LLS`),
//! * invariant subscripts (hoistable by `LI`),
//! * conditional accesses in branches (partial redundancy: `SE`/`LNI`
//!   beat `NI`),
//! * indirect (`map(i)`) and `mod`-wrapped subscripts (never hoistable),
//! * while-loops with compound exit conditions (block hoisting),
//! * triangular loops and flattened-triangle accumulators (`trfd`),
//! * subroutines with adjustable (symbolic-bound) array parameters
//!   (`linpackd`).
//!
//! # Example
//!
//! ```
//! let suite = nascent_suite::test_suite();
//! assert_eq!(suite.len(), 10);
//! for b in &suite {
//!     let prog = nascent_frontend::compile(&b.source).expect(b.name);
//!     assert!(prog.check_count() > 0);
//! }
//! ```

pub mod generator;
pub mod programs;

pub use generator::{discharge_friendly, discharge_hostile, random_program, GenConfig};

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Program name (matches the paper's Table 1).
    pub name: &'static str,
    /// MiniF source text.
    pub source: String,
}

/// Size scale for the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for unit/integration tests.
    Small,
    /// Sizes used to regenerate the paper's tables.
    Paper,
}

/// Builds the ten-program suite at the given scale.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    let s = scale;
    vec![
        Benchmark {
            name: "vortex",
            source: programs::vortex(s),
        },
        Benchmark {
            name: "arc2d",
            source: programs::arc2d(s),
        },
        Benchmark {
            name: "bdna",
            source: programs::bdna(s),
        },
        Benchmark {
            name: "dyfesm",
            source: programs::dyfesm(s),
        },
        Benchmark {
            name: "mdg",
            source: programs::mdg(s),
        },
        Benchmark {
            name: "qcd",
            source: programs::qcd(s),
        },
        Benchmark {
            name: "spec77",
            source: programs::spec77(s),
        },
        Benchmark {
            name: "trfd",
            source: programs::trfd(s),
        },
        Benchmark {
            name: "linpackd",
            source: programs::linpackd(s),
        },
        Benchmark {
            name: "simple",
            source: programs::simple(s),
        },
    ]
}

/// The suite at paper scale.
pub fn paper_suite() -> Vec<Benchmark> {
    suite(Scale::Paper)
}

/// The suite at test scale.
pub fn test_suite() -> Vec<Benchmark> {
    suite(Scale::Small)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_interp::{run, Limits};

    #[test]
    fn all_programs_compile_and_run_trap_free() {
        for b in test_suite() {
            let prog =
                nascent_frontend::compile(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            nascent_ir::validate::assert_valid(&prog);
            let r = run(&prog, &Limits::default()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(r.trap.is_none(), "{} trapped: {:?}", b.name, r.trap);
            assert!(r.dynamic_checks > 0, "{} performs no checks", b.name);
            assert!(!r.output.is_empty(), "{} emits no output", b.name);
        }
    }

    #[test]
    fn check_ratio_is_substantial() {
        // the paper's Table 1 reports dynamic check/instruction ratios of
        // 22%..66%; our re-creations must stay in a broadly similar band
        for b in test_suite() {
            let with = nascent_frontend::compile(&b.source).unwrap();
            let r = run(&with, &Limits::default()).unwrap();
            let ratio = r.dynamic_checks as f64 / r.dynamic_instructions as f64;
            assert!(
                (0.10..=0.90).contains(&ratio),
                "{}: ratio {:.2} out of band",
                b.name,
                ratio
            );
        }
    }

    #[test]
    fn paper_scale_is_larger_than_test_scale() {
        let small = nascent_frontend::compile(&programs::vortex(Scale::Small)).unwrap();
        let paper = nascent_frontend::compile(&programs::vortex(Scale::Paper)).unwrap();
        let rs = run(&small, &Limits::default()).unwrap();
        let rp = run(&paper, &Limits::default()).unwrap();
        assert!(rp.dynamic_instructions > 10 * rs.dynamic_instructions);
    }
}
