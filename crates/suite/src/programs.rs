//! The ten benchmark kernels. Each function renders MiniF source at the
//! requested [`Scale`]; sizes are chosen so the paper-scale suite runs in
//! seconds under the instrumented interpreter while still executing
//! hundreds of thousands to millions of dynamic instructions.

use crate::Scale;

fn pick(scale: Scale, small: u32, paper: u32) -> u32 {
    match scale {
        Scale::Small => small,
        Scale::Paper => paper,
    }
}

/// `vortex` (Mendez): 2-D point-vortex dynamics. Dense 1-D sweeps with
/// many same-subscript accesses per iteration — high redundancy even for
/// `NI`, near-total elimination under `LLS`.
pub fn vortex(scale: Scale) -> String {
    let n = pick(scale, 16, 400);
    let nt = pick(scale, 3, 60);
    format!(
        "subroutine vinit(np, x, y, u, v)
 integer np, i
 real x(1:np), y(1:np), u(1:np), v(1:np)
 do i = 1, np
  x(i) = 1.0 * i
  y(i) = 2.0 * i
  u(i) = 0.0
  v(i) = 0.0
 enddo
end
subroutine interact(np, x, y, u, v, s)
 integer np, i
 real x(1:np), y(1:np), u(1:np), v(1:np), s(1:np)
 real dx, dy, r2
 do i = 1, np
  s(i) = 0.0
 enddo
 do i = 1, np - 1
  dx = x(i + 1) - x(i)
  dy = y(i + 1) - y(i)
  r2 = dx * dx + dy * dy + 1.0
  u(i) = u(i) + dx / r2
  v(i) = v(i) + dy / r2
  s(i) = s(i) + r2
 enddo
end
subroutine advance(np, x, y, u, v)
 integer np, i
 real x(1:np), y(1:np), u(1:np), v(1:np)
 do i = 1, np
  x(i) = x(i) + u(i) / 100.0
  y(i) = y(i) + v(i) / 100.0
 enddo
end
program vortex
 integer np, nt, t
 real x({n}), y({n}), u({n}), v({n}), s({n})
 np = {n}
 nt = {nt}
 call vinit(np, x, y, u, v)
 do t = 1, nt
  call interact(np, x, y, u, v, s)
  call advance(np, x, y, u, v)
 enddo
 print x(1) + y(np) + u(2) + s(3)
end
"
    )
}

/// `arc2d` (Perfect): implicit aerodynamics — 2-D interior stencil sweeps
/// with offset subscripts, the archetypal `LLS` winner.
pub fn arc2d(scale: Scale) -> String {
    let n = pick(scale, 10, 64);
    let nt = pick(scale, 2, 12);
    format!(
        "subroutine stencil(n, cfl, p, rn)
 integer n, i, j
 real cfl, wrk
 real p(1:n, 1:n), rn(1:n, 1:n)
 do j = 2, n - 1
  do i = 2, n - 1
   wrk = 1.0 * i * cfl + 1.0 * j * cfl + 0.5
   rn(i, j) = (p(i - 1, j) + p(i + 1, j) + p(i, j - 1) + p(i, j + 1)) * 0.25 + wrk * 0.001
  enddo
 enddo
end
subroutine update(n, p, q, rn)
 integer n, i, j
 real p(1:n, 1:n), q(1:n, 1:n), rn(1:n, 1:n)
 do j = 2, n - 1
  do i = 2, n - 1
   p(i, j) = rn(i, j) + q(i, j) * 0.1
  enddo
 enddo
 do i = 1, n
  p(i, 1) = p(i, 2)
  p(i, n) = p(i, n - 1)
 enddo
end
program arc2d
 integer n, nt, i, j, t
 real p({n}, {n}), q({n}, {n}), rn({n}, {n})
 real cfl
 n = {n}
 nt = {nt}
 do j = 1, n
  do i = 1, n
   p(i, j) = 1.0 * (i + j)
   q(i, j) = 0.5 * i
   rn(i, j) = 0.0
  enddo
 enddo
 do t = 1, nt
  cfl = 0.2 + 0.001 * t
  call stencil(n, cfl, p, rn)
  call update(n, p, q, rn)
 enddo
 print p(2, 2) + p(n - 1, n - 1) + rn(3, 3)
end
"
    )
}

/// `bdna` (Perfect): molecular dynamics of DNA — mixes dense linear
/// sweeps with *indirect* neighbor-list subscripts (`map(i)`), which can
/// never be hoisted; `LLS` lands below 100%.
pub fn bdna(scale: Scale) -> String {
    let n = pick(scale, 16, 300);
    let nt = pick(scale, 2, 25);
    format!(
        "program bdna
 integer n, nt, i, t, k
 integer map({n})
 real f({n}), g({n}), pos({n}), vel({n}), chg({n})
 real fi
 n = {n}
 nt = {nt}
 do i = 1, n
  map(i) = mod(i * 7, n) + 1
  pos(i) = 0.25 * i
  f(i) = 0.0
  g(i) = 1.0 * i
  vel(i) = 0.0
  chg(i) = 0.5
 enddo
 do t = 1, nt
  do i = 1, n - 1
   fi = pos(i) * 0.5 - chg(i) * chg(i + 1)
   fi = fi * 0.25 + 0.125 * i + 0.5 * t
   f(i) = f(i) + fi
   vel(i) = vel(i) + f(i) * 0.001
   pos(i) = pos(i) + vel(i) * 0.001
   g(i) = g(i) * 0.999 + f(i) * 0.01
  enddo
  do i = 1, n
   k = map(i)
   f(k) = f(k) + g(i) * 0.125
  enddo
 enddo
 print f(1) + f(n) + g(2) + pos(3)
end
"
    )
}

/// `dyfesm` (Perfect): structural dynamics finite elements — conditional
/// element updates create *partially* redundant checks: one branch does
/// no array access, so `NI` keeps the join checks while `SE`/`LNI` hoist
/// them above the branch.
pub fn dyfesm(scale: Scale) -> String {
    let n = pick(scale, 16, 280);
    let nt = pick(scale, 3, 30);
    format!(
        "subroutine elements(n, disp, vel, acc, stats)
 integer n, i
 real disp(1:n), vel(1:n), acc(1:n)
 integer stats(1:2)
 do i = 1, n
  if (mod(i, 4) == 0) then
   acc(i) = disp(i) * 0.5
  else
   stats(1) = stats(1) + 1
  endif
  vel(i) = vel(i) + acc(i) * 0.01
  disp(i) = disp(i) + vel(i) * 0.01
 enddo
end
program dyfesm
 integer n, nt, i, t
 integer stats(1:2)
 real disp({n}), vel({n}), acc({n})
 n = {n}
 nt = {nt}
 stats(1) = 0
 do i = 1, n
  disp(i) = 0.5 * i
  vel(i) = 0.0
  acc(i) = 0.0
 enddo
 do t = 1, nt
  call elements(n, disp, vel, acc, stats)
 enddo
 print disp(1) + vel(n) + 1.0 * stats(1)
end
"
    )
}

/// `mdg` (Perfect): molecular dynamics of water — triangular pair loop
/// with a cutoff conditional; the conditional force update uses a
/// different subscript family (`i + j`), so its checks survive hoisting.
pub fn mdg(scale: Scale) -> String {
    let n = pick(scale, 12, 90);
    let nt = pick(scale, 2, 6);
    let n2 = 2 * n;
    format!(
        "subroutine pairs(n, pos, frc, eng)
 integer n, i, j
 real pos(1:n), frc(1:2*n), eng(1:n)
 real dx
 do i = 1, n - 1
  do j = i + 1, n
   dx = pos(i) - pos(j)
   eng(j) = eng(j) + dx * dx * 0.001
   if (dx * dx < 0.05) then
    frc(i + j) = frc(i + j) + dx
   endif
  enddo
 enddo
end
program mdg
 integer n, nt, i, t
 real pos({n}), frc({n2}), eng({n})
 n = {n}
 nt = {nt}
 do i = 1, n
  pos(i) = 0.1 * i
 enddo
 do i = 1, 2 * n
  frc(i) = 0.0
 enddo
 do i = 1, n
  eng(i) = 0.0
 enddo
 do t = 1, nt
  call pairs(n, pos, frc, eng)
 enddo
 print frc(3) + frc(2 * n - 1) + pos(n) + eng(n)
end
"
    )
}

/// `qcd` (Perfect): lattice gauge theory — periodic wraparound subscripts
/// through `mod` are opaque to the canonical form and stay in the loop.
pub fn qcd(scale: Scale) -> String {
    let n = pick(scale, 16, 256);
    let nt = pick(scale, 3, 40);
    format!(
        "program qcd
 integer n, nt, i, j, jp, t
 real link({n}), fld({n})
 n = {n}
 nt = {nt}
 do i = 1, n
  link(i) = 1.0 * i
  fld(i) = 0.0
 enddo
 do t = 1, nt
  do j = 1, n - 1
   fld(j) = fld(j) + link(j) * link(j + 1) / 1000.0
   link(j) = link(j) * 0.9999 + fld(j) * 0.0001
  enddo
  do j = 1, n, 4
   jp = mod(j, n) + 1
   fld(j) = fld(j) + link(jp) / 1000.0
  enddo
 enddo
 print fld(1) + fld(n) + link(2)
end
"
    )
}

/// `spec77` (Perfect): spectral weather simulation — the outer time loop
/// is a `while` with a compound convergence condition, which blocks
/// hoisting past it; inner sweeps still hoist to their own preheaders and
/// re-execute them every outer iteration.
pub fn spec77(scale: Scale) -> String {
    let n = pick(scale, 16, 220);
    let nt = pick(scale, 3, 35);
    format!(
        "program spec77
 integer n, nt, i, t
 real wave({n}), spct({n}), err
 n = {n}
 nt = {nt}
 do i = 1, n
  wave(i) = 1.0 * i
  spct(i) = 0.0
 enddo
 t = 0
 err = 1000.0
 while (t < nt and err > 0.5)
  do i = 2, n - 1
   spct(i) = (wave(i - 1) + wave(i + 1)) * 0.5
  enddo
  do i = 2, n - 1
   wave(i) = wave(i) * 0.9 + spct(i) * 0.1
  enddo
  err = err * 0.8
  t = t + 1
 endwhile
 print wave(2) + spct(n - 1) + err
end
"
    )
}

/// `trfd` (Perfect): two-electron integral transformation — triangular
/// loops over a flattened triangle with an `ij = ij + 1` accumulator
/// (polynomial in the outer loop: never hoistable), plus an invariant
/// expression assigned *inside* the loop (`kk = n * 2`), which only the
/// INX rewrite exposes to `LI` — the paper's trfd INX-vs-PRX gap.
pub fn trfd(scale: Scale) -> String {
    let n = pick(scale, 12, 120);
    let tri = n * (n + 1) / 2;
    let m = 2 * n + 1;
    format!(
        "program trfd
 integer n, i, j, ij, kk
 real v({tri}), w({m}), x({m}), y({m})
 real val
 n = {n}
 ij = 0
 do i = 1, n
  kk = n * 2
  do j = 1, i
   ij = ij + 1
   val = 1.0 * (i + j) * 0.5 + 0.25 * i - 0.125 * j
   v(ij) = val + val * 0.001
   w(j) = w(j) + x(j) / 100.0
   x(j) = x(j) * 0.999 + w(j) * 0.001
   y(j) = y(j) + x(i) * 0.01
   v(kk - n) = v(kk - n) + 0.001
  enddo
  w(i) = w(i) + 0.5
 enddo
 print w(n) + v(1) + v(n) + x(2) + y(2)
end
"
    )
}

/// `linpackd` (Riceps): LINPACK-style elimination built on a `daxpy`
/// subroutine with adjustable (symbolic-bound) array parameters — checks
/// in the callee are against symbolic bounds.
pub fn linpackd(scale: Scale) -> String {
    let n = pick(scale, 24, 320);
    let k = pick(scale, 4, 48);
    format!(
        "subroutine daxpy(n, k, da, dx, dy)
 integer n, k, i
 real da
 real dx(1:n), dy(1:n)
 do i = k, n
  dy(i) = dy(i) + da * dx(i)
 enddo
end
program linpackd
 integer n, j
 integer i
 real a({n}), b({n})
 real t
 n = {n}
 do i = 1, n
  a(i) = 1.0 * i
  b(i) = 0.5 * i
 enddo
 do j = 1, {k}
  t = 1.0 / (1.0 * j)
  call daxpy(n, j, t, a, b)
 enddo
 print b(1) + b(n)
end
"
    )
}

/// `simple` (Riceps): 2-D Lagrangian hydrodynamics — large dense sweeps
/// over 2-D arrays inside a time loop; the highest elimination rates in
/// the paper.
pub fn simple(scale: Scale) -> String {
    let n = pick(scale, 10, 48);
    let nt = pick(scale, 2, 14);
    format!(
        "subroutine energy(n, hq, r, z, e)
 integer n, i, j
 real hq, hk
 real r(1:n, 1:n), z(1:n, 1:n), e(1:n, 1:n)
 do j = 1, n
  do i = 1, n
   hk = 1.0 * i * hq + 1.0 * j
   e(i, j) = e(i, j) + (r(i, j) * z(i, j) + hk * 0.5) / 1000.0
  enddo
 enddo
end
subroutine lagrange(n, r, e)
 integer n, i, j
 real r(1:n, 1:n), e(1:n, 1:n)
 do j = 2, n
  do i = 2, n
   r(i, j) = r(i, j) + e(i - 1, j - 1) * 0.01
  enddo
 enddo
end
program simple
 integer n, nt, i, j, t
 real r({n}, {n}), z({n}, {n}), e({n}, {n})
 real hq
 n = {n}
 nt = {nt}
 do j = 1, n
  do i = 1, n
   r(i, j) = 1.0 * i
   z(i, j) = 1.0 * j
   e(i, j) = 0.0
  enddo
 enddo
 do t = 1, nt
  hq = 0.001 * t + 0.1
  call energy(n, hq, r, z, e)
  call lagrange(n, r, e)
 enddo
 print e(1, 1) + r(n, n) + z(2, 2)
end
"
    )
}
