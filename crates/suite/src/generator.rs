//! Random structured MiniF program generator.
//!
//! Used by the safety oracle: for arbitrary generated programs, every
//! optimizer configuration must preserve the trap verdict, never trap
//! later, and keep the output identical on trap-free runs. Programs
//! deliberately include accesses that *may* go out of range (subscripts
//! are affine in loop variables with random coefficients against random
//! array bounds), so both trapping and non-trapping behaviors are
//! exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of scalar integer variables (≥ 2).
    pub scalars: u32,
    /// Number of 1-D arrays (≥ 1).
    pub arrays: u32,
    /// Maximum statement-tree depth.
    pub max_depth: u32,
    /// Statements per block (1..=this).
    pub max_stmts: u32,
    /// Probability (0..100) that a generated subscript may stray out of
    /// bounds.
    pub wild_percent: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scalars: 4,
            arrays: 2,
            max_depth: 3,
            max_stmts: 4,
            wild_percent: 25,
        }
    }
}

/// Generates a random MiniF program. The same seed and config always
/// produce the same program.
pub fn random_program(seed: u64, cfg: &GenConfig) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Gen {
        rng: &mut rng,
        cfg,
        out: String::new(),
        loop_depth: 0,
        loop_vars: Vec::new(),
    };
    g.program();
    g.out
}

/// Generates a **discharge-friendly** program: every subscript is a
/// constant, a counted loop variable whose range the declared bounds
/// cover, or one step of indirection through a locally initialized map
/// array. The static-discharge tier's value-range analysis should prove
/// (and delete) every check.
pub fn discharge_friendly(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: i64 = rng.gen_range(8..24);
    let k: i64 = rng.gen_range(2..6);
    let off: i64 = rng.gen_range(0..3);
    let s0: i64 = rng.gen_range(0..5);
    format!(
        "program gen
 integer i, t, s
 integer a(1:{n})
 integer b(1:{m})
 integer map(1:{n})
 s = {s0}
 do i = 1, {n}
  map(i) = i - 1
  a(i) = i
 enddo
 a({k}) = {k}
 if (s <= 4) then
  b({k} + {off}) = s
 endif
 do i = 1, {n}
  t = map(i)
  b(t + 1) = a(i) + t
 enddo
 print a(1) + b(1)
end
",
        m = n + 1
    )
}

/// Generates a **discharge-hostile** program: every subscript depends on
/// a degree-2 product of subroutine parameters, whose values the
/// value-range analysis cannot bound (scalar parameters are unknown at
/// function entry). The static-discharge tier must delete exactly zero
/// checks — the generator is the negative control for the discharge-rate
/// tables.
pub fn discharge_hostile(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let h: i64 = rng.gen_range(10..40);
    let m: i64 = rng.gen_range(3..9);
    let v0: i64 = rng.gen_range(1..4);
    let v1: i64 = rng.gen_range(1..4);
    let v2: i64 = rng.gen_range(1..3);
    format!(
        "program gen
 integer s0, s1, s2
 s0 = {v0}
 s1 = {v1}
 s2 = {v2}
 call kern(s0, s1, s2)
end
subroutine kern(p, q, r)
 integer p, q, r
 integer i, t, u
 integer a(1:{h})
 t = p * q
 do i = 1, {m}
  a(t) = i
  u = q * i
  a(u + t) = t
  t = t + r
 enddo
 print t
end
"
    )
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    cfg: &'a GenConfig,
    out: String,
    loop_depth: u32,
    loop_vars: Vec<String>,
}

impl Gen<'_> {
    fn scalar(&mut self, i: u32) -> String {
        format!("s{i}")
    }

    fn rand_scalar(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cfg.scalars);
        self.scalar(i)
    }

    /// A scalar that is not currently a loop variable (assignable).
    fn rand_assignable(&mut self) -> Option<String> {
        for _ in 0..8 {
            let s = self.rand_scalar();
            if !self.loop_vars.contains(&s) {
                return Some(s);
            }
        }
        None
    }

    fn array_bounds(&mut self, _i: u32) -> (i64, i64) {
        // bounds vary: sometimes 1-based, sometimes shifted
        let lo = [1i64, 0, 3, 5][self.rng.gen_range(0..4)];
        let hi = lo + self.rng.gen_range(6..20);
        (lo, hi)
    }

    fn program(&mut self) {
        self.out.push_str("program gen\n");
        let mut names = Vec::new();
        for i in 0..self.cfg.scalars {
            names.push(self.scalar(i));
        }
        self.out
            .push_str(&format!(" integer {}\n", names.join(", ")));
        let mut bounds = Vec::new();
        for i in 0..self.cfg.arrays {
            let (lo, hi) = self.array_bounds(i);
            bounds.push((lo, hi));
            self.out.push_str(&format!(" integer a{i}({lo}:{hi})\n"));
        }
        // initialize scalars to small values
        for i in 0..self.cfg.scalars {
            let v = self.rng.gen_range(1..6);
            let name = self.scalar(i);
            self.out.push_str(&format!(" {name} = {v}\n"));
        }
        let n = self.rng.gen_range(2..=self.cfg.max_stmts + 2);
        for _ in 0..n {
            self.stmt(1, &bounds);
        }
        // observable output
        for i in 0..self.cfg.arrays.min(2) {
            let (lo, _) = bounds[i as usize];
            self.out.push_str(&format!(" print a{i}({lo})\n"));
        }
        self.out.push_str(" print s0 + s1\nend\n");
    }

    /// An affine integer expression over in-scope scalars.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.gen_bool(0.4) {
            if self.rng.gen_bool(0.5) {
                format!("{}", self.rng.gen_range(-4..10))
            } else {
                self.rand_scalar()
            }
        } else {
            let l = self.expr(depth - 1);
            let r = self.expr(depth - 1);
            let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
            // keep multiplications small to avoid overflow
            if op == "*" {
                let k = self.rng.gen_range(1..4);
                format!("({l} * {k})")
            } else {
                format!("({l} {op} {r})")
            }
        }
    }

    /// A subscript expression that is usually in `lo..=hi` when the
    /// enclosing loop variables stay small, and sometimes wild.
    fn subscript(&mut self, lo: i64, hi: i64) -> String {
        let wild = self.rng.gen_range(0..100) < self.cfg.wild_percent;
        if wild {
            self.expr(1)
        } else if !self.loop_vars.is_empty() && self.rng.gen_bool(0.7) {
            // loop-var based, clamped into range via min/max intrinsics
            let v = self.loop_vars[self.rng.gen_range(0..self.loop_vars.len())].clone();
            let off = self.rng.gen_range(0..3);
            format!("min(max({v} + {off}, {lo}), {hi})")
        } else {
            format!("{}", self.rng.gen_range(lo..=hi))
        }
    }

    fn stmt(&mut self, depth: u32, bounds: &[(i64, i64)]) {
        let choice = self.rng.gen_range(0..100);
        let indent = " ".repeat((depth + 1) as usize);
        if choice < 30 {
            // scalar assignment
            if let Some(t) = self.rand_assignable() {
                let e = self.expr(2);
                self.out.push_str(&format!("{indent}{t} = {e}\n"));
            }
        } else if choice < 60 {
            // array store (possibly with an array read on the rhs)
            let ai = self.rng.gen_range(0..bounds.len());
            let (lo, hi) = bounds[ai];
            let sub = self.subscript(lo, hi);
            if self.rng.gen_bool(0.4) {
                let bi = self.rng.gen_range(0..bounds.len());
                let (blo, bhi) = bounds[bi];
                let rsub = self.subscript(blo, bhi);
                self.out
                    .push_str(&format!("{indent}a{ai}({sub}) = a{bi}({rsub}) + 1\n"));
            } else {
                let e = self.expr(1);
                self.out.push_str(&format!("{indent}a{ai}({sub}) = {e}\n"));
            }
        } else if choice < 80 && depth < self.cfg.max_depth && self.loop_depth < 3 {
            // counted loop over a fresh-ish variable
            if let Some(v) = self.rand_assignable() {
                let lo = self.rng.gen_range(0..3);
                let hi = lo + self.rng.gen_range(1..8);
                self.out.push_str(&format!("{indent}do {v} = {lo}, {hi}\n"));
                self.loop_vars.push(v);
                self.loop_depth += 1;
                let n = self.rng.gen_range(1..=self.cfg.max_stmts);
                for _ in 0..n {
                    self.stmt(depth + 1, bounds);
                }
                self.loop_depth -= 1;
                self.loop_vars.pop();
                self.out.push_str(&format!("{indent}enddo\n"));
            }
        } else if choice < 84 && self.loop_depth > 0 {
            // loop control, guarded so loops still terminate quickly
            let c = self.expr(1);
            let kw = if self.rng.gen_bool(0.5) {
                "exit"
            } else {
                "cycle"
            };
            self.out.push_str(&format!(
                "{indent}if ({c} == 3) then
{indent} {kw}
{indent}endif
"
            ));
        } else if depth < self.cfg.max_depth {
            // conditional
            let c = self.expr(1);
            let rel = ["<", "<=", ">", ">=", "=="][self.rng.gen_range(0..5)];
            let c2 = self.expr(1);
            self.out
                .push_str(&format!("{indent}if ({c} {rel} {c2}) then\n"));
            let n = self.rng.gen_range(1..=self.cfg.max_stmts);
            for _ in 0..n {
                self.stmt(depth + 1, bounds);
            }
            if self.rng.gen_bool(0.5) {
                self.out.push_str(&format!("{indent}else\n"));
                let n = self.rng.gen_range(1..=self.cfg.max_stmts);
                for _ in 0..n {
                    self.stmt(depth + 1, bounds);
                }
            }
            self.out.push_str(&format!("{indent}endif\n"));
        } else if let Some(t) = self.rand_assignable() {
            let e = self.expr(1);
            self.out.push_str(&format!("{indent}{t} = {e}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_interp::{run, Limits, RunError};

    #[test]
    fn generated_programs_compile() {
        let cfg = GenConfig::default();
        let mut compiled = 0;
        for seed in 0..60 {
            let src = random_program(seed, &cfg);
            let prog = nascent_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            nascent_ir::validate::assert_valid(&prog);
            compiled += 1;
        }
        assert_eq!(compiled, 60);
    }

    #[test]
    fn discharge_generators_compile_and_are_deterministic() {
        for seed in 0..20 {
            let friendly = discharge_friendly(seed);
            let prog = nascent_frontend::compile(&friendly)
                .unwrap_or_else(|e| panic!("friendly seed {seed}: {e}\n{friendly}"));
            nascent_ir::validate::assert_valid(&prog);
            let hostile = discharge_hostile(seed);
            let prog = nascent_frontend::compile(&hostile)
                .unwrap_or_else(|e| panic!("hostile seed {seed}: {e}\n{hostile}"));
            nascent_ir::validate::assert_valid(&prog);
        }
        assert_eq!(discharge_friendly(3), discharge_friendly(3));
        assert_eq!(discharge_hostile(3), discharge_hostile(3));
    }

    #[test]
    fn discharge_generator_programs_run_clean() {
        let limits = Limits {
            max_steps: 500_000,
            max_call_depth: 16,
        };
        for seed in 0..20 {
            let prog = nascent_frontend::compile(&discharge_friendly(seed)).unwrap();
            let r = run(&prog, &limits).unwrap();
            assert!(
                r.trap.is_none(),
                "friendly seed {seed} trapped: {:?}",
                r.trap
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        assert_eq!(random_program(7, &cfg), random_program(7, &cfg));
        assert_ne!(random_program(7, &cfg), random_program(8, &cfg));
    }

    #[test]
    fn some_programs_trap_and_some_do_not() {
        let cfg = GenConfig::default();
        let limits = Limits {
            max_steps: 500_000,
            max_call_depth: 16,
        };
        let mut traps = 0;
        let mut clean = 0;
        for seed in 0..80 {
            let src = random_program(seed, &cfg);
            let prog = nascent_frontend::compile(&src).unwrap();
            match run(&prog, &limits) {
                Ok(r) if r.trap.is_some() => traps += 1,
                Ok(_) => clean += 1,
                Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => {}
                Err(e) => panic!("seed {seed}: unexpected {e}"),
            }
        }
        assert!(traps > 5, "want trapping programs, got {traps}");
        assert!(clean > 5, "want clean programs, got {clean}");
    }
}
