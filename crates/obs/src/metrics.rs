//! Metrics registry: counters, gauges, fixed-bucket histograms, a
//! bounded latency reservoir, Prometheus text-format rendering, and an
//! exposition-format validator.
//!
//! The registry hands out cheap atomic handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) keyed by `(name, labels)`; the hot path never touches
//! the registry lock again. [`Registry::render_prom`] renders the whole
//! registry in Prometheus exposition format — `# HELP`/`# TYPE` comments,
//! one sample per series, cumulative `_bucket{le=...}` series plus
//! `_sum`/`_count` for histograms — and [`validate_prom`] parses that
//! format back, checking every line and the monotonicity of histogram
//! buckets (the `obs-smoke` CI job and the service tests run it against
//! a live `/metrics?format=prom` scrape).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotone counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge (set-to-current-value semantics, `f64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (seconds), strictly increasing; an implicit `+Inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (not cumulative; rendering
    /// accumulates). `counts[bounds.len()]` is the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations, in nanoseconds.
    sum_ns: AtomicU64,
}

/// A fixed-bucket histogram of durations (observed in seconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation of `seconds`.
    pub fn observe(&self, seconds: f64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0
            .sum_ns
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Default latency buckets (seconds): 100µs … 10s, roughly geometric.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

#[derive(Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    /// `labels rendered as {k="v",…}` (or empty) → series.
    series: BTreeMap<String, Series>,
}

/// A named collection of metric families. Cheap handles come out;
/// [`Registry::render_prom`] renders the whole thing.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Renders a label set deterministically: `{a="x",b="y"}` or `""`.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<_> = labels.to_vec();
    pairs.sort();
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates a counter series.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a different metric type.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let mut fams = self.families.lock().expect("registry lock");
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        match fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Series::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Gets or creates a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a different metric type.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        let mut fams = self.families.lock().expect("registry lock");
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        match fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Series::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Gets or creates a histogram series with the given bucket bounds
    /// (strictly increasing, seconds; `+Inf` is implicit).
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a different metric type or if the
    /// bounds are not strictly increasing.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut fams = self.families.lock().expect("registry lock");
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        match fam.series.entry(label_key(labels)).or_insert_with(|| {
            Series::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_ns: AtomicU64::new(0),
            })))
        }) {
            Series::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prom(&self) -> String {
        use std::fmt::Write as _;
        let fams = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            let kind = match fam.series.values().next() {
                Some(Series::Counter(_)) => "counter",
                Some(Series::Gauge(_)) => "gauge",
                Some(Series::Histogram(_)) => "histogram",
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in &fam.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", render_f64(g.get()));
                    }
                    Series::Histogram(h) => {
                        let inner = &h.0;
                        let mut cumulative = 0u64;
                        for (i, bound) in inner.bounds.iter().enumerate() {
                            cumulative += inner.counts[i].load(Ordering::Relaxed);
                            let le = render_f64(*bound);
                            let series_labels = merge_le(labels, &le);
                            let _ = writeln!(out, "{name}_bucket{series_labels} {cumulative}");
                        }
                        cumulative += inner.counts[inner.bounds.len()].load(Ordering::Relaxed);
                        let series_labels = merge_le(labels, "+Inf");
                        let _ = writeln!(out, "{name}_bucket{series_labels} {cumulative}");
                        let _ = writeln!(out, "{name}_sum{labels} {}", render_f64(h.sum()));
                        let _ = writeln!(out, "{name}_count{labels} {cumulative}");
                    }
                }
            }
        }
        out
    }
}

/// Inserts `le="…"` into a rendered label set.
fn merge_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Renders an `f64` the way Prometheus expects (no trailing `.0` noise
/// beyond what `{}` produces; integers render without a fraction).
fn render_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A fixed-capacity ring buffer of latency samples (microseconds):
/// percentiles over a sliding window of the most recent `capacity`
/// observations, total count kept exactly — memory stays bounded
/// however many requests flow through.
#[derive(Debug)]
pub struct Reservoir {
    capacity: usize,
    inner: Mutex<ReservoirInner>,
}

#[derive(Debug)]
struct ReservoirInner {
    buf: Vec<u64>,
    next: usize,
    total: u64,
}

impl Reservoir {
    /// A reservoir holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Reservoir {
        Reservoir {
            capacity: capacity.max(1),
            inner: Mutex::new(ReservoirInner {
                buf: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Records one sample, evicting the oldest once full.
    pub fn observe(&self, sample_us: u64) {
        let mut inner = self.inner.lock().expect("reservoir lock");
        if inner.buf.len() < self.capacity {
            inner.buf.push(sample_us);
        } else {
            let i = inner.next;
            inner.buf[i] = sample_us;
        }
        inner.next = (inner.next + 1) % self.capacity;
        inner.total += 1;
    }

    /// `(total observations, stored window, sorted samples)`.
    pub fn snapshot(&self) -> (u64, usize, Vec<u64>) {
        let inner = self.inner.lock().expect("reservoir lock");
        let mut samples = inner.buf.clone();
        samples.sort_unstable();
        (inner.total, inner.buf.len(), samples)
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Percentile (0.0–1.0) of a sorted sample slice; 0 when empty.
pub fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// Validates Prometheus text exposition format: every line is a
/// well-formed comment or sample, every sample's metric was announced by
/// a `# TYPE` line, and every histogram's cumulative buckets are
/// monotone with a `+Inf` bucket equal to its `_count`.
pub fn validate_prom(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, labels-without-le) -> [(le, value)]
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("line {n}: unknown TYPE `{kind}`"));
                }
                types.insert(name.to_string(), kind.to_string());
            } else if !rest.starts_with("HELP ") && !rest.is_empty() {
                return Err(format!("line {n}: unknown comment `{line}`"));
            }
            continue;
        }
        let (series, value) = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let (name, labels) = series;
        // map _bucket/_sum/_count back to the histogram family name
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(&name);
        if !types.contains_key(family) {
            return Err(format!("line {n}: sample for unannounced metric `{name}`"));
        }
        if name.ends_with("_bucket") && types.get(family).map(String::as_str) == Some("histogram") {
            let (le, others) = split_le(&labels)
                .ok_or_else(|| format!("line {n}: histogram bucket without `le` label"))?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {n}: bad le `{le}`"))?
            };
            buckets
                .entry((family.to_string(), others))
                .or_default()
                .push((le, value));
        }
        if name.ends_with("_count") && types.get(family).map(String::as_str) == Some("histogram") {
            counts.insert((family.to_string(), labels), value);
        }
    }

    for ((family, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le ordering"));
        for w in series.windows(2) {
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "histogram `{family}{labels}`: bucket le={} count {} < le={} count {}",
                    w[1].0, w[1].1, w[0].0, w[0].1
                ));
            }
        }
        let last = series.last().expect("non-empty bucket series");
        if !last.0.is_infinite() {
            return Err(format!("histogram `{family}{labels}`: missing +Inf bucket"));
        }
        if let Some(count) = counts.get(&(family.clone(), labels.clone())) {
            if *count != last.1 {
                return Err(format!(
                    "histogram `{family}{labels}`: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
        }
    }
    Ok(())
}

/// Parses one sample line into `((name, rendered labels), value)`.
#[allow(clippy::type_complexity)]
fn parse_sample(line: &str) -> Result<((String, String), f64), String> {
    let (series, value) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head.to_string(), tail.trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().ok_or("empty line")?;
            (name.to_string(), parts.next().unwrap_or("").trim())
        }
    };
    let value: f64 = value
        .split_whitespace()
        .next()
        .ok_or("sample without a value")?
        .parse()
        .map_err(|_| format!("bad sample value in `{line}`"))?;
    let (name, labels) = match series.find('{') {
        Some(open) => {
            let labels = &series[open..];
            if !labels.ends_with('}') {
                return Err(format!("unterminated label set in `{line}`"));
            }
            validate_labels(labels)?;
            (series[..open].to_string(), labels.to_string())
        }
        None => (series.clone(), String::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("bad metric name `{name}`"));
    }
    Ok(((name, labels), value))
}

/// Validates a rendered `{k="v",…}` label set.
fn validate_labels(labels: &str) -> Result<(), String> {
    let body = &labels[1..labels.len() - 1];
    if body.is_empty() {
        return Ok(());
    }
    for pair in split_label_pairs(body) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label without `=` in `{labels}`"))?;
        if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name `{k}`"));
        }
        if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
            return Err(format!("unquoted label value `{v}`"));
        }
    }
    Ok(())
}

/// Splits `k="v",k2="v2"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&body[start..]);
    out
}

/// Extracts the `le` label from a rendered label set, returning
/// `(le value, labels with le removed)`.
fn split_le(labels: &str) -> Option<(String, String)> {
    if labels.is_empty() {
        return None;
    }
    let body = &labels[1..labels.len() - 1];
    let mut le = None;
    let mut rest = Vec::new();
    for pair in split_label_pairs(body) {
        match pair.split_once('=') {
            Some(("le", v)) => le = Some(v.trim_matches('"').to_string()),
            _ => rest.push(pair),
        }
    }
    let le = le?;
    let rest = if rest.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", rest.join(","))
    };
    Some((le, rest))
}
