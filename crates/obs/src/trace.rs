//! Span-based tracing with a per-thread buffer and Chrome-trace export.
//!
//! Two independent recorders, both off by default:
//!
//! * the **global recorder** ([`set_global_enabled`]) — completed spans
//!   accumulate in a per-thread buffer (no lock on the recording path)
//!   that is flushed to the process-wide sink when the thread's span
//!   stack empties or the buffer fills; [`drain_global`] collects
//!   everything for `nascentc --trace`,
//! * a **scoped collector** ([`ScopedCollector`]) — activated on one
//!   thread for the duration of one service request (`?trace=1`); spans
//!   recorded by that thread land in the collector and are returned by
//!   [`ScopedCollector::finish`].
//!
//! When neither is active, [`span`] returns an inert guard after one
//! relaxed atomic load and one thread-local flag read — cheap enough to
//! leave in every hot path (`tests/overhead.rs` holds the whole layer to
//! ≤1% of the optimizer suite total). [`timed_span`] *always* measures
//! wall time (its callers feed timing counters that must work with the
//! recorder off — `PassContext::Timings` is a view over these spans) but
//! records only when a recorder is active.
//!
//! Every recorded span carries the thread's current request id (set by
//! the service via [`set_request_id`]), its nesting depth, and typed
//! attributes; [`chrome_trace_json`] renders a batch as a
//! `chrome://tracing`-loadable JSON object and [`validate_nesting`]
//! checks the strict per-thread nesting invariant the RAII guards
//! guarantee by construction.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Global recorder switch.
static GLOBAL_ON: AtomicBool = AtomicBool::new(false);

/// Process-wide sink for the global recorder.
static GLOBAL_SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Monotone thread-id source (std's `ThreadId` has no stable integer).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Per-thread buffer flush threshold (spans).
const FLUSH_AT: usize = 4096;

fn epoch() -> Instant {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static SCOPED_ON: Cell<bool> = const { Cell::new(false) };
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
    static SCOPED_BUF: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    static LOCAL_BUF: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// Turns the process-wide recorder on or off.
pub fn set_global_enabled(on: bool) {
    GLOBAL_ON.store(on, Ordering::SeqCst);
}

/// Whether any recorder (global, or a scoped collector on this thread)
/// would receive a span recorded right now.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ON.load(Ordering::Relaxed) || SCOPED_ON.with(Cell::get)
}

/// One typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute.
    Int(i64),
    /// String attribute.
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::Int(i64::from(v))
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// Span kind: a closed duration or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (Chrome phase `X`).
    Complete,
    /// An instantaneous event (Chrome phase `i`).
    Instant,
}

/// One completed span (or instant event) as recorded.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (a stable, static label: pass/analysis/stage name).
    pub name: &'static str,
    /// Category (`stage`, `pass`, `analysis`, `engine`, `event`, …).
    pub cat: &'static str,
    /// Start time, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for [`EventKind::Instant`]).
    pub dur_ns: u64,
    /// Recording thread (process-local integer id).
    pub tid: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// The request id current on the thread, if any.
    pub request_id: Option<String>,
    /// Typed key-value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Duration span or point event.
    pub kind: EventKind,
}

fn record(rec: SpanRecord) {
    if SCOPED_ON.with(Cell::get) {
        SCOPED_BUF.with(|b| b.borrow_mut().push(rec.clone()));
    }
    if GLOBAL_ON.load(Ordering::Relaxed) {
        let flush = LOCAL_BUF.with(|b| {
            let mut b = b.borrow_mut();
            b.push(rec);
            b.len() >= FLUSH_AT || DEPTH.with(Cell::get) == 0
        });
        if flush {
            flush_thread();
        }
    }
}

/// Flushes this thread's buffered spans into the global sink. Called
/// automatically whenever the thread's span stack empties; threads that
/// park while holding open spans can call it explicitly.
pub fn flush_thread() {
    LOCAL_BUF.with(|b| {
        let mut b = b.borrow_mut();
        if !b.is_empty() {
            GLOBAL_SINK.lock().expect("trace sink").append(&mut b);
        }
    });
}

/// Takes every span recorded by the global recorder so far (this
/// thread's buffer included).
pub fn drain_global() -> Vec<SpanRecord> {
    flush_thread();
    std::mem::take(&mut GLOBAL_SINK.lock().expect("trace sink"))
}

/// An in-flight span. Created by [`span`] / [`timed_span`]; recorded when
/// dropped or [`Span::finish`]ed. Inert (no timestamps, no recording)
/// when no recorder was active at creation and the span is untimed.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
    /// `Some` iff the span measures wall time even when not recording.
    timer: Option<Instant>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    cat: &'static str,
    ts_ns: u64,
    depth: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span. When no recorder is active this is one atomic load plus
/// one thread-local read, and the guard does nothing on drop.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !enabled() {
        return Span {
            live: None,
            timer: None,
        };
    }
    Span {
        live: Some(LiveSpan::open(name, cat)),
        timer: Some(Instant::now()),
    }
}

/// Opens a span that **always** measures wall time — callers use the
/// [`Span::finish`] duration for timing counters that must keep working
/// with the recorder off (`PassContext::Timings`). Recorded only when a
/// recorder is active.
#[inline]
pub fn timed_span(name: &'static str, cat: &'static str) -> Span {
    let live = enabled().then(|| LiveSpan::open(name, cat));
    Span {
        live,
        timer: Some(Instant::now()),
    }
}

impl LiveSpan {
    fn open(name: &'static str, cat: &'static str) -> LiveSpan {
        let ts_ns = epoch().elapsed().as_nanos() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        LiveSpan {
            name,
            cat,
            ts_ns,
            depth,
            attrs: Vec::new(),
        }
    }
}

impl Span {
    /// Attaches an attribute. No-op on an inert span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(live) = &mut self.live {
            live.attrs.push((key, value.into()));
        }
    }

    /// Whether this span is actually being recorded.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Closes the span, returning its measured wall time
    /// ([`Duration::ZERO`] for an inert untimed span).
    pub fn finish(mut self) -> Duration {
        let elapsed = self.timer.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
        self.close(elapsed);
        elapsed
    }

    fn close(&mut self, elapsed: Duration) {
        let Some(live) = self.live.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        record(SpanRecord {
            name: live.name,
            cat: live.cat,
            ts_ns: live.ts_ns,
            dur_ns: elapsed.as_nanos() as u64,
            tid: tid(),
            depth: live.depth,
            request_id: REQUEST_ID.with(|r| r.borrow().clone()),
            attrs: live.attrs,
            kind: EventKind::Complete,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live.is_some() {
            let elapsed = self.timer.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
            self.close(elapsed);
        }
    }
}

/// Records an instantaneous event under the current span context.
/// Callers on hot paths should gate attribute construction behind
/// [`enabled`]; the function itself checks again before recording.
pub fn instant(name: &'static str, cat: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
    if !enabled() {
        return;
    }
    record(SpanRecord {
        name,
        cat,
        ts_ns: epoch().elapsed().as_nanos() as u64,
        dur_ns: 0,
        tid: tid(),
        depth: DEPTH.with(Cell::get),
        request_id: REQUEST_ID.with(|r| r.borrow().clone()),
        attrs,
        kind: EventKind::Instant,
    });
}

/// Sets this thread's current request id; spans recorded while it is set
/// carry it. Returns the previous value so callers can restore it.
pub fn set_request_id(id: Option<String>) -> Option<String> {
    REQUEST_ID.with(|r| std::mem::replace(&mut *r.borrow_mut(), id))
}

/// This thread's current request id.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|r| r.borrow().clone())
}

/// Collects every span recorded **by this thread** between construction
/// and [`ScopedCollector::finish`] — the `?trace=1` per-request recorder.
/// Nesting collectors is not supported (the inner one wins).
pub struct ScopedCollector {
    was_on: bool,
}

impl ScopedCollector {
    /// Starts collecting on this thread.
    pub fn begin() -> ScopedCollector {
        let was_on = SCOPED_ON.with(|s| s.replace(true));
        if !was_on {
            SCOPED_BUF.with(|b| b.borrow_mut().clear());
        }
        ScopedCollector { was_on }
    }

    /// Stops collecting and returns the spans, in recording (close)
    /// order.
    pub fn finish(self) -> Vec<SpanRecord> {
        SCOPED_ON.with(|s| s.set(self.was_on));
        SCOPED_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()))
    }
}

/// JSON string escaping for the Chrome-trace writer.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome `chrome://tracing` / Perfetto-loadable JSON
/// object: `{"displayTimeUnit":"ms","traceEvents":[...]}` with one
/// complete (`"ph":"X"`) or instant (`"ph":"i"`) event per record.
/// Timestamps and durations are microseconds (fractional), as the format
/// requires.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, s.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, s.cat);
        out.push_str("\",\"ph\":\"");
        out.push_str(match s.kind {
            EventKind::Complete => "X",
            EventKind::Instant => "i",
        });
        out.push_str(&format!(
            "\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            s.ts_ns as f64 / 1e3,
            s.tid
        ));
        match s.kind {
            EventKind::Complete => out.push_str(&format!(",\"dur\":{:.3}", s.dur_ns as f64 / 1e3)),
            EventKind::Instant => out.push_str(",\"s\":\"t\""),
        }
        out.push_str(",\"args\":{");
        let mut first = true;
        if let Some(rid) = &s.request_id {
            out.push_str("\"request_id\":\"");
            escape_into(&mut out, rid);
            out.push('"');
            first = false;
        }
        for (k, v) in &s.attrs {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                AttrValue::Int(n) => out.push_str(&n.to_string()),
                AttrValue::Str(v) => {
                    out.push('"');
                    escape_into(&mut out, v);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Checks the strict per-thread nesting invariant: on each thread, any
/// two complete spans are either disjoint in time or one contains the
/// other, and containment agrees with the recorded depths. Instant
/// events are exempt (they are points).
pub fn validate_nesting(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if s.kind == EventKind::Complete {
            by_tid.entry(s.tid).or_default().push(s);
        }
    }
    for (tid, mut list) in by_tid {
        // parents first: earlier start, then longer duration
        list.sort_by(|a, b| {
            a.ts_ns
                .cmp(&b.ts_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.depth.cmp(&b.depth))
        });
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in list {
            while let Some(top) = stack.last() {
                if top.ts_ns + top.dur_ns <= s.ts_ns && s.ts_ns > top.ts_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                let contained =
                    s.ts_ns >= top.ts_ns && s.ts_ns + s.dur_ns <= top.ts_ns + top.dur_ns;
                if !contained {
                    return Err(format!(
                        "thread {tid}: span `{}` [{}, {}] overlaps `{}` [{}, {}] without nesting",
                        s.name,
                        s.ts_ns,
                        s.ts_ns + s.dur_ns,
                        top.name,
                        top.ts_ns,
                        top.ts_ns + top.dur_ns,
                    ));
                }
                // depth must agree with containment; a start-time tie at
                // nanosecond resolution can be a sibling coincidence, so
                // only a strictly-later start is held to it
                let strict = s.ts_ns > top.ts_ns;
                if strict && s.depth <= top.depth {
                    return Err(format!(
                        "thread {tid}: span `{}` (depth {}) nests inside `{}` (depth {}) but does not record a greater depth",
                        s.name, s.depth, top.name, top.depth,
                    ));
                }
            }
            stack.push(s);
        }
    }
    Ok(())
}
