//! `nascent-obs` — structured observability for the nascent-rc pipeline.
//!
//! Std-only (the build must succeed without registry access), three
//! cooperating subsystems shared by every layer of the workspace:
//!
//! * [`trace`] — span-based tracing: RAII guards ([`trace::span`] /
//!   [`trace::timed_span`], or the [`span!`] macro) with nesting, wall
//!   time, and typed key-value attributes, recorded into a per-thread
//!   buffer and exported as Chrome `chrome://tracing` JSON
//!   ([`trace::chrome_trace_json`]). Two recorders compose: a
//!   process-wide one (`nascentc --trace out.json`) and a per-thread
//!   scoped collector (`nascentd` per-request `?trace=1`). Both are
//!   **off by default**; a disabled [`trace::span`] is one relaxed
//!   atomic load plus one thread-local flag read — the overhead test in
//!   `tests/overhead.rs` holds the whole layer to ≤1% of suite total.
//! * [`metrics`] — a registry of named counters, gauges, and
//!   fixed-bucket histograms with Prometheus text-format rendering
//!   ([`metrics::Registry::render_prom`]) and an exposition-format
//!   validator ([`metrics::validate_prom`]); plus [`metrics::Reservoir`],
//!   a fixed-size ring buffer for latency percentiles that stays bounded
//!   however many requests flow through it.
//! * request ids ([`mint_request_id`] / [`trace::set_request_id`]) —
//!   minted per service request, carried in a thread-local so every span
//!   recorded while handling the request is tagged with it, and echoed
//!   in responses and error diagnostics.

pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique request-id sequence.
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix64(t ^ (u64::from(std::process::id()) << 32))
    })
}

/// Mints a request id: unique within the process (a sequence number runs
/// through the mix), collision-resistant across processes (the sequence
/// is XORed with a per-process time+pid seed before mixing).
pub fn mint_request_id() -> String {
    let n = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("r{:016x}", mix64(process_seed() ^ n))
}

/// Creates a recorded span with typed attributes:
/// `span!("lcm", "pass", fn = name, inserted = 3)`. Attribute values go
/// through [`trace::AttrValue::from`], so strings and integers both work.
/// Returns the RAII [`trace::Span`] guard; the span is recorded when the
/// guard drops (or [`trace::Span::finish`] is called).
#[macro_export]
macro_rules! span {
    ($name:expr, $cat:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut s = $crate::trace::span($name, $cat);
        $(s.attr(stringify!($key), $value);)*
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn request_ids_are_unique_across_threads() {
        let ids: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..500).map(|_| mint_request_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let set: HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "request ids collided");
        for id in &ids {
            assert!(id.starts_with('r') && id.len() == 17, "bad id format {id}");
        }
    }
}
