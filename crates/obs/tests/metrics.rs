//! Metrics-registry behavior: the Prometheus exposition a registry
//! renders must pass the crate's own format validator, histograms stay
//! cumulative and monotone, and the latency reservoir holds its memory
//! bound no matter how many samples arrive.

use std::time::Duration;

use nascent_obs::metrics::{percentile, validate_prom, Registry, Reservoir, LATENCY_BUCKETS};

#[test]
fn rendered_exposition_passes_the_validator() {
    let r = Registry::new();
    r.counter(
        "demo_requests_total",
        "requests",
        &[("endpoint", "optimize")],
    )
    .add(41);
    r.counter(
        "demo_requests_total",
        "requests",
        &[("endpoint", "certify")],
    )
    .inc();
    r.gauge("demo_pool_workers", "workers", &[]).set(8.0);
    let h = r.histogram(
        "demo_latency_seconds",
        "latency",
        &[("endpoint", "optimize")],
        LATENCY_BUCKETS,
    );
    for us in [50u64, 900, 4_000, 250_000, 30_000_000] {
        h.observe_duration(Duration::from_micros(us));
    }
    let text = r.render_prom();
    validate_prom(&text).expect("self-rendered exposition validates");
    assert!(text.contains("# TYPE demo_requests_total counter"));
    assert!(text.contains("demo_requests_total{endpoint=\"optimize\"} 41"));
    assert!(text.contains("# TYPE demo_latency_seconds histogram"));
    assert!(text.contains("demo_latency_seconds_count{endpoint=\"optimize\"} 5"));
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_count() {
    let r = Registry::new();
    let h = r.histogram("h_seconds", "h", &[], LATENCY_BUCKETS);
    for i in 0..1000u64 {
        h.observe(i as f64 * 0.0005); // 0 .. 0.5s
    }
    assert_eq!(h.count(), 1000);
    let text = r.render_prom();
    validate_prom(&text).expect("validates");
    // extract the bucket counts in order and check monotone growth
    let mut last = 0u64;
    let mut buckets = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("h_seconds_bucket{le=\"") {
            let v: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
            buckets += 1;
        }
    }
    assert_eq!(buckets, LATENCY_BUCKETS.len() + 1, "explicit +Inf bucket");
    assert_eq!(last, 1000, "+Inf bucket equals _count");
}

#[test]
fn registry_handles_are_shared_not_duplicated() {
    let r = Registry::new();
    let a = r.counter("shared_total", "x", &[("k", "v")]);
    let b = r.counter("shared_total", "x", &[("k", "v")]);
    a.inc();
    b.add(2);
    assert_eq!(a.get(), 3, "same series behind both handles");
    let text = r.render_prom();
    assert_eq!(
        text.matches("shared_total{k=\"v\"}").count(),
        1,
        "one series line, not one per handle"
    );
}

#[test]
#[should_panic(expected = "is not a gauge")]
fn name_reuse_across_types_panics() {
    let r = Registry::new();
    r.counter("mixed_total", "x", &[]);
    r.gauge("mixed_total", "x", &[]);
}

#[test]
fn reservoir_stays_bounded_over_ten_thousand_samples() {
    let res = Reservoir::new(256);
    for i in 0..10_000u64 {
        res.observe(i);
    }
    let (total, window, sorted) = res.snapshot();
    assert_eq!(total, 10_000, "lifetime count is exact");
    assert_eq!(window, 256, "window never exceeds capacity");
    assert_eq!(sorted.len(), 256);
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "snapshot is sorted"
    );
    // the ring keeps the newest samples: all survivors are recent
    assert!(*sorted.first().unwrap() >= 10_000 - 256);
    assert_eq!(res.capacity(), 256);
}

#[test]
fn percentiles_read_the_sorted_window() {
    let sorted: Vec<u64> = (1..=101).collect();
    assert_eq!(percentile(&sorted, 0.5), 51.0);
    assert_eq!(percentile(&sorted, 0.9), 91.0);
    assert_eq!(percentile(&sorted, 1.0), 101.0);
    assert_eq!(percentile(&[], 0.5), 0.0, "empty window reads zero");
}

#[test]
fn validator_rejects_malformed_expositions() {
    // non-cumulative buckets
    let bad = "# HELP x_seconds x\n# TYPE x_seconds histogram\n\
               x_seconds_bucket{le=\"0.1\"} 5\nx_seconds_bucket{le=\"1\"} 3\n\
               x_seconds_bucket{le=\"+Inf\"} 5\nx_seconds_sum 1\nx_seconds_count 5\n";
    assert!(validate_prom(bad).is_err(), "non-monotone buckets rejected");
    // +Inf bucket disagrees with _count
    let bad = "# HELP y_seconds y\n# TYPE y_seconds histogram\n\
               y_seconds_bucket{le=\"+Inf\"} 4\ny_seconds_sum 1\ny_seconds_count 5\n";
    assert!(validate_prom(bad).is_err(), "+Inf != _count rejected");
    // sample with no type announcement
    assert!(validate_prom("stray_metric 1\n").is_err());
    // garbage line
    assert!(validate_prom("not a metric line at all!\n").is_err());
}
