//! Trace-correctness tests against the real pipeline: spans captured
//! from a full `compute()` run strictly nest per thread, the Chrome
//! trace JSON round-trips through the driver's own JSON parser, and
//! request IDs stamp every span recorded while set.

use nascent_driver::json::{parse, Json};
use nascent_driver::{compute, harness, Mode, Request, RunConfig};
use nascent_obs::trace::{
    chrome_trace_json, current_request_id, set_request_id, validate_nesting, ScopedCollector,
};

const PROGRAM: &str = "program obstrace
 integer a(1:40)
 integer i
 do i = 1, 40
  a(i) = i + 1
 enddo
 print a(40)
end
";

fn traced_run(discharge: bool) -> Vec<nascent_obs::trace::SpanRecord> {
    let mut config = RunConfig::default();
    if discharge {
        config.discharge = nascent_driver::config::parse_discharge("on").unwrap();
    }
    let req = Request {
        program: PROGRAM.into(),
        config,
        mode: Mode::Certify,
    };
    let collector = ScopedCollector::begin();
    compute(&req, &harness::harness_limits()).expect("pipeline runs");
    collector.finish()
}

#[test]
fn pipeline_spans_cover_every_stage_and_nest() {
    let spans = traced_run(true);
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    for stage in [
        "pipeline",
        "parse",
        "naive-run",
        "optimize",
        "certify",
        "execute",
        "discharge",
        "optimize-function",
    ] {
        assert!(names.contains(&stage), "missing span `{stage}`: {names:?}");
    }
    validate_nesting(&spans).expect("spans strictly nest");

    // stage spans sit strictly inside the root pipeline span
    let root = spans.iter().find(|s| s.name == "pipeline").unwrap();
    for s in spans.iter().filter(|s| s.name != "pipeline") {
        assert!(
            s.ts_ns >= root.ts_ns && s.ts_ns + s.dur_ns <= root.ts_ns + root.dur_ns,
            "`{}` escapes the pipeline span",
            s.name
        );
    }
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let spans = traced_run(true);
    let rendered = chrome_trace_json(&spans);
    let doc = parse(&rendered).expect("chrome trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents array");
    };
    assert_eq!(events.len(), spans.len());
    for (e, s) in events.iter().zip(&spans) {
        assert_eq!(e.get("name").and_then(Json::as_str), Some(s.name));
        assert_eq!(e.get("cat").and_then(Json::as_str), Some(s.cat));
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        assert!(ph == "X" || ph == "i", "unknown phase {ph}");
        if ph == "X" {
            assert!(e.get("dur").is_some(), "complete event without dur");
        }
        assert!(e.get("args").is_some(), "event without args object");
    }
    // the optimize-function span carries its typed attributes
    let of = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("optimize-function"))
        .expect("optimize-function event");
    let args = of.get("args").unwrap();
    assert!(args.get("fn").and_then(Json::as_str).is_some());
    assert!(args.get("scheme").and_then(Json::as_str).is_some());
}

#[test]
fn spans_nest_per_thread_under_concurrency() {
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let spans = traced_run(i % 2 == 0);
                validate_nesting(&spans).expect("per-thread nesting holds");
                spans
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    // the merged stream still validates: nesting is checked per tid
    validate_nesting(&all).expect("merged multi-thread stream nests per tid");
    let tids: std::collections::HashSet<u64> = all.iter().map(|s| s.tid).collect();
    assert_eq!(tids.len(), 8, "each thread records under its own tid");
}

#[test]
fn request_id_stamps_every_span_while_set() {
    let prev = set_request_id(Some("r0123456789abcdef".into()));
    let spans = traced_run(false);
    set_request_id(prev);
    assert!(!spans.is_empty());
    for s in &spans {
        assert_eq!(
            s.request_id.as_deref(),
            Some("r0123456789abcdef"),
            "span `{}` lost the request id",
            s.name
        );
    }
    let rendered = chrome_trace_json(&spans);
    let doc = parse(&rendered).unwrap();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents");
    };
    for e in events {
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str),
            Some("r0123456789abcdef")
        );
    }
    assert_eq!(current_request_id(), None, "restored after the scope");
}

#[test]
fn minted_request_ids_are_well_formed_and_distinct() {
    let a = nascent_obs::mint_request_id();
    let b = nascent_obs::mint_request_id();
    assert_ne!(a, b);
    for id in [&a, &b] {
        assert_eq!(id.len(), 17);
        assert!(id.starts_with('r'));
        assert!(id[1..].chars().all(|c| c.is_ascii_hexdigit()));
    }
}
