//! The "recorder off is near-free" guarantee, bounded without a noisy
//! wall-vs-wall comparison: we count how many spans one full pipeline
//! run emits, microbenchmark the per-span cost of the *disabled* fast
//! path, and assert the product stays under 1% of the measured run
//! wall time. `bench_snapshot` reports the complementary measured
//! on-vs-off numbers in `BENCH_9.json`.

use std::hint::black_box;
use std::time::Instant;

use nascent_driver::{compute, harness, Mode, Request, RunConfig};
use nascent_obs::trace::{enabled, span, timed_span, ScopedCollector};

const PROGRAM: &str = "program obscost
 integer a(1:60)
 integer i
 do i = 1, 60
  a(i) = i * 2
 enddo
 print a(60)
end
";

fn request() -> Request {
    let mut config = RunConfig::default();
    config.discharge = nascent_driver::config::parse_discharge("on").unwrap();
    Request {
        program: PROGRAM.into(),
        config,
        mode: Mode::Certify,
    }
}

#[test]
fn disabled_recorder_costs_under_one_percent_of_a_run() {
    let limits = harness::harness_limits();
    let req = request();

    // spans one run emits (recorder on, scoped to this thread)
    let collector = ScopedCollector::begin();
    compute(&req, &limits).expect("runs");
    let spans_per_run = collector.finish().len();
    assert!(spans_per_run >= 10, "pipeline instrumentation is live");

    // per-span cost of the disabled fast path: the enabled() check plus
    // the inert guard. timed_span still reads the clock when disabled
    // (its duration feeds `Timings`, which predates the recorder), so
    // measure both shapes and bound with the dearer one.
    assert!(!enabled(), "recorder must be off for the microbenchmark");
    const ITERS: u32 = 200_000;
    let t = Instant::now();
    for i in 0..ITERS {
        let s = span(black_box("bench"), "t");
        black_box((s, i));
    }
    let span_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    let t = Instant::now();
    for i in 0..ITERS {
        let s = timed_span(black_box("bench"), "t");
        black_box((s.finish(), i));
    }
    let timed_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    let per_span_ns = span_ns.max(timed_ns);

    // run wall with the recorder off, best of 5
    let mut run_ns = u128::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        compute(&req, &limits).expect("runs");
        run_ns = run_ns.min(t.elapsed().as_nanos());
    }

    let budget_ns = spans_per_run as f64 * per_span_ns;
    let pct = 100.0 * budget_ns / run_ns as f64;
    eprintln!(
        "overhead: {spans_per_run} spans x {per_span_ns:.1} ns = {budget_ns:.0} ns \
         over a {run_ns} ns run = {pct:.3}%"
    );
    assert!(
        pct < 1.0,
        "disabled-recorder budget {pct:.3}% exceeds 1% \
         ({spans_per_run} spans x {per_span_ns:.1} ns vs {run_ns} ns run)"
    );
}
