//! Analyses over unusual CFG shapes: irreducible regions from `goto`,
//! multi-exit loops from `exit`, goto-formed natural loops, and deeply
//! nested structures.

use nascent_analysis::dom::{Dominators, PostDominators};
use nascent_analysis::loops::{insert_preheaders, LoopForest};
use nascent_analysis::reach::unique_defs;
use nascent_analysis::ssa::Ssa;
use nascent_frontend::compile;
use nascent_ir::Function;

fn main_fn(src: &str) -> Function {
    compile(src).unwrap().main_function().clone()
}

#[test]
fn irreducible_region_yields_no_natural_loop() {
    // two-entry cycle: neither cycle node dominates the other
    let f = main_fn(
        "program p
 integer x, c
 c = 0
 x = 0
 if (c == 1) then
  goto mid
 endif
 label top
 x = x + 1
 label mid
 x = x + 2
 if (x < 10) then
  goto top
 endif
 print x
end
",
    );
    let forest = LoopForest::compute(&f);
    assert!(
        forest.loops.is_empty(),
        "irreducible cycles are not natural loops: {:?}",
        forest.loops.len()
    );
}

#[test]
fn goto_formed_natural_loop_is_recognized() {
    let f = main_fn(
        "program p
 integer i
 i = 0
 label top
 i = i + 1
 if (i < 10) then
  goto top
 endif
 print i
end
",
    );
    let forest = LoopForest::compute(&f);
    assert_eq!(forest.loops.len(), 1);
    let l = &forest.loops[0];
    // bottom-test loop: the header holds the increment
    assert!(!l.blocks.is_empty());
}

#[test]
fn exit_creates_multiple_loop_exits_but_single_latch() {
    let f = main_fn(
        "program p
 integer i, s
 s = 0
 do i = 1, 10
  if (i == 5) then
   exit
  endif
  s = s + i
 enddo
 print s
end
",
    );
    let forest = LoopForest::compute(&f);
    assert_eq!(forest.loops.len(), 1);
    let l = &forest.loops[0];
    assert_eq!(l.latches.len(), 1);
    // the conditional exit means some body block branches out of the loop
    let exits = l
        .blocks
        .iter()
        .flat_map(|b| f.successors(*b))
        .filter(|s| !l.blocks.contains(s))
        .count();
    assert!(exits >= 2, "header exit + early exit");
    // IV is still recognized: increment in the unique latch
    assert!(l.iv.is_some());
}

#[test]
fn preheader_insertion_handles_goto_loops() {
    let mut f = main_fn(
        "program p
 integer i
 i = 0
 label top
 i = i + 1
 if (i < 10) then
  goto top
 endif
 print i
end
",
    );
    insert_preheaders(&mut f);
    let forest = LoopForest::compute(&f);
    for l in &forest.loops {
        assert!(l.preheader.is_some());
    }
    nascent_ir::validate::assert_valid(&nascent_ir::Program::single(f));
}

#[test]
fn postdominators_with_early_exit() {
    let f = main_fn(
        "program p
 integer i, s
 s = 0
 do i = 1, 10
  if (i == 5) then
   exit
  endif
  s = s + i
 enddo
 print s
end
",
    );
    let pd = PostDominators::compute(&f);
    let forest = LoopForest::compute(&f);
    let l = &forest.loops[0];
    // the conditional-exit block does NOT post-dominate the body entry's
    // continuation... more precisely: the accumulation block (after the
    // if) does not post-dominate the body entry, because the exit path
    // bypasses it
    let body_entry = l.body_entry.unwrap();
    let latch = l.latches[0];
    assert!(!pd.postdominates(latch, body_entry));
}

#[test]
fn ssa_handles_irreducible_flow() {
    let f = main_fn(
        "program p
 integer x, c
 c = 0
 x = 0
 if (c == 1) then
  goto mid
 endif
 label top
 x = x + 1
 label mid
 x = x + 2
 if (x < 10) then
  goto top
 endif
 print x
end
",
    );
    let dom = Dominators::compute(&f);
    let ssa = Ssa::compute(&f, &dom);
    // x needs phis at both cycle entries
    let phis = ssa
        .defs
        .iter()
        .filter(|d| matches!(d, nascent_analysis::ssa::SsaDef::Phi { .. }))
        .count();
    assert!(phis >= 2, "got {phis}");
}

#[test]
fn unique_defs_sees_through_goto() {
    let f = main_fn(
        "program p
 integer x, y
 x = 7
 goto skip
 x = 9
 label skip
 y = x + 1
 print y
end
",
    );
    let defs = unique_defs(&f);
    // x has TWO textual defs (one unreachable): not unique
    assert!(!defs.contains_key(&nascent_ir::VarId(0)));
    assert!(defs.contains_key(&nascent_ir::VarId(1)));
}

#[test]
fn deeply_nested_loops() {
    let f = main_fn(
        "program p
 integer a(1:6, 1:6)
 integer i, j, k, l
 do i = 1, 3
  do j = 1, 3
   do k = 1, 3
    do l = 1, 3
     a(i, j) = a(k, l) + 1
    enddo
   enddo
  enddo
 enddo
end
",
    );
    let forest = LoopForest::compute(&f);
    assert_eq!(forest.loops.len(), 4);
    let mut depths: Vec<u32> = forest.loops.iter().map(|l| l.depth).collect();
    depths.sort();
    assert_eq!(depths, vec![1, 2, 3, 4]);
    let order = forest.inner_to_outer();
    let ds: Vec<u32> = order.iter().map(|l| forest.loop_info(*l).depth).collect();
    let mut sorted = ds.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(ds, sorted, "inner-to-outer order is by descending depth");
}

#[test]
fn while_loop_with_conjunction_has_no_test_bound() {
    let f = main_fn(
        "program p
 integer i, n
 n = 10
 i = 0
 while (i < n and n > 0)
  i = i + 1
 endwhile
 print i
end
",
    );
    let forest = LoopForest::compute(&f);
    assert_eq!(forest.loops.len(), 1);
    let iv = forest.loops[0].iv.as_ref();
    // the IV may be detected, but the compound test gives no upper bound
    if let Some(iv) = iv {
        assert!(iv.upper.is_none());
    }
}
