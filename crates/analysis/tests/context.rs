//! Cache lifecycle tests for [`PassContext`]: hits hand out shared
//! results, declared invalidations drop exactly their tier, undeclared
//! CFG mutations are caught by the fingerprint, and cached results always
//! agree with from-scratch computation.

use std::sync::Arc;

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::dom::Dominators;
use nascent_analysis::loops::{insert_preheaders, LoopForest};
use nascent_analysis::reach::unique_defs;
use nascent_frontend::compile;
use nascent_ir::Function;
use nascent_suite::{suite, Scale};

const LOOP_SRC: &str = "program p
 integer a(1:20)
 integer i, j
 do i = 1, 10
  if (mod(i, 2) == 0) then
   j = i + 1
   a(j) = i
  endif
 enddo
end
";

fn loopy() -> Function {
    compile(LOOP_SRC).unwrap().functions.remove(0)
}

/// The frontend's structured lowering gives every loop a trampoline
/// preheader; reroute the header's outside predecessors around it so the
/// loop genuinely lacks one (the rerouted predecessor is a two-successor
/// branch, which does not qualify).
fn preheaderless() -> Function {
    let mut f = compile(
        "program p
 integer a(1:20)
 integer i, n
 n = 10
 i = 1
 if (n > 5) then
  while (i < 10)
   a(i) = i
   i = i + 1
  endwhile
 endif
end
",
    )
    .unwrap()
    .functions
    .remove(0);
    let forest = LoopForest::compute(&f);
    let l = &forest.loops[0];
    let ph = l.preheader.expect("frontend emitted a preheader");
    let header = l.header;
    let preds = f.predecessors();
    for &p in &preds[ph.index()] {
        f.block_mut(p).term.retarget(ph, header);
    }
    let check = LoopForest::compute(&f);
    assert!(
        check.loops.iter().any(|l| l.preheader.is_none()),
        "surgery produced a preheaderless loop"
    );
    f
}

#[test]
fn repeated_queries_share_one_computation() {
    let f = loopy();
    let mut ctx = PassContext::new();
    let d1 = ctx.dominators(&f);
    let d2 = ctx.dominators(&f);
    assert!(Arc::ptr_eq(&d1, &d2), "second query must be a cache hit");
    let l1 = ctx.loop_forest(&f);
    let l2 = ctx.loop_forest(&f);
    assert!(Arc::ptr_eq(&l1, &l2));
    let u1 = ctx.unique_defs(&f);
    let u2 = ctx.unique_defs(&f);
    assert!(Arc::ptr_eq(&u1, &u2));
    let dom_stat = ctx.timings.analyses["dom"];
    assert_eq!(dom_stat.computed, 1);
    assert!(dom_stat.hits >= 1, "hits recorded: {dom_stat:?}");
    // derived analyses reuse the cached inputs instead of recomputing
    let i1 = ctx.induction(&f);
    let i2 = ctx.induction(&f);
    assert!(Arc::ptr_eq(&i1, &i2));
    assert_eq!(ctx.timings.analyses["dom"].computed, 1);
    assert_eq!(ctx.timings.analyses["ssa"].computed, 1);
}

#[test]
fn statement_invalidation_keeps_cfg_tier_drops_statement_tier() {
    let f = loopy();
    let mut ctx = PassContext::new();
    let d1 = ctx.dominators(&f);
    let l1 = ctx.loop_forest(&f);
    let u1 = ctx.unique_defs(&f);
    let s1 = ctx.ssa(&f);
    let g0 = ctx.generation();

    ctx.invalidate(Invalidation::Statements);
    assert_eq!(ctx.generation(), g0 + 1);
    assert_eq!(ctx.timings.invalidations, 1);

    let d2 = ctx.dominators(&f);
    let l2 = ctx.loop_forest(&f);
    assert!(Arc::ptr_eq(&d1, &d2), "dominators survive Statements tier");
    assert!(
        Arc::ptr_eq(&l1, &l2),
        "loop forest survives Statements tier"
    );
    let u2 = ctx.unique_defs(&f);
    let s2 = ctx.ssa(&f);
    assert!(!Arc::ptr_eq(&u1, &u2), "unique defs must be recomputed");
    assert!(!Arc::ptr_eq(&s1, &s2), "SSA must be recomputed");
    assert_eq!(ctx.timings.analyses["unique-defs"].computed, 2);
    // the recomputation over an unchanged function agrees with the original
    assert_eq!(*u1, *u2);
}

#[test]
fn cfg_invalidation_drops_everything() {
    let f = loopy();
    let mut ctx = PassContext::new();
    let d1 = ctx.dominators(&f);
    ctx.invalidate(Invalidation::Cfg);
    let d2 = ctx.dominators(&f);
    assert!(!Arc::ptr_eq(&d1, &d2), "dominators dropped by Cfg tier");
    assert_eq!(ctx.timings.analyses["dom"].computed, 2);
    assert_eq!(ctx.timings.stale_detections, 0, "declared, not stale");
}

#[test]
fn ensure_preheaders_refreshes_dominators_and_loops() {
    let mut f = preheaderless();
    let mut ctx = PassContext::new();
    let d1 = ctx.dominators(&f);
    let l1 = ctx.loop_forest(&f);
    assert!(
        l1.loops.iter().any(|l| l.preheader.is_none()),
        "test needs a loop without a preheader"
    );
    let g0 = ctx.generation();
    assert!(ctx.ensure_preheaders(&mut f), "preheaders were inserted");
    assert!(ctx.generation() > g0);

    let d2 = ctx.dominators(&f);
    let l2 = ctx.loop_forest(&f);
    assert!(!Arc::ptr_eq(&d1, &d2), "dominators recomputed for new CFG");
    assert!(!Arc::ptr_eq(&l1, &l2), "loop forest recomputed for new CFG");
    assert!(
        l2.loops.iter().all(|l| l.preheader.is_some()),
        "refreshed forest sees every preheader"
    );
    // a CFG-tier invalidation was declared, so no stale detection fired
    assert_eq!(ctx.timings.stale_detections, 0);
    // second call is a no-op fast path
    assert!(!ctx.ensure_preheaders(&mut f));
}

#[test]
fn undeclared_cfg_mutation_is_detected_as_stale() {
    let mut f = preheaderless();
    let mut ctx = PassContext::new();
    let d1 = ctx.dominators(&f);
    let g0 = ctx.generation();

    // mutate the CFG behind the context's back (no invalidate() call)
    let changed = insert_preheaders(&mut f);
    assert!(changed, "mutation changed the CFG");

    let d2 = ctx.dominators(&f);
    assert!(
        !Arc::ptr_eq(&d1, &d2),
        "stale dominators must not be served"
    );
    assert_eq!(ctx.timings.stale_detections, 1);
    assert!(ctx.generation() > g0, "stale reset bumps the generation");

    // after the reset the cache serves the fresh result normally
    let d3 = ctx.dominators(&f);
    assert!(Arc::ptr_eq(&d2, &d3));
    assert_eq!(ctx.timings.stale_detections, 1);
}

#[test]
fn cached_analyses_agree_with_from_scratch_on_the_suite() {
    for b in suite(Scale::Small) {
        let p = compile(&b.source).expect("benchmark compiles");
        for f in &p.functions {
            let mut ctx = PassContext::new();
            // interleave queries so later ones run against a warm cache
            let dom_c = ctx.dominators(f);
            let loops_c = ctx.loop_forest(f);
            let udefs_c = ctx.unique_defs(f);
            let dom_c2 = ctx.dominators(f);
            assert!(Arc::ptr_eq(&dom_c, &dom_c2));

            let dom_s = Dominators::compute(f);
            for a in f.block_ids() {
                for b2 in f.block_ids() {
                    assert_eq!(
                        dom_c.dominates(a, b2),
                        dom_s.dominates(a, b2),
                        "{}: dominators disagree on ({a:?}, {b2:?})",
                        b.name
                    );
                }
            }
            let loops_s = LoopForest::compute(f);
            assert_eq!(loops_c.loops.len(), loops_s.loops.len(), "{}", b.name);
            for (lc, ls) in loops_c.loops.iter().zip(&loops_s.loops) {
                assert_eq!(lc.header, ls.header, "{}", b.name);
                assert_eq!(lc.blocks, ls.blocks, "{}", b.name);
                assert_eq!(lc.depth, ls.depth, "{}", b.name);
            }
            assert_eq!(*udefs_c, unique_defs(f), "{}", b.name);
        }
    }
}
