//! Property-based soundness tests for the value-range interval domain:
//! every `assume_*`/`step`/`join` operation must keep concretely-true
//! valuations inside the abstract state, `verdict` must agree with
//! concrete arithmetic, and nothing may panic near the `i64` extremes.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use std::collections::HashMap;

use nascent_analysis::vra::{eval_form, Env, Interval};
use nascent_ir::{BinOp, CheckExpr, Expr, LinForm, Stmt, UnOp, VarId};
use proptest::prelude::*;

/// Number of scalar variables in the synthetic universe.
const NVARS: usize = 4;

fn var(i: usize) -> VarId {
    VarId(i as u32)
}

/// A well-formed interval: closed, half-open, or top.
fn interval() -> impl Strategy<Value = Interval> {
    (0u8..4, -50i64..50, -50i64..50).prop_map(|(shape, a, b)| {
        let (lo, hi) = (a.min(b), a.max(b));
        match shape {
            0 => Interval::top(),
            1 => Interval {
                lo: Some(lo),
                hi: None,
            },
            2 => Interval {
                lo: None,
                hi: Some(hi),
            },
            _ => Interval {
                lo: Some(lo),
                hi: Some(hi),
            },
        }
    })
}

/// One interval per variable plus a concrete valuation clamped into each
/// interval — so the resulting `Env` models the valuation by
/// construction.
fn env_and_vals() -> impl Strategy<Value = (Vec<Interval>, Vec<i64>)> {
    (
        prop::collection::vec(interval(), NVARS),
        prop::collection::vec(-60i64..=60, NVARS),
    )
        .prop_map(|(ivs, raw)| {
            let vals = ivs
                .iter()
                .zip(&raw)
                .map(|(iv, &x)| {
                    let x = iv.hi.map_or(x, |h| x.min(h));
                    iv.lo.map_or(x, |l| x.max(l))
                })
                .collect();
            (ivs, vals)
        })
}

fn build(ivs: &[Interval], vals: &[i64]) -> (Env, HashMap<VarId, i64>) {
    let mut env = Env::top();
    for (i, iv) in ivs.iter().enumerate() {
        env.assume_interval(var(i), *iv);
    }
    let map = vals.iter().enumerate().map(|(i, &x)| (var(i), x)).collect();
    (env, map)
}

/// `c0 + Σ coeffs[i] * v_i`, as an expression tree.
fn linear_expr(coeffs: &[i64], c0: i64) -> Expr {
    let mut e = Expr::int(c0);
    for (i, &c) in coeffs.iter().enumerate() {
        e = Expr::add(e, Expr::bin(BinOp::Mul, Expr::int(c), Expr::var(var(i))));
    }
    e
}

fn coeffs() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-4i64..=4, NVARS)
}

/// Evaluates a comparison of two linear expressions; `None` on overflow.
fn eval_cmp(e: &Expr, map: &HashMap<VarId, i64>) -> Option<bool> {
    let Expr::Binary(op, l, r) = e else {
        return None;
    };
    let d = eval_form(&LinForm::from_expr(l), map)?
        .checked_sub(eval_form(&LinForm::from_expr(r), map)?)?;
    Some(match op {
        BinOp::Lt => d < 0,
        BinOp::Le => d <= 0,
        BinOp::Gt => d > 0,
        BinOp::Ge => d >= 0,
        BinOp::Eq => d == 0,
        BinOp::Ne => d != 0,
        _ => return None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The interval join is an upper bound: it contains any point drawn
    /// from either operand.
    #[test]
    fn interval_join_contains_both_operands(
        left in env_and_vals(),
        right in env_and_vals(),
    ) {
        let (a_ivs, a_vals) = left;
        let (b_ivs, b_vals) = right;
        for i in 0..NVARS {
            let j = a_ivs[i].join(b_ivs[i]);
            prop_assert!(j.contains(a_vals[i]), "join lost {} from left", a_vals[i]);
            prop_assert!(j.contains(b_vals[i]), "join lost {} from right", b_vals[i]);
        }
    }

    /// The environment join is a sound upper bound: it still models every
    /// valuation either input modeled.
    #[test]
    fn env_join_models_both_inputs(
        left in env_and_vals(),
        right in env_and_vals(),
    ) {
        let (a_ivs, a_vals) = left;
        let (b_ivs, b_vals) = right;
        let (a, a_map) = build(&a_ivs, &a_vals);
        let (b, b_map) = build(&b_ivs, &b_vals);
        let j = a.join(&b);
        prop_assert!(j.models(&a_map), "join dropped a left valuation");
        prop_assert!(j.models(&b_map), "join dropped a right valuation");
    }

    /// Assuming a fact that is concretely true for the valuation must not
    /// exclude the valuation.
    #[test]
    fn assume_le_keeps_true_valuations(
        state in env_and_vals(),
        cs in coeffs(),
        c0 in -20i64..20,
        slack in 0i64..10,
    ) {
        let (ivs, vals) = state;
        let (mut env, map) = build(&ivs, &vals);
        let form = LinForm::from_expr(&linear_expr(&cs, c0));
        let Some(value) = eval_form(&form, &map) else { return Ok(()) };
        let Some(bound) = value.checked_add(slack) else { return Ok(()) };
        env.assume_le(&form, bound);
        prop_assert!(env.models(&map), "true `form <= {bound}` excluded the valuation");
    }

    /// Same soundness contract for full branch conditions, including
    /// compound `and`/`or`/`not` shapes with their conservative negation.
    #[test]
    fn assume_cond_keeps_true_valuations(
        state in env_and_vals(),
        cs_l in coeffs(),
        cs_r in coeffs(),
        consts in (-20i64..20, -20i64..20),
        op_i in 0usize..6,
        shape in 0usize..8,
    ) {
        let (ivs, vals) = state;
        let (mut env, map) = build(&ivs, &vals);
        let ops = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne];
        let lhs = linear_expr(&cs_l, consts.0);
        let rhs = linear_expr(&cs_r, consts.1);
        let cmp_a = Expr::bin(ops[op_i], lhs.clone(), rhs.clone());
        let cmp_b = Expr::bin(ops[(op_i + 1) % 6], rhs, lhs);
        let (Some(ta), Some(tb)) = (eval_cmp(&cmp_a, &map), eval_cmp(&cmp_b, &map)) else {
            return Ok(());
        };
        let (cond, truth) = match shape % 4 {
            0 => (cmp_a, ta),
            1 => (Expr::bin(BinOp::And, cmp_a, cmp_b), ta && tb),
            2 => (Expr::bin(BinOp::Or, cmp_a, cmp_b), ta || tb),
            _ => (Expr::Unary(UnOp::Not, Box::new(cmp_a)), !ta),
        };
        // exercise both polarities: assume the real truth value, or flip
        // the condition with `not` so the flipped truth is still real
        let (cond, truth) = if shape < 4 {
            (cond, truth)
        } else {
            (Expr::Unary(UnOp::Not, Box::new(cond)), !truth)
        };
        env.assume_cond(&cond, truth);
        prop_assert!(env.models(&map), "true branch fact excluded the valuation");
    }

    /// The assignment transfer function tracks concrete execution: after
    /// `step`, the updated valuation is still modeled.
    #[test]
    fn step_assign_tracks_concrete_execution(
        state in env_and_vals(),
        cs in coeffs(),
        c0 in -20i64..20,
        target in 0usize..NVARS,
        quadratic in 0u8..2,
    ) {
        let (ivs, vals) = state;
        let (mut env, mut map) = build(&ivs, &vals);
        let mut value = linear_expr(&cs, c0);
        if quadratic == 1 {
            // exercise the degree-2 product path too
            value = Expr::add(
                value,
                Expr::bin(BinOp::Mul, Expr::var(var(0)), Expr::var(var(1))),
            );
        }
        let Some(concrete) = eval_form(&LinForm::from_expr(&value), &map) else {
            return Ok(());
        };
        env.step(&Stmt::Assign { var: var(target), value });
        map.insert(var(target), concrete);
        prop_assert!(env.models(&map), "assignment transfer excluded the concrete result");
    }

    /// A definite verdict must agree with concrete arithmetic on any
    /// modeled valuation.
    #[test]
    fn verdict_agrees_with_concrete_arithmetic(
        state in env_and_vals(),
        cs in coeffs(),
        c0 in -20i64..20,
        bound in -100i64..100,
    ) {
        let (ivs, vals) = state;
        let (env, map) = build(&ivs, &vals);
        let form = LinForm::from_expr(&linear_expr(&cs, c0));
        let check = CheckExpr::new(form, bound);
        let Some(value) = eval_form(check.form(), &map) else { return Ok(()) };
        match env.verdict(&check) {
            Some(true) => prop_assert!(
                value <= check.bound(),
                "verdict true but {value} > {}", check.bound()
            ),
            Some(false) => prop_assert!(
                value > check.bound(),
                "verdict false but {value} <= {}", check.bound()
            ),
            None => {}
        }
    }

    /// No panic (overflow, wrap) anywhere near the `i64` extremes; when
    /// the extreme fact happens to be concretely true, it must also stay
    /// sound.
    #[test]
    fn extreme_magnitudes_do_not_wrap(
        state in env_and_vals(),
        coeff_i in 0usize..6,
        bound_i in 0usize..5,
        target in 0usize..NVARS,
    ) {
        let (ivs, vals) = state;
        let coeff = [i64::MIN, i64::MIN + 1, -1, 1, i64::MAX - 1, i64::MAX][coeff_i];
        let bound = [i64::MIN, i64::MIN + 1, 0, i64::MAX - 1, i64::MAX][bound_i];
        let (mut env, map) = build(&ivs, &vals);
        let e = Expr::bin(BinOp::Mul, Expr::int(coeff), Expr::var(var(target)));
        let form = LinForm::from_expr(&e);
        env.assume_le(&form, bound);
        if let Some(value) = eval_form(&form, &map) {
            if value <= bound {
                prop_assert!(env.models(&map), "true extreme fact excluded the valuation");
            }
        }
    }
}
