//! Program analyses for the `nascent-rc` range-check optimizer:
//!
//! * [`dom`] — dominator trees and dominance frontiers
//!   (Cooper–Harvey–Kennedy),
//! * [`loops`] — natural-loop forest, preheader insertion, loop-invariance
//!   and basic-induction-variable descriptors (init / step / body-valid
//!   bounds) used by the paper's preheader insertion schemes,
//! * [`dataflow`] — a generic worklist solver for forward/backward
//!   problems, instantiated by the optimizer's availability and
//!   anticipatability systems,
//! * [`reach`] — lightweight reaching-definition helpers (unique static
//!   definitions, straight-line reaching definitions) used by induction
//!   expression construction and the check implication graph,
//! * [`ssa`] — SSA overlay construction (Cytron et al. phi placement plus
//!   renaming) kept as a side structure over the unchanged IR,
//! * [`induction`] — SSA-based induction-variable classification
//!   (invariant / basic / linear / polynomial, Gerlek–Stoltz–Wolfe style),
//!   reproducing the paper's Figure 2,
//! * [`vra`] — symbolic value-range analysis (intervals + symbolic
//!   bounds + per-array range summaries) backing the static-discharge
//!   tier; the certifier keeps its own independent twin in
//!   `nascent-verify`.

pub mod context;
pub mod dataflow;
pub mod dom;
pub mod induction;
pub mod loops;
pub mod reach;
pub mod ssa;
pub mod vra;

pub use context::{
    cfg_fingerprint, AnalysisStat, InductionClasses, Invalidation, PassContext, PassStat, Timings,
};
pub use dataflow::{solve, Direction, Problem, Solution};
pub use dom::{Dominators, PostDominators};
pub use induction::{classify_function, InductionAnalysis, InductionClass};
pub use loops::{insert_preheaders, insert_preheaders_with, LoopForest, LoopId, LoopInfo, LoopIv};
pub use reach::{unique_defs, DefSite, UniqueDefs};
pub use ssa::Ssa;
