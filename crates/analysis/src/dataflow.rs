//! A generic iterative data-flow solver.
//!
//! The optimizer's availability (forward) and anticipatability (backward)
//! systems over the check domain, and the four predicate systems of lazy
//! code motion, are all instances of [`Problem`] solved by [`solve`].

use std::collections::VecDeque;

use nascent_ir::{BlockId, Function};

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (entry to exit).
    Forward,
    /// Facts flow against CFG edges (exit to entry).
    Backward,
}

/// A data-flow problem over per-block facts.
///
/// For a forward problem, `transfer` maps the fact at block entry to the
/// fact at block exit; `meet` combines the exit facts of predecessors.
/// For a backward problem the roles are mirrored.
pub trait Problem {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Fact at the boundary: function entry (forward) or every function
    /// exit (backward).
    fn boundary(&self) -> Self::Fact;

    /// Initial optimistic fact for all non-boundary program points.
    fn top(&self) -> Self::Fact;

    /// Lattice meet.
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// In-place meet: `*acc = meet(acc, other)`.
    ///
    /// The solver accumulates the confluence of predecessor (successor)
    /// facts through this method, cloning only the first one. Problems
    /// whose facts support destructive meets (e.g. bit sets) should
    /// override it to avoid the default's intermediate allocation.
    fn meet_with(&self, acc: &mut Self::Fact, other: &Self::Fact) {
        *acc = self.meet(acc, other);
    }

    /// Block transfer function.
    fn transfer(&self, f: &Function, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// Solution: the fact at each block entry and exit.
///
/// For both directions, `entry[b]` is the fact holding immediately before
/// the first statement of `b`, and `exit[b]` immediately after the
/// terminator.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each block's entry.
    pub entry: Vec<F>,
    /// Fact at each block's exit.
    pub exit: Vec<F>,
    /// Number of worklist iterations used (for the compile-time tables).
    pub iterations: u64,
}

/// FIFO worklist with O(1) pop/push and an `on_queue` bit per block, so
/// membership tests and dequeues cost O(1) instead of the O(n) scans a
/// plain `Vec` (shift on `remove(0)`, linear `contains`) would pay.
/// Scheduling order is identical to the naive FIFO it replaces.
struct Worklist {
    queue: VecDeque<BlockId>,
    on_queue: Vec<bool>,
}

impl Worklist {
    fn seeded(init: impl IntoIterator<Item = BlockId>, n: usize) -> Worklist {
        let mut w = Worklist {
            queue: VecDeque::with_capacity(n),
            on_queue: vec![false; n],
        };
        for b in init {
            w.push(b);
        }
        w
    }

    fn push(&mut self, b: BlockId) {
        if !std::mem::replace(&mut self.on_queue[b.index()], true) {
            self.queue.push_back(b);
        }
    }

    fn pop(&mut self) -> Option<BlockId> {
        let b = self.queue.pop_front()?;
        self.on_queue[b.index()] = false;
        Some(b)
    }
}

/// Solves a data-flow problem to fixpoint with a worklist.
pub fn solve<P: Problem>(f: &Function, p: &P) -> Solution<P::Fact> {
    let n = f.blocks.len();
    let preds = f.predecessors();
    let rpo = f.reverse_postorder();
    let mut entry: Vec<P::Fact> = vec![p.top(); n];
    let mut exit: Vec<P::Fact> = vec![p.top(); n];
    let mut iterations: u64 = 0;

    match p.direction() {
        Direction::Forward => {
            let mut work = Worklist::seeded(rpo.iter().copied(), n);
            while let Some(b) = work.pop() {
                iterations += 1;
                let in_fact = if b == f.entry {
                    p.boundary()
                } else {
                    let mut acc: Option<P::Fact> = None;
                    for &q in &preds[b.index()] {
                        match &mut acc {
                            None => acc = Some(exit[q.index()].clone()),
                            Some(a) => p.meet_with(a, &exit[q.index()]),
                        }
                    }
                    acc.unwrap_or_else(|| p.top())
                };
                let out_fact = p.transfer(f, b, &in_fact);
                let changed = entry[b.index()] != in_fact || exit[b.index()] != out_fact;
                entry[b.index()] = in_fact;
                if changed {
                    exit[b.index()] = out_fact;
                    for s in f.successors(b) {
                        work.push(s);
                    }
                }
            }
        }
        Direction::Backward => {
            let mut work = Worklist::seeded(rpo.iter().rev().copied(), n);
            while let Some(b) = work.pop() {
                iterations += 1;
                let succs = f.successors(b);
                let out_fact = if succs.is_empty() {
                    p.boundary()
                } else {
                    let mut acc: Option<P::Fact> = None;
                    for &s in &succs {
                        match &mut acc {
                            None => acc = Some(entry[s.index()].clone()),
                            Some(a) => p.meet_with(a, &entry[s.index()]),
                        }
                    }
                    acc.expect("non-empty succs")
                };
                let in_fact = p.transfer(f, b, &out_fact);
                let changed = exit[b.index()] != out_fact || entry[b.index()] != in_fact;
                exit[b.index()] = out_fact;
                if changed {
                    entry[b.index()] = in_fact;
                    for &q in &preds[b.index()] {
                        work.push(q);
                    }
                }
            }
        }
    }
    Solution {
        entry,
        exit,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_ir::Stmt;
    use nascent_ir::VarId;
    use std::collections::BTreeSet;

    /// Classic reaching-"constant-ness": forward must-be-assigned analysis.
    /// Fact = set of variables assigned on every path.
    struct MustAssigned;

    impl Problem for MustAssigned {
        type Fact = Option<BTreeSet<VarId>>; // None = top (unvisited)

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> Self::Fact {
            Some(BTreeSet::new())
        }

        fn top(&self) -> Self::Fact {
            None
        }

        fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            match (a, b) {
                (None, x) | (x, None) => x.clone(),
                (Some(a), Some(b)) => Some(a.intersection(b).cloned().collect()),
            }
        }

        fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone()?;
            for s in &f.block(b).stmts {
                if let Some(v) = s.defined_var() {
                    out.insert(v);
                }
            }
            Some(out)
        }
    }

    #[test]
    fn forward_meet_is_path_intersection() {
        let p = compile(
            "program p\n integer x, y, c\n c = 1\n if (c > 0) then\n x = 1\n else\n y = 2\n endif\n print c\nend\n",
        )
        .unwrap();
        let f = p.main_function();
        let sol = solve(f, &MustAssigned);
        // find the join block: the one containing the Emit
        let join = f
            .block_ids()
            .find(|b| f.block(*b).stmts.iter().any(|s| matches!(s, Stmt::Emit(_))))
            .unwrap();
        let at_join = sol.entry[join.index()].as_ref().unwrap();
        // c assigned on both paths; x and y only on one each
        assert!(at_join.contains(&VarId(2)));
        assert!(!at_join.contains(&VarId(0)));
        assert!(!at_join.contains(&VarId(1)));
    }

    /// Backward liveness over a tiny universe.
    struct Live;

    impl Problem for Live {
        type Fact = BTreeSet<VarId>;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn boundary(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn top(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            a.union(b).cloned().collect()
        }

        fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
            let mut live = fact.clone();
            // include terminator uses
            if let nascent_ir::Terminator::Branch { cond, .. } = &f.block(b).term {
                live.extend(cond.vars());
            }
            for s in f.block(b).stmts.iter().rev() {
                if let Some(v) = s.defined_var() {
                    live.remove(&v);
                }
                match s {
                    Stmt::Assign { value, .. } => live.extend(value.vars()),
                    Stmt::Emit(e) => live.extend(e.vars()),
                    _ => {}
                }
            }
            live
        }
    }

    /// The original solver: `Vec` worklist with `remove(0)` pops and
    /// linear `contains` membership scans. Kept as the semantic
    /// reference — the `VecDeque` + `on_queue` worklist must schedule
    /// blocks in exactly the same order, so `iterations` (reported in
    /// the compile-time tables) must not regress.
    fn solve_reference<P: Problem>(f: &Function, p: &P) -> Solution<P::Fact> {
        let n = f.blocks.len();
        let preds = f.predecessors();
        let rpo = f.reverse_postorder();
        let mut entry: Vec<P::Fact> = vec![p.top(); n];
        let mut exit: Vec<P::Fact> = vec![p.top(); n];
        let mut iterations: u64 = 0;
        let pop_front = |v: &mut Vec<BlockId>| -> Option<BlockId> {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        };
        match p.direction() {
            Direction::Forward => {
                let mut work: Vec<BlockId> = rpo.clone();
                while let Some(b) = pop_front(&mut work) {
                    iterations += 1;
                    let in_fact = if b == f.entry {
                        p.boundary()
                    } else {
                        let mut acc: Option<P::Fact> = None;
                        for &q in &preds[b.index()] {
                            acc = Some(match acc {
                                None => exit[q.index()].clone(),
                                Some(a) => p.meet(&a, &exit[q.index()]),
                            });
                        }
                        acc.unwrap_or_else(|| p.top())
                    };
                    let out_fact = p.transfer(f, b, &in_fact);
                    let changed = entry[b.index()] != in_fact || exit[b.index()] != out_fact;
                    entry[b.index()] = in_fact;
                    if changed {
                        exit[b.index()] = out_fact;
                        for s in f.successors(b) {
                            if !work.contains(&s) {
                                work.push(s);
                            }
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut work: Vec<BlockId> = rpo.iter().rev().copied().collect();
                while let Some(b) = pop_front(&mut work) {
                    iterations += 1;
                    let succs = f.successors(b);
                    let out_fact = if succs.is_empty() {
                        p.boundary()
                    } else {
                        let mut acc: Option<P::Fact> = None;
                        for &s in &succs {
                            acc = Some(match acc {
                                None => entry[s.index()].clone(),
                                Some(a) => p.meet(&a, &entry[s.index()]),
                            });
                        }
                        acc.expect("non-empty succs")
                    };
                    let in_fact = p.transfer(f, b, &out_fact);
                    let changed = exit[b.index()] != out_fact || entry[b.index()] != in_fact;
                    exit[b.index()] = out_fact;
                    if changed {
                        entry[b.index()] = in_fact;
                        for &q in &preds[b.index()] {
                            if !work.contains(&q) {
                                work.push(q);
                            }
                        }
                    }
                }
            }
        }
        Solution {
            entry,
            exit,
            iterations,
        }
    }

    #[test]
    fn worklist_iterations_do_not_regress() {
        // both directions, on CFGs with branches, joins and loops
        let sources = [
            "program p\n integer x, y, c\n c = 1\n if (c > 0) then\n x = 1\n else\n y = 2\n endif\n print c\nend\n",
            "program p\n integer i, s, n\n n = 10\n s = 0\n do i = 1, n\n s = s + i\n enddo\n print s\nend\n",
            "program p\n integer i, j, s\n s = 0\n do i = 1, 5\n do j = 1, 5\n s = s + j\n enddo\n enddo\n print s\nend\n",
        ];
        for src in sources {
            let p = compile(src).unwrap();
            let f = p.main_function();
            let fast = solve(f, &MustAssigned);
            let slow = solve_reference(f, &MustAssigned);
            assert_eq!(fast.iterations, slow.iterations, "forward on {src:?}");
            assert_eq!(fast.entry, slow.entry);
            assert_eq!(fast.exit, slow.exit);
            let fast = solve(f, &Live);
            let slow = solve_reference(f, &Live);
            assert_eq!(fast.iterations, slow.iterations, "backward on {src:?}");
            assert_eq!(fast.entry, slow.entry);
            assert_eq!(fast.exit, slow.exit);
        }
    }

    #[test]
    fn backward_liveness_through_loop() {
        let p = compile(
            "program p\n integer i, s, n\n n = 10\n s = 0\n do i = 1, n\n s = s + i\n enddo\n print s\nend\n",
        )
        .unwrap();
        let f = p.main_function();
        let sol = solve(f, &Live);
        // At function entry nothing is live (everything assigned first).
        assert!(sol.entry[f.entry.index()].is_empty());
        // s (VarId 1) is live at entry to the loop header.
        let header = f
            .block_ids()
            .find(|b| matches!(f.block(*b).term, nascent_ir::Terminator::Branch { .. }))
            .unwrap();
        assert!(sol.entry[header.index()].contains(&VarId(1)));
        assert!(sol.iterations > f.blocks.len() as u64); // looped at least once
    }
}
