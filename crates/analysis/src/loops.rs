//! Natural-loop forest, preheader insertion, loop invariance and basic
//! induction-variable descriptors.
//!
//! The paper's preheader insertion schemes (`LI`, `LLS`) need, per loop:
//!
//! * a *preheader* block executed exactly when the loop is entered from
//!   outside (created by [`insert_preheaders`]),
//! * the set of variables defined inside the loop (for invariance),
//! * a *basic induction variable* descriptor ([`LoopIv`]): the counted
//!   loop's variable, its constant step, its initial value as a canonical
//!   form evaluable in the preheader, and bounds on the variable that hold
//!   at every point of the loop body (derived from the header test and the
//!   initial value). These drive loop-limit substitution and the guard of
//!   the inserted `Cond-check`.

use std::collections::BTreeSet;

use nascent_ir::{BinOp, Block, BlockId, CheckExpr, Expr, Function, LinForm, Stmt, VarId};

use crate::dom::Dominators;

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The loop's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Basic induction variable descriptor for a counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopIv {
    /// The induction variable.
    pub var: VarId,
    /// Constant step added once per iteration (non-zero).
    pub step: i64,
    /// Initial value as a canonical form, evaluable in the preheader.
    pub init: Option<LinForm>,
    /// Form `u` with `var <= u` at every body point (entry value of `u`).
    pub upper: Option<LinForm>,
    /// Form `l` with `var >= l` at every body point (entry value of `l`).
    pub lower: Option<LinForm>,
}

impl LoopIv {
    /// The guard expressing "the loop body executes at least once":
    /// for positive step `init <= upper`, for negative step
    /// `lower <= init`. `None` when the needed pieces are unknown.
    pub fn entry_guard(&self) -> Option<CheckExpr> {
        let init = self.init.as_ref()?;
        if self.step > 0 {
            let upper = self.upper.as_ref()?;
            Some(CheckExpr::new(init.sub(upper), 0))
        } else {
            let lower = self.lower.as_ref()?;
            Some(CheckExpr::new(lower.sub(init), 0))
        }
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop header (target of the back edges).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Unique out-of-loop predecessor of the header whose only successor
    /// is the header, if one exists (see [`insert_preheaders`]).
    pub preheader: Option<BlockId>,
    /// First block of the loop body: the header's in-loop successor (the
    /// paper's "beginning of the loop body"). `None` when the header's
    /// successors are both in or both out of the loop.
    pub body_entry: Option<BlockId>,
    /// Variables defined by any statement inside the loop.
    pub defined_vars: BTreeSet<VarId>,
    /// Basic induction variable, when recognized.
    pub iv: Option<LoopIv>,
}

impl LoopInfo {
    /// True if no variable of `form` is defined inside the loop.
    pub fn is_invariant(&self, form: &LinForm) -> bool {
        form.vars().iter().all(|v| !self.defined_vars.contains(v))
    }

    /// True if `form` is invariant except for a linear occurrence of the
    /// loop's induction variable: `form = c·iv + rest` with `rest`
    /// invariant and `c != 0`. Returns the coefficient.
    pub fn linear_in_iv(&self, form: &LinForm) -> Option<i64> {
        let iv = self.iv.as_ref()?;
        let c = form.coeff_of_var(iv.var);
        if c == 0 {
            return None;
        }
        // every term mentioning iv.var must be exactly the 1-degree term,
        // and all other terms must be invariant
        for (t, _) in form.terms() {
            if t.is_var(iv.var) {
                continue;
            }
            if t.vars().contains(&iv.var) {
                return None; // iv inside a product or opaque atom
            }
            if t.vars().iter().any(|v| self.defined_vars.contains(v)) {
                return None;
            }
        }
        Some(c)
    }
}

/// The loop forest of a function.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// All loops; outer loops have smaller `depth`.
    pub loops: Vec<LoopInfo>,
    /// Innermost loop containing each block, if any.
    pub innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Computes the loop forest (dominators are computed internally).
    pub fn compute(f: &Function) -> LoopForest {
        let dom = Dominators::compute(f);
        Self::compute_with(f, &dom)
    }

    /// Computes the loop forest reusing existing dominator information.
    pub fn compute_with(f: &Function, dom: &Dominators) -> LoopForest {
        let preds = f.predecessors();
        // find back edges n -> h with h dominating n, group by header
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for n in f.block_ids() {
            if !dom.is_reachable(n) {
                continue;
            }
            for h in f.successors(n) {
                if dom.dominates(h, n) {
                    match headers.iter().position(|&x| x == h) {
                        Some(i) => latches_of[i].push(n),
                        None => {
                            headers.push(h);
                            latches_of.push(vec![n]);
                        }
                    }
                }
            }
        }
        // loop bodies: backward reachability from latches, stopping at header
        let mut loops: Vec<LoopInfo> = Vec::new();
        for (h, latches) in headers.iter().zip(latches_of.iter()) {
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(*h);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if blocks.insert(b) {
                    for &p in &preds[b.index()] {
                        if dom.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                } else if b == *h {
                    // header: do not walk past it
                }
            }
            loops.push(LoopInfo {
                header: *h,
                latches: latches.clone(),
                blocks,
                parent: None,
                children: Vec::new(),
                depth: 0,
                preheader: None,
                body_entry: None,
                defined_vars: BTreeSet::new(),
                iv: None,
            });
        }
        // nesting: parent = smallest strict superset
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].blocks.len());
        for (oi, &i) in order.iter().enumerate() {
            for &j in &order[oi + 1..] {
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.contains(&loops[i].header)
                    && loops[j].blocks.is_superset(&loops[i].blocks)
                {
                    loops[i].parent = Some(LoopId(j as u32));
                    break;
                }
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                let id = LoopId(i as u32);
                loops[p.index()].children.push(id);
            }
        }
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }
        // innermost map
        let mut innermost: Vec<Option<LoopId>> = vec![None; f.blocks.len()];
        for b in f.block_ids() {
            let mut best: Option<usize> = None;
            for (i, l) in loops.iter().enumerate() {
                if l.blocks.contains(&b)
                    && best.is_none_or(|cur| loops[cur].blocks.len() > l.blocks.len())
                {
                    best = Some(i);
                }
            }
            innermost[b.index()] = best.map(|i| LoopId(i as u32));
        }
        // preheader, body entry, defined vars, iv
        for l in &mut loops {
            let outside: Vec<BlockId> = preds[l.header.index()]
                .iter()
                .copied()
                .filter(|p| !l.blocks.contains(p) && dom.is_reachable(*p))
                .collect();
            if let [p] = outside[..] {
                if f.successors(p).len() == 1 {
                    l.preheader = Some(p);
                }
            }
            let in_loop: Vec<BlockId> = f
                .successors(l.header)
                .into_iter()
                .filter(|s| l.blocks.contains(s))
                .collect();
            if let [b] = in_loop[..] {
                l.body_entry = Some(b);
            }
            for &b in &l.blocks {
                for s in &f.block(b).stmts {
                    if let Some(v) = s.defined_var() {
                        l.defined_vars.insert(v);
                    }
                }
            }
        }
        let ivs: Vec<_> = loops.iter().map(|l| detect_iv(f, &preds, l)).collect();
        for (l, iv) in loops.iter_mut().zip(ivs) {
            l.iv = iv;
        }
        LoopForest { loops, innermost }
    }

    /// Loop ids ordered inner-to-outer (deepest first), as required by the
    /// paper's preheader insertion ("all loops are processed in an inner
    /// loop to outer loop manner").
    pub fn inner_to_outer(&self) -> Vec<LoopId> {
        let mut ids: Vec<LoopId> = (0..self.loops.len() as u32).map(LoopId).collect();
        ids.sort_by_key(|l| std::cmp::Reverse(self.loops[l.index()].depth));
        ids
    }

    /// Access a loop.
    pub fn loop_info(&self, l: LoopId) -> &LoopInfo {
        &self.loops[l.index()]
    }

    /// Innermost loop containing block `b`.
    pub fn innermost_at(&self, b: BlockId) -> Option<LoopId> {
        self.innermost[b.index()]
    }
}

/// Ensures every loop header has a preheader: a dedicated block whose only
/// successor is the header and through which every out-of-loop entry
/// passes. Returns `true` if the function was modified (the caller must
/// recompute any cached analyses).
pub fn insert_preheaders(f: &mut Function) -> bool {
    let forest = LoopForest::compute(f);
    insert_preheaders_with(f, &forest)
}

/// [`insert_preheaders`] with a caller-provided loop forest (which must
/// describe the current `f`); avoids recomputing dominators when the
/// caller already holds a fresh forest.
pub fn insert_preheaders_with(f: &mut Function, forest: &LoopForest) -> bool {
    let mut changed = false;
    // collect (header, out-of-loop preds) first, then mutate
    let preds = f.predecessors();
    let mut work: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for l in &forest.loops {
        if l.preheader.is_some() {
            continue;
        }
        let outside: Vec<BlockId> = preds[l.header.index()]
            .iter()
            .copied()
            .filter(|p| !l.blocks.contains(p))
            .collect();
        work.push((l.header, outside));
    }
    for (header, outside) in work {
        let ph = f.add_block(Block::jumping_to(header));
        for p in outside {
            f.block_mut(p).term.retarget(header, ph);
        }
        changed = true;
    }
    changed
}

/// Recognizes the basic induction variable of a loop:
///
/// * exactly one definition of the variable inside the loop,
/// * of the shape `v = v + step` with constant non-zero `step`,
/// * located in the loop's unique latch (so the header-test bound on `v`
///   holds at every body point before the increment; checks textually
///   after the increment are excluded by the anticipatability kill rule).
fn detect_iv(f: &Function, preds: &[Vec<BlockId>], l: &LoopInfo) -> Option<LoopIv> {
    let [latch] = l.latches[..] else { return None };
    // find candidate increments in the latch
    let mut candidate: Option<(VarId, i64)> = None;
    for s in &f.block(latch).stmts {
        if let Stmt::Assign { var, value } = s {
            let form = LinForm::from_expr(value);
            if form.coeff_of_var(*var) == 1 && form.num_terms() == 1 && form.constant_part() != 0 {
                if candidate.is_some() {
                    continue;
                }
                candidate = Some((*var, form.constant_part()));
            }
        }
    }
    let (var, step) = candidate?;
    // the increment must be the only def of var in the whole loop
    let mut defs = 0;
    for &b in &l.blocks {
        for s in &f.block(b).stmts {
            if s.defined_var() == Some(var) {
                defs += 1;
            }
        }
    }
    if defs != 1 {
        return None;
    }
    // header test bound
    let mut upper = None;
    let mut lower = None;
    if let nascent_ir::Terminator::Branch {
        cond,
        then_bb,
        else_bb,
    } = &f.block(l.header).term
    {
        let then_in = l.blocks.contains(then_bb);
        let else_in = l.blocks.contains(else_bb);
        if then_in != else_in {
            if let Some((kind, bound)) = comparison_bound(cond, var, then_in) {
                // the bound form must be invariant in the loop to hold at
                // every iteration with its preheader value
                if bound
                    .vars()
                    .iter()
                    .all(|v| !l.defined_vars.contains(v) && *v != var)
                {
                    match kind {
                        BoundKind::Upper => upper = Some(bound),
                        BoundKind::Lower => lower = Some(bound),
                    }
                }
            }
        }
    }
    // initial value: reaching definition walking back from the header
    // through out-of-loop single-predecessor chain
    let init = find_init(f, preds, l, var);
    // init provides the other bound (v is monotone): the init form is
    // evaluated in the preheader, so it need not be loop-invariant
    if step > 0 {
        if lower.is_none() {
            lower = init.clone();
        }
    } else if upper.is_none() {
        upper = init.clone();
    }
    Some(LoopIv {
        var,
        step,
        init,
        upper,
        lower,
    })
}

enum BoundKind {
    Upper,
    Lower,
}

/// Extracts `var <= form` / `var >= form` valid while the loop continues.
/// `taken` tells whether the loop continues on the true or false branch.
fn comparison_bound(cond: &Expr, var: VarId, taken_on_true: bool) -> Option<(BoundKind, LinForm)> {
    let Expr::Binary(op, l, r) = cond else {
        return None;
    };
    if !op.is_comparison() || matches!(op, BinOp::Eq | BinOp::Ne) {
        return None;
    }
    // normalize to: var OP rhs-form
    let (op, rhs) = if matches!(**l, Expr::Var(v) if v == var) && !r.uses_var(var) {
        (*op, LinForm::from_expr(r))
    } else if matches!(**r, Expr::Var(v) if v == var) && !l.uses_var(var) {
        (op.swapped(), LinForm::from_expr(l))
    } else {
        return None;
    };
    // if the loop continues on the false branch, negate the comparison
    let op = if taken_on_true {
        op
    } else {
        match op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        }
    };
    Some(match op {
        BinOp::Le => (BoundKind::Upper, rhs),
        BinOp::Lt => (BoundKind::Upper, rhs.sub(&LinForm::constant(1))),
        BinOp::Ge => (BoundKind::Lower, rhs),
        BinOp::Gt => (BoundKind::Lower, rhs.add(&LinForm::constant(1))),
        _ => unreachable!(),
    })
}

/// Walks backward from the loop entry through the out-of-loop
/// single-predecessor chain looking for the reaching definition of `var`;
/// returns its canonical form when it is a plain assignment.
fn find_init(f: &Function, preds: &[Vec<BlockId>], l: &LoopInfo, var: VarId) -> Option<LinForm> {
    // start from the unique out-of-loop predecessor (preheader or direct)
    let outside: Vec<BlockId> = preds[l.header.index()]
        .iter()
        .copied()
        .filter(|p| !l.blocks.contains(p))
        .collect();
    let [mut cur] = outside[..] else { return None };
    // variables redefined between the init site and the loop entry would
    // make the init form evaluate differently at the end of the preheader
    let mut redefined: BTreeSet<VarId> = BTreeSet::new();
    for _ in 0..64 {
        for s in f.block(cur).stmts.iter().rev() {
            if s.defined_var() == Some(var) {
                return match s {
                    Stmt::Assign { value, .. } => {
                        let form = LinForm::from_expr(value);
                        if form.vars().iter().any(|v| redefined.contains(v)) {
                            None
                        } else {
                            Some(form)
                        }
                    }
                    _ => None,
                };
            }
            if let Some(d) = s.defined_var() {
                redefined.insert(d);
            }
        }
        match preds[cur.index()][..] {
            [p] => cur = p,
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    fn main_forest(src: &str) -> (Function, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let forest = LoopForest::compute(&f);
        (f, forest)
    }

    const NESTED: &str = "program p
 integer a(1:10, 1:10)
 integer i, j
 do i = 1, 10
  do j = 1, 10
   a(i, j) = i + j
  enddo
 enddo
end
";

    #[test]
    fn finds_nested_loops_with_depths() {
        let (_, forest) = main_forest(NESTED);
        assert_eq!(forest.loops.len(), 2);
        let mut depths: Vec<u32> = forest.loops.iter().map(|l| l.depth).collect();
        depths.sort();
        assert_eq!(depths, vec![1, 2]);
        let order = forest.inner_to_outer();
        assert_eq!(forest.loop_info(order[0]).depth, 2);
    }

    #[test]
    fn inner_loop_nested_in_outer() {
        let (_, forest) = main_forest(NESTED);
        let inner = forest.loops.iter().position(|l| l.depth == 2).unwrap();
        let outer = forest.loops.iter().position(|l| l.depth == 1).unwrap();
        assert_eq!(forest.loops[inner].parent, Some(LoopId(outer as u32)));
        assert!(forest.loops[outer].children.contains(&LoopId(inner as u32)));
        assert!(forest.loops[outer]
            .blocks
            .is_superset(&forest.loops[inner].blocks));
    }

    #[test]
    fn detects_do_loop_iv() {
        let (_, forest) = main_forest(
            "program p\n integer a(1:10)\n integer i, n\n n = 10\n do i = 2, n\n a(i) = 0\n enddo\nend\n",
        );
        assert_eq!(forest.loops.len(), 1);
        let iv = forest.loops[0].iv.as_ref().expect("iv detected");
        assert_eq!(iv.step, 1);
        let init = iv.init.as_ref().unwrap();
        assert_eq!(init.constant_part(), 2);
        assert!(iv.upper.is_some());
        assert!(iv.lower.is_some());
        assert!(iv.entry_guard().is_some());
    }

    #[test]
    fn negative_step_iv() {
        let (_, forest) = main_forest(
            "program p\n integer a(1:10)\n integer i\n do i = 10, 1, -1\n a(i) = 0\n enddo\nend\n",
        );
        let iv = forest.loops[0].iv.as_ref().expect("iv detected");
        assert_eq!(iv.step, -1);
        // upper from init (10), lower from test (1)
        assert_eq!(iv.upper.as_ref().unwrap().constant_part(), 10);
        assert_eq!(iv.lower.as_ref().unwrap().constant_part(), 1);
    }

    #[test]
    fn while_loop_iv_with_test_bound() {
        let (_, forest) = main_forest(
            "program p\n integer a(1:10)\n integer i, n\n n = 10\n i = 1\n while (i < n)\n a(i) = 0\n i = i + 1\n endwhile\nend\n",
        );
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        let iv = l.iv.as_ref().expect("iv detected");
        // body-valid upper bound is n-1
        let upper = iv.upper.as_ref().unwrap();
        assert_eq!(upper.constant_part(), -1);
        assert_eq!(iv.init.as_ref().unwrap().constant_part(), 1);
    }

    #[test]
    fn invariance_and_linearity() {
        let (_, forest) = main_forest(
            "program p\n integer a(1:100)\n integer i, k, n\n n = 50\n k = 7\n do i = 1, n\n a(k) = a(i) + 1\n enddo\nend\n",
        );
        let l = &forest.loops[0];
        let iv = l.iv.as_ref().unwrap();
        let k_form = LinForm::var(VarId(1)); // k is the second declared var
        assert!(l.is_invariant(&k_form));
        let i_form = LinForm::var(iv.var).scale(2).add(&LinForm::var(VarId(1)));
        assert_eq!(l.linear_in_iv(&i_form), Some(2));
        assert!(l.linear_in_iv(&k_form).is_none());
        // temps defined by loads are not invariant
        assert!(!l.is_invariant(&LinForm::var(iv.var)));
    }

    #[test]
    fn preheader_insertion_creates_dedicated_block() {
        let p = compile(
            "program p\n integer a(1:5)\n integer i, j\n do i = 1, 5\n a(i) = 0\n enddo\n do j = 1, 5\n a(j) = 1\n enddo\nend\n",
        )
        .unwrap();
        let mut f = p.main_function().clone();
        let before = LoopForest::compute(&f);
        // our lowering already gives each do-loop a block ending in the
        // header jump; but that block holds the init statements, so it can
        // double as preheader only if it is single-purpose. Insert and
        // verify all loops get one.
        insert_preheaders(&mut f);
        let after = LoopForest::compute(&f);
        assert_eq!(before.loops.len(), after.loops.len());
        for l in &after.loops {
            assert!(
                l.preheader.is_some(),
                "loop at {} lacks preheader",
                l.header
            );
        }
        nascent_ir::validate::assert_valid(&nascent_ir::Program::single(f));
    }

    #[test]
    fn iv_rejected_when_assigned_conditionally() {
        // two defs of i in the loop -> no IV
        let (_, forest) = main_forest(
            "program p\n integer a(1:10)\n integer i\n i = 1\n while (i < 5)\n if (i == 2) then\n i = i + 2\n else\n i = i + 1\n endif\n a(i) = 0\n endwhile\nend\n",
        );
        assert_eq!(forest.loops.len(), 1);
        assert!(forest.loops[0].iv.is_none());
    }

    #[test]
    fn body_entry_is_headers_in_loop_successor() {
        let (f, forest) = main_forest(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = 0\n enddo\nend\n",
        );
        let l = &forest.loops[0];
        let be = l.body_entry.expect("body entry");
        assert!(l.blocks.contains(&be));
        assert!(f.successors(l.header).contains(&be));
    }
}
