//! SSA overlay construction (Cytron et al.).
//!
//! The IR itself is never rewritten; instead this module computes, as a
//! side structure, an SSA name for every definition (including inserted
//! phis) and records which SSA name each *use* sees. The induction
//! analysis ([`crate::induction`]) consumes the resulting def graph, just
//! as Nascent's Gerlek–Stoltz–Wolfe analysis consumes its demand-driven
//! SSA form.

use std::collections::HashMap;

use nascent_ir::{BinOp, BlockId, Expr, Function, Stmt, UnOp, VarId};

use crate::dom::Dominators;

/// An SSA value name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SsaId(pub u32);

impl SsaId {
    /// The name's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An expression with SSA names at the leaves.
#[derive(Debug, Clone, PartialEq)]
pub enum SsaExpr {
    /// Integer literal.
    Int(i64),
    /// Non-integer or otherwise uninterpreted leaf.
    Opaque,
    /// Use of an SSA value.
    Use(SsaId),
    /// Unary operation.
    Un(UnOp, Box<SsaExpr>),
    /// Binary operation.
    Bin(BinOp, Box<SsaExpr>, Box<SsaExpr>),
}

/// The defining occurrence of an SSA name.
#[derive(Debug, Clone, PartialEq)]
pub enum SsaDef {
    /// Value of the variable at function entry (parameter or zero).
    Entry,
    /// A phi at the entry of `block`, merging one value per predecessor.
    Phi {
        /// Block whose entry holds the phi.
        block: BlockId,
        /// `(predecessor, incoming name)` pairs.
        args: Vec<(BlockId, SsaId)>,
    },
    /// A plain assignment (`var = expr`).
    Assign {
        /// Block of the assignment.
        block: BlockId,
        /// Statement index.
        stmt: usize,
        /// Right-hand side over SSA names.
        expr: SsaExpr,
    },
    /// A definition whose value SSA cannot interpret (array load).
    Opaque {
        /// Block of the definition.
        block: BlockId,
        /// Statement index.
        stmt: usize,
    },
}

/// SSA overlay for one function.
#[derive(Debug, Clone)]
pub struct Ssa {
    /// Definition of each SSA name, indexed by [`SsaId`].
    pub defs: Vec<SsaDef>,
    /// Source variable of each SSA name.
    pub var_of: Vec<VarId>,
    /// SSA name holding the value of each variable at the *end* of each
    /// block: `end_names[block][var]`.
    pub end_names: Vec<HashMap<VarId, SsaId>>,
    /// SSA name seen by uses in each statement: for statement `(b, i)`,
    /// the name of variable `v` immediately before the statement.
    names_before: HashMap<(u32, usize, VarId), SsaId>,
}

impl Ssa {
    /// Builds the SSA overlay (minimal SSA: phis at iterated dominance
    /// frontiers of every variable's definition blocks).
    pub fn compute(f: &Function, dom: &Dominators) -> Ssa {
        Builder::new(f, dom).run()
    }

    /// The SSA name of `var` immediately before statement `stmt` of
    /// block `b`.
    pub fn name_before(&self, b: BlockId, stmt: usize, var: VarId) -> Option<SsaId> {
        self.names_before.get(&(b.0, stmt, var)).copied()
    }

    /// The definition of a name.
    pub fn def(&self, id: SsaId) -> &SsaDef {
        &self.defs[id.index()]
    }
}

struct Builder<'a> {
    f: &'a Function,
    dom: &'a Dominators,
    preds: Vec<Vec<BlockId>>,
    children: Vec<Vec<BlockId>>,
    defs: Vec<SsaDef>,
    var_of: Vec<VarId>,
    /// phis placed at each block: var -> SsaId
    phis: Vec<HashMap<VarId, SsaId>>,
    stacks: HashMap<VarId, Vec<SsaId>>,
    entry_names: HashMap<VarId, SsaId>,
    end_names: Vec<HashMap<VarId, SsaId>>,
    names_before: HashMap<(u32, usize, VarId), SsaId>,
}

impl<'a> Builder<'a> {
    fn new(f: &'a Function, dom: &'a Dominators) -> Builder<'a> {
        let n = f.blocks.len();
        let mut children = vec![Vec::new(); n];
        for b in f.block_ids() {
            if let Some(p) = dom.idom(b) {
                children[p.index()].push(b);
            }
        }
        Builder {
            f,
            dom,
            preds: f.predecessors(),
            children,
            defs: Vec::new(),
            var_of: Vec::new(),
            phis: vec![HashMap::new(); n],
            stacks: HashMap::new(),
            entry_names: HashMap::new(),
            end_names: vec![HashMap::new(); n],
            names_before: HashMap::new(),
        }
    }

    fn fresh(&mut self, var: VarId, def: SsaDef) -> SsaId {
        let id = SsaId(self.defs.len() as u32);
        self.defs.push(def);
        self.var_of.push(var);
        id
    }

    fn run(mut self) -> Ssa {
        // entry names for every variable
        for v in 0..self.f.vars.len() as u32 {
            let var = VarId(v);
            let id = self.fresh(var, SsaDef::Entry);
            self.entry_names.insert(var, id);
        }
        // phi placement: iterated dominance frontier of def blocks
        let df = self.dom.frontiers(self.f);
        let mut def_blocks: HashMap<VarId, Vec<BlockId>> = HashMap::new();
        for b in self.f.block_ids() {
            for s in &self.f.block(b).stmts {
                if let Some(v) = s.defined_var() {
                    def_blocks.entry(v).or_default().push(b);
                }
            }
        }
        for (var, blocks) in &def_blocks {
            let mut work = blocks.clone();
            let mut placed: Vec<BlockId> = Vec::new();
            while let Some(b) = work.pop() {
                for &y in &df[b.index()] {
                    if !placed.contains(&y) {
                        placed.push(y);
                        work.push(y);
                    }
                }
            }
            for y in placed {
                let id = self.fresh(
                    *var,
                    SsaDef::Phi {
                        block: y,
                        args: Vec::new(),
                    },
                );
                self.phis[y.index()].insert(*var, id);
            }
        }
        // renaming via dominator-tree walk
        for v in 0..self.f.vars.len() as u32 {
            let var = VarId(v);
            let entry = self.entry_names[&var];
            self.stacks.insert(var, vec![entry]);
        }
        self.rename(self.f.entry);
        Ssa {
            defs: self.defs,
            var_of: self.var_of,
            end_names: self.end_names,
            names_before: self.names_before,
        }
    }

    fn top(&self, var: VarId) -> SsaId {
        *self.stacks[&var].last().expect("stack never empty")
    }

    fn rename(&mut self, b: BlockId) {
        let mut pushed: Vec<VarId> = Vec::new();
        // phis define first
        let phi_list: Vec<(VarId, SsaId)> =
            self.phis[b.index()].iter().map(|(v, i)| (*v, *i)).collect();
        for (var, id) in &phi_list {
            self.stacks.get_mut(var).unwrap().push(*id);
            pushed.push(*var);
        }
        // statements
        let stmts = self.f.block(b).stmts.clone();
        for (i, s) in stmts.iter().enumerate() {
            // record names before this statement for all used vars
            let mut used: Vec<VarId> = Vec::new();
            match s {
                Stmt::Assign { value, .. } => used.extend(value.vars()),
                Stmt::Load { index, .. } => {
                    for e in index {
                        used.extend(e.vars());
                    }
                }
                Stmt::Store { index, value, .. } => {
                    for e in index {
                        used.extend(e.vars());
                    }
                    used.extend(value.vars());
                }
                Stmt::Check(c) => used.extend(c.vars()),
                Stmt::Call { args, .. } => {
                    for a in args {
                        if let nascent_ir::Arg::Scalar(e) = a {
                            used.extend(e.vars());
                        }
                    }
                }
                Stmt::Emit(e) => used.extend(e.vars()),
                Stmt::Trap { .. } => {}
            }
            used.sort();
            used.dedup();
            for v in used {
                let name = self.top(v);
                self.names_before.insert((b.0, i, v), name);
            }
            if let Some(var) = s.defined_var() {
                let def = match s {
                    Stmt::Assign { value, .. } => SsaDef::Assign {
                        block: b,
                        stmt: i,
                        expr: self.ssa_expr(value),
                    },
                    _ => SsaDef::Opaque { block: b, stmt: i },
                };
                let id = self.fresh(var, def);
                self.stacks.get_mut(&var).unwrap().push(id);
                pushed.push(var);
            }
        }
        // snapshot end-of-block names
        for v in 0..self.f.vars.len() as u32 {
            let var = VarId(v);
            let name = self.top(var);
            self.end_names[b.index()].insert(var, name);
        }
        // fill phi args of successors
        for s in self.f.successors(b) {
            let phi_vars: Vec<(VarId, SsaId)> =
                self.phis[s.index()].iter().map(|(v, i)| (*v, *i)).collect();
            for (var, phi_id) in phi_vars {
                let incoming = self.top(var);
                if let SsaDef::Phi { args, .. } = &mut self.defs[phi_id.index()] {
                    args.push((b, incoming));
                }
            }
        }
        // recurse over dominator-tree children
        let children = self.children[b.index()].clone();
        for c in children {
            self.rename(c);
        }
        // pop
        for var in pushed.into_iter().rev() {
            self.stacks.get_mut(&var).unwrap().pop();
        }
        let _ = self.preds; // preds kept for symmetry with other passes
    }

    fn ssa_expr(&self, e: &Expr) -> SsaExpr {
        match e {
            Expr::IntConst(v) => SsaExpr::Int(*v),
            Expr::RealConst(_) => SsaExpr::Opaque,
            Expr::Var(v) => SsaExpr::Use(self.top(*v)),
            Expr::Unary(op, inner) => SsaExpr::Un(*op, Box::new(self.ssa_expr(inner))),
            Expr::Binary(op, l, r) => {
                SsaExpr::Bin(*op, Box::new(self.ssa_expr(l)), Box::new(self.ssa_expr(r)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    fn build(src: &str) -> (Function, Ssa) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let dom = Dominators::compute(&f);
        let ssa = Ssa::compute(&f, &dom);
        (f, ssa)
    }

    #[test]
    fn straight_line_has_no_phis() {
        let (_, ssa) = build("program p\n integer x\n x = 1\n x = x + 1\nend\n");
        assert!(ssa.defs.iter().all(|d| !matches!(d, SsaDef::Phi { .. })));
        // x has entry + two assignment names
        assert_eq!(ssa.defs.len(), 3);
    }

    #[test]
    fn join_gets_phi_for_conditional_def() {
        let (f, ssa) = build(
            "program p\n integer x, c\n c = 1\n if (c > 0) then\n x = 1\n else\n x = 2\n endif\n print x\nend\n",
        );
        let phis: Vec<&SsaDef> = ssa
            .defs
            .iter()
            .filter(|d| matches!(d, SsaDef::Phi { .. }))
            .collect();
        assert!(!phis.is_empty());
        // the print's use of x resolves to a phi
        let (b, i) = f
            .block_ids()
            .flat_map(|b| {
                f.block(b)
                    .stmts
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Stmt::Emit(_)))
                    .map(move |(i, _)| (b, i))
            })
            .next()
            .unwrap();
        let name = ssa.name_before(b, i, VarId(0)).unwrap();
        assert!(matches!(ssa.def(name), SsaDef::Phi { .. }));
    }

    #[test]
    fn loop_header_phi_has_two_args() {
        let (f, ssa) = build(
            "program p\n integer i, s\n s = 0\n do i = 1, 3\n s = s + i\n enddo\n print s\nend\n",
        );
        // find a phi with two incoming edges whose block is a loop header
        let ok = ssa.defs.iter().any(|d| {
            if let SsaDef::Phi { block, args } = d {
                args.len() == 2 && f.predecessors()[block.index()].len() == 2
            } else {
                false
            }
        });
        assert!(ok);
    }

    #[test]
    fn load_definitions_are_opaque() {
        let (_, ssa) =
            build("program p\n integer a(1:5)\n integer x\n a(1) = 4\n x = a(1)\n print x\nend\n");
        assert!(ssa.defs.iter().any(|d| matches!(d, SsaDef::Opaque { .. })));
    }
}
