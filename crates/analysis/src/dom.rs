//! Dominator tree and dominance frontiers, via the Cooper–Harvey–Kennedy
//! "simple, fast dominance" algorithm.

use nascent_ir::{BlockId, Function};

/// Dominator information for a function.
///
/// Blocks unreachable from entry have no immediate dominator and are
/// reported as dominated by nothing (and dominating nothing but
/// themselves).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block (`None` for entry and unreachables).
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order of reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.blocks.len();
        let rpo = f.reverse_postorder();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // entry's idom is conventionally itself during computation; store None
        idom[f.entry.index()] = None;
        Dominators { idom, rpo, rpo_pos }
    }

    /// Immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.index()] == usize::MAX {
            return a == b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Reverse post-order of reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// True if `b` is reachable from entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Dominance frontier of every block.
    pub fn frontiers(&self, f: &Function) -> Vec<Vec<BlockId>> {
        let n = f.blocks.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let preds = f.predecessors();
        for b in f.block_ids() {
            if !self.is_reachable(b) || preds[b.index()].len() < 2 {
                continue;
            }
            let Some(target) = self.idom(b) else { continue };
            for &p in &preds[b.index()] {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != target {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    match self.idom(runner) {
                        Some(d) => runner = d,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// Post-dominator information, computed on the reverse CFG with a virtual
/// exit that all `Return` blocks feed into.
///
/// Blocks that cannot reach any exit (e.g. bodies of provably infinite
/// loops) post-dominate nothing but themselves.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// Immediate post-dominator per block (`None` for exit blocks whose
    /// ipdom is the virtual exit, and for blocks that reach no exit).
    ipdom: Vec<Option<BlockId>>,
    /// True for blocks that reach some exit.
    reaches_exit: Vec<bool>,
}

impl PostDominators {
    /// Computes post-dominators for `f`.
    pub fn compute(f: &Function) -> PostDominators {
        let n = f.blocks.len();
        let preds = f.predecessors(); // successors in the reverse CFG
        let exits: Vec<BlockId> = f
            .block_ids()
            .filter(|b| f.successors(*b).is_empty())
            .collect();
        // reverse post-order of the reverse CFG, rooted at the virtual
        // exit (index n)
        let mut visited = vec![false; n + 1];
        let mut post: Vec<usize> = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(n, 0)];
        visited[n] = true;
        while let Some(frame) = stack.last_mut() {
            let b = frame.0;
            let succs: &[BlockId] = if b == n { &exits } else { &preds[b] };
            if frame.1 < succs.len() {
                let s = succs[frame.1].index();
                frame.1 += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_pos = vec![usize::MAX; n + 1];
        for (i, b) in post.iter().enumerate() {
            rpo_pos[*b] = i;
        }
        // iterate to fixpoint (successors in the reverse CFG are the
        // original predecessors; the virtual exit's are the exits)
        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[n] = Some(n);
        let succs_in_cfg: Vec<Vec<usize>> = (0..n)
            .map(|b| {
                let mut s: Vec<usize> = f
                    .successors(BlockId(b as u32))
                    .into_iter()
                    .map(BlockId::index)
                    .collect();
                if s.is_empty() {
                    s.push(n); // returns feed the virtual exit
                }
                s
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in post.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &succs_in_cfg[b] {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let mut a = p;
                            let mut c = cur;
                            while a != c {
                                while rpo_pos[a] > rpo_pos[c] {
                                    a = idom[a].expect("processed");
                                }
                                while rpo_pos[c] > rpo_pos[a] {
                                    c = idom[c].expect("processed");
                                }
                            }
                            a
                        }
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        let reaches_exit: Vec<bool> = (0..n).map(|b| idom[b].is_some()).collect();
        PostDominators {
            ipdom: (0..n)
                .map(|b| match idom[b] {
                    Some(p) if p < n => Some(BlockId(p as u32)),
                    _ => None,
                })
                .collect(),
            reaches_exit,
        }
    }

    /// Immediate post-dominator of `b` (`None` when it is the virtual
    /// exit or `b` reaches no exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// True if `a` post-dominates `b` (reflexive): every path from `b` to
    /// any exit passes through `a`.
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reaches_exit[b.index()] {
            return false;
        }
        let mut cur = b;
        while let Some(p) = self.ipdom[cur.index()] {
            if p == a {
                return true;
            }
            cur = p;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_ir::{Block, Expr, Terminator};

    /// entry(0) -> 1 -> {2,3} -> 4 -> 1 (loop), 4 -> 5(exit)
    fn looped() -> Function {
        let mut f = Function::new("t");
        let b1 = f.add_block(Block::default());
        let b2 = f.add_block(Block::default());
        let b3 = f.add_block(Block::default());
        let b4 = f.add_block(Block::default());
        let b5 = f.add_block(Block::default());
        f.block_mut(f.entry).term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Branch {
            cond: Expr::int(1),
            then_bb: b2,
            else_bb: b3,
        };
        f.block_mut(b2).term = Terminator::Jump(b4);
        f.block_mut(b3).term = Terminator::Jump(b4);
        f.block_mut(b4).term = Terminator::Branch {
            cond: Expr::int(0),
            then_bb: b1,
            else_bb: b5,
        };
        f.block_mut(b5).term = Terminator::Return;
        f
    }

    #[test]
    fn idoms_of_diamond_in_loop() {
        let f = looped();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(4)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(5)), Some(BlockId(4)));
        assert_eq!(d.idom(BlockId(0)), None);
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = looped();
        let d = Dominators::compute(&f);
        assert!(d.dominates(BlockId(0), BlockId(5)));
        assert!(d.dominates(BlockId(1), BlockId(4)));
        assert!(!d.dominates(BlockId(2), BlockId(4)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn frontier_of_branch_arms_is_join() {
        let f = looped();
        let d = Dominators::compute(&f);
        let df = d.frontiers(&f);
        assert_eq!(df[BlockId(2).index()], vec![BlockId(4)]);
        assert_eq!(df[BlockId(3).index()], vec![BlockId(4)]);
        // loop: b4's frontier contains the header b1
        assert!(df[BlockId(4).index()].contains(&BlockId(1)));
        // and b1's own frontier contains b1 (it is in the loop it heads)
        assert!(df[BlockId(1).index()].contains(&BlockId(1)));
    }

    #[test]
    fn postdominators_of_diamond_in_loop() {
        let f = looped();
        let pd = PostDominators::compute(&f);
        // join b4 post-dominates both arms and the header
        assert!(pd.postdominates(BlockId(4), BlockId(2)));
        assert!(pd.postdominates(BlockId(4), BlockId(3)));
        assert!(pd.postdominates(BlockId(4), BlockId(1)));
        assert!(pd.postdominates(BlockId(5), BlockId(0)));
        // arms do not post-dominate the header
        assert!(!pd.postdominates(BlockId(2), BlockId(1)));
        assert_eq!(pd.ipdom(BlockId(2)), Some(BlockId(4)));
        // exit block's ipdom is the virtual exit
        assert_eq!(pd.ipdom(BlockId(5)), None);
    }

    #[test]
    fn infinite_loop_blocks_postdominate_only_themselves() {
        let mut f = Function::new("inf");
        let b1 = f.add_block(Block::default());
        f.block_mut(f.entry).term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Jump(b1);
        let pd = PostDominators::compute(&f);
        assert!(pd.postdominates(b1, b1));
        assert!(!pd.postdominates(b1, f.entry));
        assert!(!pd.postdominates(f.entry, b1));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = Function::new("u");
        let dead = f.add_block(Block::default());
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(dead), None);
        assert!(!d.is_reachable(dead));
        assert!(d.dominates(dead, dead));
    }
}
