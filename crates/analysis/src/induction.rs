//! SSA-based induction-variable classification, after Gerlek, Stoltz and
//! Wolfe ("Beyond induction variables", cited as [7, 18] in the paper).
//!
//! Each natural loop is assigned a conceptual *basic loop variable* `h`
//! taking values `0, 1, 2, …` per iteration (paper §2.3). Every SSA name
//! is classified relative to a loop as:
//!
//! * **invariant** — its value does not change while the loop runs,
//! * **linear** — value is `coeff·h + offset`,
//! * **polynomial** — value is a degree-`d` polynomial in `h`
//!   (e.g. a running sum of a linear sequence),
//! * **unknown** — anything else (loads, irregular recurrences).
//!
//! Constant coefficients/offsets are propagated when derivable, which is
//! what lets the paper's Figure 2 report `k ↦ 5·h + 8` for
//! `k = k + m` with `m = 5`.

use std::collections::HashMap;

use nascent_ir::{BinOp, BlockId, Expr, Function, UnOp};

use crate::loops::{LoopForest, LoopId};
use crate::ssa::{Ssa, SsaDef, SsaExpr, SsaId};

/// Classification of a value relative to a loop (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InductionClass {
    /// Loop-invariant; `value` is its constant when known.
    Invariant {
        /// Compile-time constant value, when derivable.
        value: Option<i64>,
    },
    /// `coeff·h + offset`; fields are `None` when symbolic.
    Linear {
        /// Constant per-iteration slope, when derivable.
        coeff: Option<i64>,
        /// Constant value at `h = 0`, when derivable.
        offset: Option<i64>,
    },
    /// Polynomial of the given degree (≥ 2) in `h`.
    Polynomial {
        /// Polynomial degree.
        degree: u32,
    },
    /// Not classified.
    Unknown,
}

impl InductionClass {
    /// True for the invariant class.
    pub fn is_invariant(self) -> bool {
        matches!(self, InductionClass::Invariant { .. })
    }

    /// True for the linear class.
    pub fn is_linear(self) -> bool {
        matches!(self, InductionClass::Linear { .. })
    }
}

/// Memoizing classifier over one function's SSA overlay.
#[derive(Debug)]
pub struct InductionAnalysis<'a> {
    ssa: &'a Ssa,
    forest: &'a LoopForest,
    memo: HashMap<(LoopId, SsaId), InductionClass>,
    in_progress: Vec<(LoopId, SsaId)>,
}

impl<'a> InductionAnalysis<'a> {
    /// Creates a classifier.
    pub fn new(f: &'a Function, ssa: &'a Ssa, forest: &'a LoopForest) -> InductionAnalysis<'a> {
        let _ = f; // reserved: source-level reporting may need the function
        InductionAnalysis {
            ssa,
            forest,
            memo: HashMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Classifies an SSA name relative to a loop.
    pub fn classify(&mut self, l: LoopId, id: SsaId) -> InductionClass {
        if let Some(c) = self.memo.get(&(l, id)) {
            return *c;
        }
        if self.in_progress.contains(&(l, id)) {
            // hit a cycle not rooted at a header phi: irregular recurrence
            return InductionClass::Unknown;
        }
        self.in_progress.push((l, id));
        let c = self.classify_uncached(l, id);
        self.in_progress.pop();
        self.memo.insert((l, id), c);
        c
    }

    /// Classifies a source-level expression at a statement site.
    pub fn classify_expr_at(
        &mut self,
        l: LoopId,
        block: BlockId,
        stmt: usize,
        e: &Expr,
    ) -> InductionClass {
        let se = self.resolve_expr(block, stmt, e);
        match se {
            Some(se) => self.classify_expr(l, &se),
            None => InductionClass::Unknown,
        }
    }

    fn resolve_expr(&self, block: BlockId, stmt: usize, e: &Expr) -> Option<SsaExpr> {
        Some(match e {
            Expr::IntConst(v) => SsaExpr::Int(*v),
            Expr::RealConst(_) => SsaExpr::Opaque,
            Expr::Var(v) => SsaExpr::Use(self.ssa.name_before(block, stmt, *v)?),
            Expr::Unary(op, inner) => {
                SsaExpr::Un(*op, Box::new(self.resolve_expr(block, stmt, inner)?))
            }
            Expr::Binary(op, a, b) => SsaExpr::Bin(
                *op,
                Box::new(self.resolve_expr(block, stmt, a)?),
                Box::new(self.resolve_expr(block, stmt, b)?),
            ),
        })
    }

    fn in_loop(&self, l: LoopId, b: BlockId) -> bool {
        self.forest.loop_info(l).blocks.contains(&b)
    }

    fn classify_uncached(&mut self, l: LoopId, id: SsaId) -> InductionClass {
        match self.ssa.def(id).clone() {
            SsaDef::Entry => InductionClass::Invariant { value: None },
            SsaDef::Opaque { block, .. } => {
                if self.in_loop(l, block) {
                    InductionClass::Unknown
                } else {
                    InductionClass::Invariant { value: None }
                }
            }
            SsaDef::Assign { block, expr, .. } => {
                let c = self.classify_expr(l, &expr);
                if self.in_loop(l, block) {
                    c
                } else {
                    // defined before the loop: invariant regardless of shape,
                    // keeping a constant value when the rhs folds to one
                    InductionClass::Invariant {
                        value: match c {
                            InductionClass::Invariant { value } => value,
                            _ => None,
                        },
                    }
                }
            }
            SsaDef::Phi { block, args } => {
                if !self.in_loop(l, block) {
                    return InductionClass::Invariant { value: None };
                }
                let info = self.forest.loop_info(l);
                if block != info.header || args.len() != 2 {
                    return InductionClass::Unknown;
                }
                let (outside, inside): (Vec<_>, Vec<_>) =
                    args.iter().partition(|(p, _)| !info.blocks.contains(p));
                let ([(_, init)], [(_, cyc)]) = (&outside[..], &inside[..]) else {
                    return InductionClass::Unknown;
                };
                let init_class = self.classify_outside(*init);
                // decompose the cycle as `phi + delta`
                let Some(delta) = self.decompose_cycle(*cyc, id) else {
                    return InductionClass::Unknown;
                };
                let delta_class = self.classify_expr(l, &delta);
                match delta_class {
                    InductionClass::Invariant { value: step } => InductionClass::Linear {
                        coeff: step,
                        offset: match init_class {
                            InductionClass::Invariant { value } => value,
                            _ => None,
                        },
                    },
                    InductionClass::Linear { .. } => InductionClass::Polynomial { degree: 2 },
                    InductionClass::Polynomial { degree } => {
                        InductionClass::Polynomial { degree: degree + 1 }
                    }
                    InductionClass::Unknown => InductionClass::Unknown,
                }
            }
        }
    }

    /// Classifies a name with respect to "before any loop": only constant
    /// tracking matters (used for phi initial values).
    fn classify_outside(&mut self, id: SsaId) -> InductionClass {
        match self.ssa.def(id).clone() {
            SsaDef::Entry => InductionClass::Invariant { value: None },
            SsaDef::Assign { expr, .. } => {
                let v = self.const_eval(&expr);
                InductionClass::Invariant { value: v }
            }
            _ => InductionClass::Invariant { value: None },
        }
    }

    fn const_eval(&mut self, e: &SsaExpr) -> Option<i64> {
        match e {
            SsaExpr::Int(v) => Some(*v),
            SsaExpr::Opaque => None,
            SsaExpr::Use(u) => match self.ssa.def(*u).clone() {
                SsaDef::Assign { expr, .. } => self.const_eval(&expr),
                _ => None,
            },
            SsaExpr::Un(UnOp::Neg, inner) => Some(self.const_eval(inner)?.wrapping_neg()),
            SsaExpr::Un(UnOp::Not, inner) => Some(i64::from(self.const_eval(inner)? == 0)),
            SsaExpr::Bin(op, a, b) => {
                let a = self.const_eval(a)?;
                let b = self.const_eval(b)?;
                nascent_ir::expr::eval_int_binop(*op, a, b)
            }
        }
    }

    /// Rewrites the in-loop phi argument as `phi + delta`, returning
    /// `delta`. Only sums/differences along the definition chain are
    /// followed; anything else fails the decomposition.
    fn decompose_cycle(&self, id: SsaId, phi: SsaId) -> Option<SsaExpr> {
        if id == phi {
            return Some(SsaExpr::Int(0));
        }
        let SsaDef::Assign { expr, .. } = self.ssa.def(id) else {
            return None;
        };
        self.decompose_expr(expr, phi)
    }

    fn decompose_expr(&self, e: &SsaExpr, phi: SsaId) -> Option<SsaExpr> {
        match e {
            SsaExpr::Use(u) => self.decompose_cycle(*u, phi),
            SsaExpr::Bin(BinOp::Add, a, b) => {
                match (self.contains_phi(a, phi), self.contains_phi(b, phi)) {
                    (true, false) => {
                        let d = self.decompose_expr(a, phi)?;
                        Some(SsaExpr::Bin(BinOp::Add, Box::new(d), b.clone()))
                    }
                    (false, true) => {
                        let d = self.decompose_expr(b, phi)?;
                        Some(SsaExpr::Bin(BinOp::Add, Box::new(d), a.clone()))
                    }
                    _ => None,
                }
            }
            SsaExpr::Bin(BinOp::Sub, a, b) => {
                if self.contains_phi(a, phi) && !self.contains_phi(b, phi) {
                    let d = self.decompose_expr(a, phi)?;
                    Some(SsaExpr::Bin(BinOp::Sub, Box::new(d), b.clone()))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Whether the expression's value depends on the phi through the
    /// def-chain (following plain assignments only).
    fn contains_phi(&self, e: &SsaExpr, phi: SsaId) -> bool {
        match e {
            SsaExpr::Int(_) | SsaExpr::Opaque => false,
            SsaExpr::Use(u) => {
                if *u == phi {
                    return true;
                }
                match self.ssa.def(*u) {
                    SsaDef::Assign { expr, .. } => self.contains_phi(expr, phi),
                    _ => false,
                }
            }
            SsaExpr::Un(_, inner) => self.contains_phi(inner, phi),
            SsaExpr::Bin(_, a, b) => self.contains_phi(a, phi) || self.contains_phi(b, phi),
        }
    }

    fn classify_expr(&mut self, l: LoopId, e: &SsaExpr) -> InductionClass {
        use InductionClass::{Invariant, Linear, Unknown};
        match e {
            SsaExpr::Int(v) => Invariant { value: Some(*v) },
            SsaExpr::Opaque => Unknown,
            SsaExpr::Use(u) => self.classify(l, *u),
            SsaExpr::Un(UnOp::Neg, inner) => match self.classify_expr(l, inner) {
                Invariant { value } => Invariant {
                    value: value.map(i64::wrapping_neg),
                },
                Linear { coeff, offset } => Linear {
                    coeff: coeff.map(i64::wrapping_neg),
                    offset: offset.map(i64::wrapping_neg),
                },
                c => c,
            },
            SsaExpr::Un(UnOp::Not, inner) => match self.classify_expr(l, inner) {
                Invariant { value } => Invariant {
                    value: value.map(|v| i64::from(v == 0)),
                },
                _ => Unknown,
            },
            SsaExpr::Bin(op, a, b) => {
                let ca = self.classify_expr(l, a);
                let cb = self.classify_expr(l, b);
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let neg = *op == BinOp::Sub;
                        combine_additive(ca, cb, neg)
                    }
                    BinOp::Mul => combine_multiplicative(ca, cb),
                    _ => match (ca, cb) {
                        (Invariant { value: va }, Invariant { value: vb }) => Invariant {
                            value: match (va, vb) {
                                (Some(x), Some(y)) => nascent_ir::expr::eval_int_binop(*op, x, y),
                                _ => None,
                            },
                        },
                        _ => Unknown,
                    },
                }
            }
        }
    }
}

fn combine_additive(a: InductionClass, b: InductionClass, negate_b: bool) -> InductionClass {
    use InductionClass::{Invariant, Linear, Polynomial, Unknown};
    let nb = |v: Option<i64>| {
        if negate_b {
            v.map(i64::wrapping_neg)
        } else {
            v
        }
    };
    match (a, b) {
        (Invariant { value: x }, Invariant { value: y }) => Invariant {
            value: x.zip(nb(y)).map(|(x, y)| x.wrapping_add(y)),
        },
        (Linear { coeff, offset }, Invariant { value }) => Linear {
            coeff,
            offset: offset.zip(nb(value)).map(|(o, v)| o.wrapping_add(v)),
        },
        (Invariant { value }, Linear { coeff, offset }) => Linear {
            coeff: nb(coeff),
            offset: value.zip(nb(offset)).map(|(v, o)| v.wrapping_add(o)),
        },
        (
            Linear {
                coeff: c1,
                offset: o1,
            },
            Linear {
                coeff: c2,
                offset: o2,
            },
        ) => Linear {
            coeff: c1.zip(nb(c2)).map(|(x, y)| x.wrapping_add(y)),
            offset: o1.zip(nb(o2)).map(|(x, y)| x.wrapping_add(y)),
        },
        (Polynomial { degree }, Invariant { .. } | Linear { .. })
        | (Invariant { .. } | Linear { .. }, Polynomial { degree }) => Polynomial { degree },
        (Polynomial { degree: d1 }, Polynomial { degree: d2 }) => Polynomial { degree: d1.max(d2) },
        _ => Unknown,
    }
}

fn combine_multiplicative(a: InductionClass, b: InductionClass) -> InductionClass {
    use InductionClass::{Invariant, Linear, Polynomial, Unknown};
    match (a, b) {
        (Invariant { value: x }, Invariant { value: y }) => Invariant {
            value: x.zip(y).map(|(x, y)| x.wrapping_mul(y)),
        },
        (Linear { coeff, offset }, Invariant { value })
        | (Invariant { value }, Linear { coeff, offset }) => Linear {
            coeff: coeff.zip(value).map(|(c, v)| c.wrapping_mul(v)),
            offset: offset.zip(value).map(|(o, v)| o.wrapping_mul(v)),
        },
        (Linear { .. }, Linear { .. }) => Polynomial { degree: 2 },
        (Polynomial { degree }, Invariant { .. }) | (Invariant { .. }, Polynomial { degree }) => {
            Polynomial { degree }
        }
        (Polynomial { degree: d1 }, Polynomial { degree: d2 }) => Polynomial { degree: d1 + d2 },
        (Polynomial { degree }, Linear { .. }) | (Linear { .. }, Polynomial { degree }) => {
            Polynomial { degree: degree + 1 }
        }
        _ => Unknown,
    }
}

/// Classifies, for every innermost loop and every scalar variable, the
/// variable's value at the loop header (the phi if one exists, otherwise
/// the name flowing in). Returned as `(loop, var) -> class`; convenient
/// for reports and the Figure 2 reproduction.
pub fn classify_function(
    f: &Function,
    ssa: &Ssa,
    forest: &LoopForest,
) -> HashMap<(LoopId, nascent_ir::VarId), InductionClass> {
    let mut out = HashMap::new();
    let mut ia = InductionAnalysis::new(f, ssa, forest);
    for (li, info) in forest.loops.iter().enumerate() {
        let l = LoopId(li as u32);
        let Some(body) = info.body_entry else {
            continue;
        };
        for v in 0..f.vars.len() as u32 {
            let var = nascent_ir::VarId(v);
            // name at entry of the body block, before its first statement
            let name = ssa
                .name_before(body, 0, var)
                .or_else(|| ssa.end_names[info.header.index()].get(&var).copied());
            if let Some(name) = name {
                out.insert((l, var), ia.classify(l, name));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use nascent_frontend::compile;
    use nascent_ir::VarId;

    fn analyze(src: &str) -> (Function, Ssa, LoopForest) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let dom = Dominators::compute(&f);
        let ssa = Ssa::compute(&f, &dom);
        let forest = LoopForest::compute(&f);
        (f, ssa, forest)
    }

    /// The paper's Figure 2: j, k, m with k = k + m, m = 5 invariant.
    const FIGURE2: &str = "program fig2
 integer a(1:100)
 integer i, j, k, m, n, t
 n = 8
 j = 0
 k = 3
 m = 5
 t = 0
 do i = 0, n - 1
  j = j + 1
  k = k + m
  t = t + j
  a(k) = 2 * m + 1
 enddo
end
";

    #[test]
    fn figure2_k_is_linear_5h_plus_8() {
        let (f, ssa, forest) = analyze(FIGURE2);
        let classes = classify_function(&f, &ssa, &forest);
        let l = LoopId(0);
        // vars: i=0 j=1 k=2 m=3 n=4 t=5
        // k's header phi is 5h + 3; after the in-loop increment it is 5h+8.
        assert_eq!(
            classes[&(l, VarId(2))],
            InductionClass::Linear {
                coeff: Some(5),
                offset: Some(3)
            }
        );
        // classify k at the store site (after k = k + m): offset 8
        let mut ia = InductionAnalysis::new(&f, &ssa, &forest);
        let (b, i, idx_expr) = find_store(&f);
        let c = ia.classify_expr_at(l, b, i, &idx_expr);
        assert_eq!(
            c,
            InductionClass::Linear {
                coeff: Some(5),
                offset: Some(8)
            }
        );
    }

    #[test]
    fn figure2_j_is_basic_linear() {
        let (f, ssa, forest) = analyze(FIGURE2);
        let classes = classify_function(&f, &ssa, &forest);
        assert_eq!(
            classes[&(LoopId(0), VarId(1))],
            InductionClass::Linear {
                coeff: Some(1),
                offset: Some(0)
            }
        );
    }

    #[test]
    fn figure2_t_is_polynomial() {
        let (f, ssa, forest) = analyze(FIGURE2);
        let classes = classify_function(&f, &ssa, &forest);
        assert_eq!(
            classes[&(LoopId(0), VarId(5))],
            InductionClass::Polynomial { degree: 2 }
        );
    }

    #[test]
    fn figure2_store_value_is_invariant_11() {
        let (f, ssa, forest) = analyze(FIGURE2);
        let mut ia = InductionAnalysis::new(&f, &ssa, &forest);
        // find the store and classify its value expression 2*m+1
        for b in f.block_ids() {
            for (i, s) in f.block(b).stmts.iter().enumerate() {
                if let nascent_ir::Stmt::Store { value, .. } = s {
                    let c = ia.classify_expr_at(LoopId(0), b, i, value);
                    assert_eq!(c, InductionClass::Invariant { value: Some(11) });
                    return;
                }
            }
        }
        panic!("no store found");
    }

    #[test]
    fn loads_are_unknown() {
        let (f, ssa, forest) = analyze(
            "program p\n integer a(1:10)\n integer i, x\n do i = 1, 9\n x = a(i)\n a(x) = 0\n enddo\nend\n",
        );
        let classes = classify_function(&f, &ssa, &forest);
        // x (VarId 1) is loaded from memory inside the loop
        assert_eq!(classes[&(LoopId(0), VarId(1))], InductionClass::Unknown);
        // i stays linear
        assert!(classes[&(LoopId(0), VarId(0))].is_linear());
    }

    fn find_store(f: &Function) -> (nascent_ir::BlockId, usize, Expr) {
        for b in f.block_ids() {
            for (i, s) in f.block(b).stmts.iter().enumerate() {
                if let nascent_ir::Stmt::Store { index, .. } = s {
                    return (b, i, index[0].clone());
                }
            }
        }
        panic!("no store");
    }
}
