//! Optimizer-side symbolic value-range analysis.
//!
//! A forward data-flow analysis that tracks, per scalar variable, a
//! constant interval and optional *symbolic* bounds (a [`LinForm`] known
//! to be `>=` or `<=` the variable). Facts come from assignments, from
//! performed (unconditional) checks, from branch conditions on each CFG
//! edge, from induction-variable trip-count facts at loop body entries
//! (the body-valid `lower <= iv <= upper` range computed by
//! [`crate::loops`]), and from conservative per-array range summaries of
//! stored values (the subscripted-subscript hook: a load from a private,
//! zero-initialized array is bounded by everything ever stored into it).
//! Loop heads are widened so the fixpoint terminates.
//!
//! The analysis answers one question: is a canonical check
//! `form <= bound` provably true, provably false, or unknown at a
//! program point ([`Env::verdict`]). The `discharge` pre-pass in
//! `nascent-rangecheck` deletes checks this analysis proves true.
//!
//! Like the optimizer's data-flow systems, `Call` statements are assumed
//! not to modify the caller's scalars (the frontend passes scalars by
//! value); `Load` yields the array's range summary when one exists, and
//! unknown otherwise. All interval arithmetic is *checked*: an
//! overflowing bound degrades to "unbounded" rather than wrapping,
//! because the concrete semantics wrap and a wrapped abstract bound
//! would be unsound.
//!
//! This module is a deliberate *fork* of the certifier's trusted copy
//! (`nascent-verify`'s `vra.rs`), not a shared library: the untrusted
//! optimizer and the trusted certifier must not share a code path, so
//! tampering with one cannot silently corrupt the other. The two files
//! are kept in lockstep — same fixpoint discipline, same widening and
//! recursion budgets — so everything the optimizer discharges, the
//! certifier can re-prove (the full-matrix certification tests enforce
//! this equality of strength).

use std::collections::{HashMap, HashSet};

use nascent_ir::{
    Arg, ArrayId, Atom, BinOp, CheckExpr, Expr, Function, LinForm, Param, Stmt, Term, Terminator,
    Ty, UnOp, VarId,
};

use crate::loops::LoopForest;

/// A (possibly half-open) constant interval. `None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interval {
    /// Greatest known constant lower bound.
    pub lo: Option<i64>,
    /// Least known constant upper bound.
    pub hi: Option<i64>,
}

impl Interval {
    /// The unbounded interval.
    pub fn top() -> Interval {
        Interval::default()
    }

    /// True when the interval contains no value.
    pub fn is_empty(self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// True when `x` lies within the interval.
    pub fn contains(self, x: i64) -> bool {
        self.lo.is_none_or(|l| l <= x) && self.hi.is_none_or(|h| x <= h)
    }

    /// Least interval containing both (convex hull).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).map(|(a, b)| a.min(b)),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.max(b)),
        }
    }
}

/// Recursion budget for chasing symbolic bounds in [`Env::verdict`].
const SYM_DEPTH: u32 = 3;

/// The abstract state at one program point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Env {
    intervals: HashMap<VarId, Interval>,
    /// `v <= form` facts.
    sym_upper: HashMap<VarId, LinForm>,
    /// `form <= v` facts.
    sym_lower: HashMap<VarId, LinForm>,
    /// Unreachable state (e.g. after a `TRAP` or a contradiction).
    pub bottom: bool,
}

impl Env {
    /// The unconstrained, reachable state.
    pub fn top() -> Env {
        Env::default()
    }

    /// The unreachable state.
    pub fn unreachable() -> Env {
        Env {
            bottom: true,
            ..Env::default()
        }
    }

    /// The interval currently known for `v`.
    pub fn interval(&self, v: VarId) -> Interval {
        self.intervals.get(&v).copied().unwrap_or_default()
    }

    fn set_interval(&mut self, v: VarId, i: Interval) {
        if i == Interval::top() {
            self.intervals.remove(&v);
        } else {
            self.intervals.insert(v, i);
        }
    }

    /// Intersects `v`'s interval with `iv` (an externally known fact);
    /// a contradiction makes the state unreachable.
    pub fn assume_interval(&mut self, v: VarId, iv: Interval) {
        if self.bottom {
            return;
        }
        let cur = self.interval(v);
        let met = Interval {
            lo: match (cur.lo, iv.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (cur.hi, iv.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        };
        if met.is_empty() {
            self.bottom = true;
        } else {
            self.set_interval(v, met);
        }
    }

    /// Forgets symbolic bounds that mention `v` (on either side).
    fn kill_sym_mentioning(&mut self, v: VarId) {
        self.sym_upper
            .retain(|var, form| *var != v && !form.uses_var(v));
        self.sym_lower
            .retain(|var, form| *var != v && !form.uses_var(v));
    }

    /// Join (control-flow merge). Bottom is the identity.
    pub fn join(&self, other: &Env) -> Env {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        let mut intervals = HashMap::new();
        for (v, i) in &self.intervals {
            let j = i.join(other.interval(*v));
            if j != Interval::top() {
                intervals.insert(*v, j);
            }
        }
        let keep_equal = |a: &HashMap<VarId, LinForm>, b: &HashMap<VarId, LinForm>| {
            a.iter()
                .filter(|(v, f)| b.get(v) == Some(f))
                .map(|(v, f)| (*v, f.clone()))
                .collect::<HashMap<_, _>>()
        };
        Env {
            intervals,
            sym_upper: keep_equal(&self.sym_upper, &other.sym_upper),
            sym_lower: keep_equal(&self.sym_lower, &other.sym_lower),
            bottom: false,
        }
    }

    /// Widens `self` against the previous fixpoint state: any interval
    /// endpoint that changed goes to unbounded, and symbolic facts not
    /// present identically in both are dropped.
    fn widen_against(&mut self, prev: &Env) {
        if self.bottom || prev.bottom {
            return;
        }
        let vars: Vec<VarId> = self.intervals.keys().copied().collect();
        for v in vars {
            let cur = self.interval(v);
            let old = prev.interval(v);
            let w = Interval {
                lo: if cur.lo == old.lo { cur.lo } else { None },
                hi: if cur.hi == old.hi { cur.hi } else { None },
            };
            self.set_interval(v, w);
        }
        self.sym_upper
            .retain(|v, f| prev.sym_upper.get(v) == Some(f));
        self.sym_lower
            .retain(|v, f| prev.sym_lower.get(v) == Some(f));
    }

    /// Best constant upper bound on the value of `form`, chasing symbolic
    /// bounds up to `depth` substitutions.
    fn upper(&self, form: &LinForm, depth: u32) -> Option<i64> {
        let mut acc: i64 = form.constant_part();
        for (t, c) in form.terms() {
            let var_bound = match t.atoms() {
                [Atom::Var(v)] => {
                    if c > 0 {
                        self.var_upper(*v, depth)
                    } else {
                        self.var_lower(*v, depth)
                    }
                }
                _ => None, // opaque or degree > 1: unbounded
            };
            acc = acc.checked_add(var_bound?.checked_mul(c)?)?;
        }
        Some(acc)
    }

    /// Best constant lower bound on the value of `form`.
    fn lower(&self, form: &LinForm, depth: u32) -> Option<i64> {
        self.upper(&form.neg(), depth)?.checked_neg()
    }

    fn var_upper(&self, v: VarId, depth: u32) -> Option<i64> {
        let mut best = self.interval(v).hi;
        if depth > 0 {
            if let Some(f) = self.sym_upper.get(&v) {
                if let Some(b) = self.upper(f, depth - 1) {
                    best = Some(best.map_or(b, |x| x.min(b)));
                }
            }
        }
        best
    }

    fn var_lower(&self, v: VarId, depth: u32) -> Option<i64> {
        let mut best = self.interval(v).lo;
        if depth > 0 {
            if let Some(f) = self.sym_lower.get(&v) {
                if let Some(b) = self.lower(f, depth - 1) {
                    best = Some(best.map_or(b, |x| x.max(b)));
                }
            }
        }
        best
    }

    /// `Some(true)`/`Some(false)` when `form <= bound` provably holds /
    /// provably fails here, `None` when unknown.
    fn le_verdict(&self, form: &LinForm, bound: i64) -> Option<bool> {
        if let Some(hi) = self.upper(form, SYM_DEPTH) {
            if hi <= bound {
                return Some(true);
            }
        }
        if let Some(lo) = self.lower(form, SYM_DEPTH) {
            if lo > bound {
                return Some(false);
            }
        }
        None
    }

    /// Decides a canonical check at this point: `Some(true)` when
    /// `form <= bound` always holds here (vacuously so at an unreachable
    /// point), `Some(false)` when it never holds, `None` when unknown.
    pub fn verdict(&self, check: &CheckExpr) -> Option<bool> {
        if self.bottom {
            return Some(true);
        }
        self.le_verdict(check.form(), check.bound())
    }

    /// Decides a branch condition at this point, recursing through `not`,
    /// `and`, `or` and comparisons. `None` when undecidable.
    pub fn cond_verdict(&self, cond: &Expr) -> Option<bool> {
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.cond_verdict(inner).map(|b| !b),
            Expr::Binary(BinOp::And, a, b) => match (self.cond_verdict(a), self.cond_verdict(b)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Expr::Binary(BinOp::Or, a, b) => match (self.cond_verdict(a), self.cond_verdict(b)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let d = LinForm::from_expr(l).sub(&LinForm::from_expr(r));
                match op {
                    BinOp::Le => self.le_verdict(&d, 0),
                    BinOp::Lt => self.le_verdict(&d, -1),
                    BinOp::Ge => self.le_verdict(&d.neg(), 0),
                    BinOp::Gt => self.le_verdict(&d.neg(), -1),
                    BinOp::Eq => match (self.le_verdict(&d, 0), self.le_verdict(&d.neg(), 0)) {
                        (Some(true), Some(true)) => Some(true),
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        _ => None,
                    },
                    BinOp::Ne => match (self.le_verdict(&d, 0), self.le_verdict(&d.neg(), 0)) {
                        (Some(true), Some(true)) => Some(false),
                        (Some(false), _) | (_, Some(false)) => Some(true),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Records the fact `form <= bound` (a passed check or a taken
    /// branch).
    pub fn assume_le(&mut self, form: &LinForm, bound: i64) {
        if self.bottom {
            return;
        }
        if form.is_constant() {
            if form.constant_part() > bound {
                self.bottom = true;
            }
            return;
        }
        // refine each degree-1 variable using bounds on the other terms
        // (an i64::MIN coefficient has no negation; skip it rather than
        // wrap)
        let targets: Vec<(VarId, i64)> = form
            .terms()
            .filter_map(|(t, c)| match t.atoms() {
                [Atom::Var(v)] if c != i64::MIN => Some((*v, c)),
                _ => None,
            })
            .collect();
        for (v, c) in targets {
            // c*v <= bound - rest, where rest = form - c*v
            let mut rest = form.clone();
            rest.add_term(Term::var(v), -c);
            if let Some(rest_lo) = self.lower(&rest, SYM_DEPTH) {
                if let Some(num) = bound.checked_sub(rest_lo) {
                    let mut iv = self.interval(v);
                    if c > 0 {
                        let b = num.div_euclid(c);
                        iv.hi = Some(iv.hi.map_or(b, |x| x.min(b)));
                    } else {
                        // c < 0:  v >= ceil(num / c); checked, so a bound
                        // near i64::MIN skips the refinement instead of
                        // wrapping
                        if let Some(b) = c
                            .checked_neg()
                            .map(|nc| num.div_euclid(nc))
                            .and_then(i64::checked_neg)
                        {
                            iv.lo = Some(iv.lo.map_or(b, |x| x.max(b)));
                        }
                    }
                    if iv.is_empty() {
                        self.bottom = true;
                        return;
                    }
                    self.set_interval(v, iv);
                }
            }
            // symbolic refinement for unit coefficients
            if c == 1 {
                // v <= bound - rest
                let ub = LinForm::constant(bound).sub(&rest);
                if !ub.uses_var(v) {
                    self.sym_upper.insert(v, ub);
                }
            } else if c == -1 {
                // rest - bound <= v
                let lb = rest.sub(&LinForm::constant(bound));
                if !lb.uses_var(v) {
                    self.sym_lower.insert(v, lb);
                }
            }
        }
    }

    /// Transfer function for one statement, with loads refined by the
    /// per-array range summaries in `load_ranges`.
    pub fn step_with(&mut self, s: &Stmt, load_ranges: &HashMap<ArrayId, Interval>) {
        if self.bottom {
            return;
        }
        match s {
            Stmt::Assign { var, value } => {
                let form = LinForm::from_expr(value);
                // evaluate the rhs in the *pre* state
                let iv = Interval {
                    lo: self.lower(&form, SYM_DEPTH),
                    hi: self.upper(&form, SYM_DEPTH),
                };
                self.kill_sym_mentioning(*var);
                self.set_interval(*var, iv);
                // record the symbolic equality when the rhs is affine in
                // other plain variables only
                if !form.uses_var(*var)
                    && form
                        .terms()
                        .all(|(t, _)| matches!(t.atoms(), [Atom::Var(_)]))
                {
                    self.sym_upper.insert(*var, form.clone());
                    self.sym_lower.insert(*var, form);
                }
            }
            Stmt::Load { var, array, .. } => {
                self.kill_sym_mentioning(*var);
                self.set_interval(*var, load_ranges.get(array).copied().unwrap_or_default());
            }
            Stmt::Check(c) => {
                if c.is_unconditional() {
                    // execution continues only when the check passed
                    self.assume_le(c.cond.form(), c.cond.bound());
                }
            }
            Stmt::Trap { .. } => {
                self.bottom = true;
            }
            Stmt::Store { .. } | Stmt::Call { .. } | Stmt::Emit(_) => {}
        }
    }

    /// [`Env::step_with`] without array range summaries.
    pub fn step(&mut self, s: &Stmt) {
        self.step_with(s, &HashMap::new());
    }

    /// Refines by a branch condition known to have the given truth value.
    pub fn assume_cond(&mut self, cond: &Expr, truth: bool) {
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.assume_cond(inner, !truth),
            Expr::Binary(BinOp::And, a, b) if truth => {
                self.assume_cond(a, true);
                self.assume_cond(b, true);
            }
            Expr::Binary(BinOp::And, a, b) if !truth => {
                // ¬(a ∧ b) is disjunctive; it pins a conjunct only when
                // the other is provably true (both true: contradiction)
                match (self.cond_verdict(a), self.cond_verdict(b)) {
                    (Some(true), Some(true)) => self.bottom = true,
                    (Some(true), _) => self.assume_cond(b, false),
                    (_, Some(true)) => self.assume_cond(a, false),
                    _ => {}
                }
            }
            Expr::Binary(BinOp::Or, a, b) if !truth => {
                self.assume_cond(a, false);
                self.assume_cond(b, false);
            }
            Expr::Binary(BinOp::Or, a, b) if truth => {
                // a ∨ b pins a disjunct only when the other is provably
                // false (both false: contradiction)
                match (self.cond_verdict(a), self.cond_verdict(b)) {
                    (Some(false), Some(false)) => self.bottom = true,
                    (Some(false), _) => self.assume_cond(b, true),
                    (_, Some(false)) => self.assume_cond(a, true),
                    _ => {}
                }
            }
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let d = LinForm::from_expr(l).sub(&LinForm::from_expr(r));
                let op = if truth { *op } else { negated(*op) };
                match op {
                    BinOp::Le => self.assume_le(&d, 0),
                    BinOp::Lt => self.assume_le(&d, -1),
                    BinOp::Ge => self.assume_le(&d.neg(), 0),
                    BinOp::Gt => self.assume_le(&d.neg(), -1),
                    BinOp::Eq => {
                        self.assume_le(&d, 0);
                        self.assume_le(&d.neg(), 0);
                    }
                    _ => {} // Ne carries no convex information
                }
            }
            _ => {}
        }
    }

    /// Concrete containment test (for the soundness property tests): is
    /// the valuation `vals` described by this abstract state? Constrained
    /// variables must be present in `vals`; a symbolic bound that does
    /// not evaluate (opaque term, missing variable, overflow) is skipped,
    /// which only widens the state.
    pub fn models(&self, vals: &HashMap<VarId, i64>) -> bool {
        if self.bottom {
            return false;
        }
        for (v, iv) in &self.intervals {
            match vals.get(v) {
                Some(x) if iv.contains(*x) => {}
                _ => return false,
            }
        }
        for (v, f) in &self.sym_upper {
            if let (Some(x), Some(b)) = (vals.get(v), eval_form(f, vals)) {
                if *x > b {
                    return false;
                }
            }
        }
        for (v, f) in &self.sym_lower {
            if let (Some(x), Some(b)) = (vals.get(v), eval_form(f, vals)) {
                if b > *x {
                    return false;
                }
            }
        }
        true
    }
}

/// Evaluates a linear form under a valuation with checked arithmetic;
/// `None` when a variable is missing, a term is opaque, or the
/// arithmetic overflows.
pub fn eval_form(form: &LinForm, vals: &HashMap<VarId, i64>) -> Option<i64> {
    let mut acc = form.constant_part();
    for (t, c) in form.terms() {
        let mut prod: i64 = 1;
        for a in t.atoms() {
            let Atom::Var(v) = a else { return None };
            prod = prod.checked_mul(*vals.get(v)?)?;
        }
        acc = acc.checked_add(prod.checked_mul(c)?)?;
    }
    Some(acc)
}

/// The comparison that holds when `op` does not.
fn negated(op: BinOp) -> BinOp {
    match op {
        BinOp::Le => BinOp::Gt,
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Per-block entry states of one function. Trip-count facts are already
/// folded into each body entry's state.
#[derive(Debug)]
pub struct Vra {
    /// `entry[b.index()]` — the abstract state on entry to block `b`.
    pub entry: Vec<Env>,
    /// Conservative range of every value a `Load` can observe, per
    /// private integer array (see [`analyze`]); replayed by [`Vra::at`].
    pub load_ranges: HashMap<ArrayId, Interval>,
}

impl Vra {
    /// The state just before statement `stmt` of block `b`.
    pub fn at(&self, f: &Function, b: nascent_ir::BlockId, stmt: usize) -> Env {
        let mut env = self.entry[b.index()].clone();
        for s in f.block(b).stmts.iter().take(stmt) {
            env.step_with(s, &self.load_ranges);
        }
        env
    }
}

/// Number of fact changes at one block before widening kicks in.
const WIDEN_AFTER: u32 = 2;

/// Hard iteration backstop; on overrun every remaining fact degrades to
/// top, which is sound (verdicts just become "unknown" more often).
fn iteration_cap(f: &Function) -> u32 {
    (f.blocks.len() as u32 + 8) * 16
}

/// Runs the analysis to a fixpoint over `f`, computing the loop forest
/// itself. Prefer [`crate::context::PassContext::vra`], which caches the
/// result and shares the forest.
pub fn analyze(f: &Function) -> Vra {
    let mut ctx = crate::context::PassContext::new();
    let forest = ctx.loop_forest(f);
    analyze_with_forest(f, &forest)
}

/// [`analyze`] over a precomputed loop forest (trip-count facts come
/// from the forest's induction-variable descriptors).
pub fn analyze_with_forest(f: &Function, forest: &LoopForest) -> Vra {
    // trip-count facts: the body-valid iv range of each loop
    let mut loop_facts: HashMap<usize, Vec<(LinForm, i64)>> = HashMap::new();
    for info in &forest.loops {
        let (Some(body), Some(iv)) = (info.body_entry, info.iv.as_ref()) else {
            continue;
        };
        let facts = loop_facts.entry(body.index()).or_default();
        if let Some(up) = &iv.upper {
            // iv - upper <= 0
            facts.push((LinForm::var(iv.var).sub(up), 0));
        }
        if let Some(lo) = &iv.lower {
            // lower - iv <= 0
            facts.push((lo.sub(&LinForm::var(iv.var)), 0));
        }
    }

    // phase 1: loads are unknown
    let entry = fixpoint(f, &loop_facts, &HashMap::new());
    // per-array range summaries from the (sound, load-agnostic) phase-1
    // states
    let load_ranges = array_summaries(f, &entry);
    if load_ranges.is_empty() {
        return Vra { entry, load_ranges };
    }
    // phase 2: loads from summarized arrays are range-refined
    let entry = fixpoint(f, &loop_facts, &load_ranges);
    Vra { entry, load_ranges }
}

/// Conservative range of every value a `Load` can observe, for each
/// array *private* to `f`: declared locally, not a parameter, and never
/// passed to a callee (arrays flow by reference through calls, so a
/// callee could store anything). Arrays start zero-initialized, so the
/// summary is `{0}` joined with the interval of every stored value,
/// evaluated in the phase-1 entry states. Only integer arrays are
/// summarized (intervals describe `i64` values), and summaries that
/// degrade to unbounded are dropped.
fn array_summaries(f: &Function, entry: &[Env]) -> HashMap<ArrayId, Interval> {
    let mut private: HashSet<ArrayId> = (0..f.arrays.len())
        .map(|i| ArrayId(i as u32))
        .filter(|a| f.arrays[a.index()].ty == Ty::Int)
        .collect();
    for p in &f.params {
        if let Param::Array(a) = p {
            private.remove(a);
        }
    }
    for b in &f.blocks {
        for s in &b.stmts {
            if let Stmt::Call { args, .. } = s {
                for arg in args {
                    if let Arg::Array(a) = arg {
                        private.remove(a);
                    }
                }
            }
        }
    }
    if private.is_empty() {
        return HashMap::new();
    }
    let zero = Interval {
        lo: Some(0),
        hi: Some(0),
    };
    let mut out: HashMap<ArrayId, Interval> = private.iter().map(|a| (*a, zero)).collect();
    let no_ranges = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut env = entry[bi].clone();
        for s in &b.stmts {
            if let Stmt::Store { array, value, .. } = s {
                if let Some(sum) = out.get_mut(array) {
                    let form = LinForm::from_expr(value);
                    let stored = Interval {
                        lo: env.lower(&form, SYM_DEPTH),
                        hi: env.upper(&form, SYM_DEPTH),
                    };
                    *sum = sum.join(stored);
                }
            }
            env.step_with(s, &no_ranges);
        }
    }
    out.retain(|_, iv| *iv != Interval::top());
    out
}

/// One worklist fixpoint over `f` with the given trip-count facts and
/// load summaries.
fn fixpoint(
    f: &Function,
    loop_facts: &HashMap<usize, Vec<(LinForm, i64)>>,
    load_ranges: &HashMap<ArrayId, Interval>,
) -> Vec<Env> {
    let n = f.blocks.len();
    let mut entry: Vec<Env> = vec![Env::unreachable(); n];
    entry[f.entry.index()] = Env::top();
    let mut changes: Vec<u32> = vec![0; n];
    let mut work: Vec<usize> = vec![f.entry.index()];
    let mut budget = iteration_cap(f);

    while let Some(bi) = work.pop() {
        if budget == 0 {
            // backstop: degrade every reachable block to top and stop
            for e in entry.iter_mut() {
                if !e.bottom {
                    *e = Env::top();
                }
            }
            break;
        }
        budget -= 1;
        let b = nascent_ir::BlockId(bi as u32);
        let mut env = entry[bi].clone();
        for s in &f.block(b).stmts {
            env.step_with(s, load_ranges);
        }
        let out: Vec<(usize, Env)> = match &f.block(b).term {
            Terminator::Jump(t) => vec![(t.index(), env)],
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let mut te = env.clone();
                te.assume_cond(cond, true);
                let mut ee = env;
                ee.assume_cond(cond, false);
                vec![(then_bb.index(), te), (else_bb.index(), ee)]
            }
            Terminator::Return => vec![],
        };
        for (succ, e) in out {
            let mut joined = entry[succ].join(&e);
            if changes[succ] >= WIDEN_AFTER {
                joined.widen_against(&entry[succ]);
            }
            // trip-count facts are stable per block: re-asserting them
            // after the join (and after widening) keeps them in the
            // stored entry state without disturbing termination
            if let Some(facts) = loop_facts.get(&succ) {
                for (form, bound) in facts {
                    joined.assume_le(form, *bound);
                }
            }
            if joined != entry[succ] {
                changes[succ] += 1;
                entry[succ] = joined;
                if !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    fn vra_of(src: &str) -> (Function, Vra) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let v = analyze(&f);
        (f, v)
    }

    /// Verdicts at every unconditional check site, in program order.
    fn check_verdicts(f: &Function, vra: &Vra) -> Vec<Option<bool>> {
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (i, s) in f.block(b).stmts.iter().enumerate() {
                if let Stmt::Check(c) = s {
                    if c.is_unconditional() {
                        out.push(vra.at(f, b, i).verdict(&c.cond));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn constant_assignment_discharges_checks() {
        let (f, vra) = vra_of("program p\n integer a(1:10)\n integer i\n i = 3\n a(i) = 0\nend\n");
        assert_eq!(check_verdicts(&f, &vra), vec![Some(true), Some(true)]);
    }

    #[test]
    fn loop_iv_range_discharges_body_checks() {
        let (f, vra) = vra_of(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\nend\n",
        );
        let verdicts = check_verdicts(&f, &vra);
        assert_eq!(verdicts.len(), 2);
        assert!(
            verdicts.iter().all(|v| *v == Some(true)),
            "trip-count facts prove both body checks: {verdicts:?}"
        );
    }

    #[test]
    fn symbolic_loop_bound_stays_unknown() {
        let (f, vra) = vra_of(
            "program p
 integer a(1:10)
 integer i, n
 n = 20
 do i = 1, n
  a(i) = i
 enddo
end
",
        );
        let verdicts = check_verdicts(&f, &vra);
        // the lower check (1 <= i) is provable from the trip-count fact;
        // the upper (i <= 10) must NOT be claimed true, since n = 20 makes
        // late iterations trap
        assert!(verdicts.contains(&Some(true)));
        assert!(!verdicts.iter().all(|v| *v == Some(true)));
    }

    #[test]
    fn loads_from_private_zero_initialized_arrays_are_bounded() {
        // map holds values in [0, 9] (stores of i - 1 for i in 1..=10,
        // joined with the zero initialization); a(map(j) + 1) is then
        // provably within a(1:10)
        let (f, vra) = vra_of(
            "program p
 integer map(1:10)
 integer a(1:10)
 integer i, j, t
 do i = 1, 10
  map(i) = i - 1
 enddo
 do j = 1, 10
  t = map(j)
  a(t + 1) = j
 enddo
end
",
        );
        let verdicts = check_verdicts(&f, &vra);
        assert!(
            verdicts.iter().all(|v| *v == Some(true)),
            "subscripted-subscript checks all provable: {verdicts:?}"
        );
    }

    #[test]
    fn loads_from_arrays_passed_to_callees_stay_unknown() {
        let (f, vra) = vra_of(
            "program p
 integer map(1:10)
 integer a(1:10)
 integer j, t
 call fill(map)
 do j = 1, 10
  t = map(j)
  a(t + 1) = j
 enddo
end
subroutine fill(m)
 integer m(1:10)
 integer i
 do i = 1, 10
  m(i) = i * 20
 enddo
end
",
        );
        let map_id = (0..f.arrays.len())
            .map(|i| ArrayId(i as u32))
            .find(|a| f.arrays[a.index()].name == "map")
            .unwrap();
        assert!(
            !vra.load_ranges.contains_key(&map_id),
            "map escapes through the call and must not be summarized"
        );
        let verdicts = check_verdicts(&f, &vra);
        assert!(
            verdicts.contains(&None),
            "escaped-array subscripts must stay unknown: {verdicts:?}"
        );
    }

    #[test]
    fn negated_compound_condition_refines_conservatively() {
        // the else edge carries ¬(i <= 7 ∧ j <= 99); j stays in [1, 2],
        // so j <= 99 is provably true and the analysis pins i >= 8 on
        // that edge, proving a(i) safe for a(8:20) (the upper bound
        // comes from the trip-count fact i <= 20)
        let (f, vra) = vra_of(
            "program p
 integer a(8:20)
 integer i, j
 j = 1
 do i = 1, 20
  if (i <= 7 and j <= 99) then
   j = 2
  else
   a(i) = j
  endif
 enddo
end
",
        );
        let verdicts = check_verdicts(&f, &vra);
        assert!(
            verdicts.iter().all(|v| *v == Some(true)),
            "negated conjunction refines the else edge: {verdicts:?}"
        );
    }

    #[test]
    fn assume_le_near_i64_bounds_does_not_wrap() {
        // -v <= i64::MIN used to negate the quotient of div_euclid and
        // overflow; it must now degrade gracefully (no refinement) and
        // stay sound
        let mut env = Env::top();
        let form = LinForm::var(VarId(0)).neg();
        env.assume_le(&form, i64::MIN);
        assert!(!env.bottom);
        // v >= -i64::MIN is unrepresentable: no (wrapped) bound may appear
        assert_eq!(env.interval(VarId(0)).hi, None);

        let mut env = Env::top();
        env.assume_le(&LinForm::var(VarId(0)), i64::MAX);
        assert_eq!(env.interval(VarId(0)).hi, Some(i64::MAX));
        assert!(!env.bottom);
    }

    #[test]
    fn widening_terminates_on_accumulators() {
        let (f, vra) = vra_of(
            "program p
 integer a(1:100)
 integer i, n, s
 n = 50
 s = 0
 do i = 1, n
  s = s + i
  a(i) = s
 enddo
 print s
end
",
        );
        assert_eq!(vra.entry.len(), f.blocks.len());
    }
}
