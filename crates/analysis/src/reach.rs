//! Lightweight reaching-definition helpers.
//!
//! Two cheap, conservative facilities used across the optimizer:
//!
//! * [`unique_defs`] — the table of variables with exactly one static
//!   definition in a function. A unique definition that dominates a use
//!   site is *the* reaching definition there; the check implication graph
//!   uses this to discover global affine relations (`x = y + c`), and the
//!   induction-expression rewriting uses it to express checks in terms of
//!   defining expressions.
//! * [`reaching_in_block`] — the textually last definition of a variable
//!   before a statement index within one block.

use std::collections::HashMap;

use nascent_ir::{BlockId, Expr, Function, Stmt, VarId};

/// Location and kind of a variable's single static definition.
#[derive(Debug, Clone, PartialEq)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: BlockId,
    /// Statement index within the block.
    pub stmt: usize,
    /// Right-hand side, when the definition is a plain assignment
    /// (`None` for `Load` definitions).
    pub rhs: Option<Expr>,
}

/// Map from variable to its unique definition site.
pub type UniqueDefs = HashMap<VarId, DefSite>;

/// Computes the variables of `f` that have exactly one static definition,
/// with that definition's site and right-hand side.
///
/// Parameters are treated as defined at entry, so a parameter with any
/// textual definition is excluded.
pub fn unique_defs(f: &Function) -> UniqueDefs {
    let mut count: HashMap<VarId, usize> = HashMap::new();
    let mut site: UniqueDefs = HashMap::new();
    for b in f.block_ids() {
        for (i, s) in f.block(b).stmts.iter().enumerate() {
            if let Some(v) = s.defined_var() {
                *count.entry(v).or_insert(0) += 1;
                let rhs = match s {
                    Stmt::Assign { value, .. } => Some(value.clone()),
                    _ => None,
                };
                site.insert(
                    v,
                    DefSite {
                        block: b,
                        stmt: i,
                        rhs,
                    },
                );
            }
        }
    }
    for p in &f.params {
        if let nascent_ir::Param::Scalar(v) = p {
            count.entry(*v).and_modify(|c| *c += 1);
        }
    }
    site.retain(|v, _| count.get(v) == Some(&1));
    site
}

/// The last definition of `var` strictly before statement `before` in
/// block `b`, if any.
pub fn reaching_in_block(f: &Function, b: BlockId, before: usize, var: VarId) -> Option<DefSite> {
    let stmts = &f.block(b).stmts;
    for i in (0..before.min(stmts.len())).rev() {
        if stmts[i].defined_var() == Some(var) {
            let rhs = match &stmts[i] {
                Stmt::Assign { value, .. } => Some(value.clone()),
                _ => None,
            };
            return Some(DefSite {
                block: b,
                stmt: i,
                rhs,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    #[test]
    fn unique_defs_found_and_multi_defs_excluded() {
        let p = compile(
            "program p\n integer x, y, c\n c = 1\n x = c + 4\n if (c > 0) then\n y = 1\n else\n y = 2\n endif\n print x + y\nend\n",
        )
        .unwrap();
        let f = p.main_function();
        let defs = unique_defs(f);
        // x (VarId 0) and c (VarId 2) are uniquely defined; y (VarId 1) not
        assert!(defs.contains_key(&VarId(0)));
        assert!(defs.contains_key(&VarId(2)));
        assert!(!defs.contains_key(&VarId(1)));
        let x = &defs[&VarId(0)];
        assert!(x.rhs.is_some());
    }

    #[test]
    fn parameters_with_defs_are_excluded() {
        let p =
            compile("subroutine s(n)\n integer n, m\n m = n\nend\nprogram p\n call s(1)\nend\n")
                .unwrap();
        let s = &p.functions[0];
        let defs = unique_defs(s);
        // m has one def; n is a parameter with zero textual defs so it is
        // not in the table at all
        assert!(defs.contains_key(&VarId(1)));
        assert!(!defs.contains_key(&VarId(0)));
    }

    #[test]
    fn reaching_in_block_picks_last_def() {
        let p = compile("program p\n integer x\n x = 1\n x = 2\n print x\nend\n").unwrap();
        let f = p.main_function();
        let b = f.entry;
        let n = f.block(b).stmts.len();
        let site = reaching_in_block(f, b, n, VarId(0)).unwrap();
        assert_eq!(site.stmt, 1);
        assert_eq!(site.rhs.as_ref().unwrap().as_int(), Some(2));
        assert!(reaching_in_block(f, b, 0, VarId(0)).is_none());
    }
}
