//! Per-function pass context: a shared analysis cache with explicit
//! invalidation tiers and wall-time instrumentation.
//!
//! The optimizer is a pipeline of passes that all consume the same small
//! set of analyses (dominators, post-dominators, the loop forest, the SSA
//! overlay, unique reaching definitions, induction classification).
//! Before this module existed every pass recomputed what it needed from
//! scratch; a [`PassContext`] instead computes each analysis once per
//! function, hands out [`Arc`] handles, and tracks exactly when a
//! transformation forces recomputation:
//!
//! * [`Invalidation::Statements`] — the pass rewrote, inserted, or removed
//!   *non-defining* statements (range checks, traps) but left the CFG and
//!   every variable definition intact. Dominators, post-dominators and the
//!   loop forest survive; statement-derived analyses (SSA, unique defs,
//!   induction classes) are dropped. All statement-tier passes in this
//!   code base touch only `Check`/`Trap` statements, which define no
//!   variables — that contract is what makes keeping the loop forest's
//!   `defined_vars`/`iv` descriptors sound.
//! * [`Invalidation::Cfg`] — the pass added blocks or retargeted edges
//!   (preheader insertion, critical-edge splitting). Everything is
//!   dropped.
//!
//! Staleness is double-checked with a structural CFG fingerprint: every
//! cache access re-hashes the block/successor structure and, on mismatch,
//! discards the cache and counts a *stale detection* — a pass mutated the
//! CFG without declaring it. Tests use this to prove the tiers are
//! honest; release code gets a safety net rather than silent misanalysis.
//!
//! The context doubles as the timing surface for `--timings` reports:
//! each analysis records computes, cache hits and cumulative wall time,
//! and passes record their own wall time via [`PassContext::record_pass`].
//! Since the obs integration, [`Timings`] is a thin view over
//! `nascent_obs` spans: every compute and pass body runs inside a
//! [`nascent_obs::trace::timed_span`], whose measured duration feeds
//! these counters whether or not a trace recorder is active — so the
//! stable `timings-format 1` report is byte-identical with tracing on or
//! off, and enabling a recorder additionally captures the same intervals
//! as Chrome-trace spans (category `analysis` or `pass`).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use nascent_obs::trace::timed_span;

use nascent_ir::{Function, VarId};

use crate::dom::{Dominators, PostDominators};
use crate::induction::{classify_function, InductionClass};
use crate::loops::{insert_preheaders_with, LoopForest, LoopId};
use crate::reach::{unique_defs, UniqueDefs};
use crate::ssa::Ssa;

/// Induction classification for every `(loop, variable)` pair, the owned
/// result of [`classify_function`]. Cached in place of the borrow-based
/// `InductionAnalysis` so the cache has no self-references.
pub type InductionClasses = HashMap<(LoopId, VarId), InductionClass>;

/// How much of the cache a transformation invalidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invalidation {
    /// Non-defining statements changed; CFG and definitions intact.
    /// Keeps dominators, post-dominators and the loop forest.
    Statements,
    /// Blocks or edges changed. Drops everything.
    Cfg,
}

/// Counters for one analysis kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStat {
    /// Times the analysis was computed from scratch.
    pub computed: u64,
    /// Times a cached result was handed out.
    pub hits: u64,
    /// Total wall time spent computing, in nanoseconds.
    pub nanos: u128,
}

/// Counters for one optimizer pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStat {
    /// Times the pass ran.
    pub runs: u64,
    /// Total wall time, in nanoseconds.
    pub nanos: u128,
}

/// Per-analysis and per-pass wall-time counters, mergeable across
/// functions and threads. `BTreeMap` keys keep [`Timings::report`] output
/// deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    /// Per-analysis counters, keyed by analysis name.
    pub analyses: BTreeMap<&'static str, AnalysisStat>,
    /// Per-pass counters, keyed by pass name.
    pub passes: BTreeMap<&'static str, PassStat>,
    /// Cache resets forced by an undeclared CFG change (should be zero).
    pub stale_detections: u64,
    /// Explicit invalidations requested by passes.
    pub invalidations: u64,
}

impl Timings {
    /// Fresh, all-zero counters.
    pub fn new() -> Timings {
        Timings::default()
    }

    /// Records a from-scratch analysis computation.
    pub fn record_compute(&mut self, name: &'static str, elapsed: Duration) {
        let s = self.analyses.entry(name).or_default();
        s.computed += 1;
        s.nanos += elapsed.as_nanos();
    }

    /// Records a cache hit for an analysis.
    pub fn record_hit(&mut self, name: &'static str) {
        self.analyses.entry(name).or_default().hits += 1;
    }

    /// Records one run of an optimizer pass.
    pub fn record_pass(&mut self, name: &'static str, elapsed: Duration) {
        let s = self.passes.entry(name).or_default();
        s.runs += 1;
        s.nanos += elapsed.as_nanos();
    }

    /// Accumulates another set of counters into this one.
    pub fn merge(&mut self, other: &Timings) {
        for (name, s) in &other.analyses {
            let t = self.analyses.entry(name).or_default();
            t.computed += s.computed;
            t.hits += s.hits;
            t.nanos += s.nanos;
        }
        for (name, s) in &other.passes {
            let t = self.passes.entry(name).or_default();
            t.runs += s.runs;
            t.nanos += s.nanos;
        }
        self.stale_detections += other.stale_detections;
        self.invalidations += other.invalidations;
    }

    /// Total wall time spent computing analyses, in nanoseconds.
    pub fn analysis_nanos(&self) -> u128 {
        self.analyses.values().map(|s| s.nanos).sum()
    }

    /// Total wall time spent inside passes, in nanoseconds.
    pub fn pass_nanos(&self) -> u128 {
        self.passes.values().map(|s| s.nanos).sum()
    }

    /// Stable machine-readable report, one record per line:
    ///
    /// ```text
    /// timings-format 1
    /// analysis dom computed=3 hits=12 time_ns=45678
    /// pass elim runs=2 time_ns=90123
    /// cache stale-detections=0 invalidations=5
    /// ```
    pub fn report(&self) -> String {
        let mut out = String::from("timings-format 1\n");
        for (name, s) in &self.analyses {
            out.push_str(&format!(
                "analysis {name} computed={} hits={} time_ns={}\n",
                s.computed, s.hits, s.nanos
            ));
        }
        for (name, s) in &self.passes {
            out.push_str(&format!(
                "pass {name} runs={} time_ns={}\n",
                s.runs, s.nanos
            ));
        }
        out.push_str(&format!(
            "cache stale-detections={} invalidations={}\n",
            self.stale_detections, self.invalidations
        ));
        out
    }

    /// The same counters as [`Timings::report`], as one JSON object:
    /// an array entry per analysis (`name`, `computed`, `hits`,
    /// `time_ns`) and per pass (`name`, `runs`, `time_ns`), plus the
    /// cache counters. Key order is fixed and map iteration is sorted,
    /// so the output is deterministic for a given set of counters.
    pub fn report_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"format\":1,\"analyses\":[");
        for (i, (name, s)) in self.analyses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"computed\":{},\"hits\":{},\"time_ns\":{}}}",
                s.computed, s.hits, s.nanos
            );
        }
        out.push_str("],\"passes\":[");
        for (i, (name, s)) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"runs\":{},\"time_ns\":{}}}",
                s.runs, s.nanos
            );
        }
        let _ = write!(
            out,
            "],\"cache\":{{\"stale_detections\":{},\"invalidations\":{}}}}}",
            self.stale_detections, self.invalidations
        );
        out
    }
}

/// Structural fingerprint of a function's CFG: block count, entry, and
/// every block's successor list. Statement edits do not change it; any
/// block addition or edge retargeting does.
pub fn cfg_fingerprint(f: &Function) -> u64 {
    let mut h = DefaultHasher::new();
    f.blocks.len().hash(&mut h);
    f.entry.index().hash(&mut h);
    for b in f.block_ids() {
        for s in f.successors(b) {
            s.index().hash(&mut h);
        }
        usize::MAX.hash(&mut h); // per-block separator
    }
    h.finish()
}

#[derive(Debug, Default)]
struct AnalysisCache {
    fingerprint: Option<u64>,
    generation: u64,
    dom: Option<Arc<Dominators>>,
    pdom: Option<Arc<PostDominators>>,
    loops: Option<Arc<LoopForest>>,
    ssa: Option<Arc<Ssa>>,
    udefs: Option<Arc<UniqueDefs>>,
    induction: Option<Arc<InductionClasses>>,
    vra: Option<Arc<crate::vra::Vra>>,
}

impl AnalysisCache {
    fn clear_statement_tier(&mut self) {
        self.ssa = None;
        self.udefs = None;
        self.induction = None;
        // check/trap edits change the facts assumed at each point
        self.vra = None;
    }

    fn clear_all(&mut self) {
        self.clear_statement_tier();
        self.dom = None;
        self.pdom = None;
        self.loops = None;
        self.fingerprint = None;
    }
}

/// Per-function analysis cache plus timing counters. One context serves
/// exactly one [`Function`]; handing it a different function is caught by
/// the CFG fingerprint only probabilistically, so don't.
#[derive(Debug, Default)]
pub struct PassContext {
    cache: AnalysisCache,
    /// Wall-time counters; merged across functions by callers.
    pub timings: Timings,
}

impl PassContext {
    /// Creates an empty context.
    pub fn new() -> PassContext {
        PassContext::default()
    }

    /// Generation counter, bumped on every invalidation or stale reset.
    /// Tests use it to observe cache lifecycle events.
    pub fn generation(&self) -> u64 {
        self.cache.generation
    }

    /// Verifies the cached results still describe `f`'s CFG; on a
    /// fingerprint mismatch the whole cache is discarded and the event is
    /// counted as a stale detection.
    fn validate(&mut self, f: &Function) {
        let fp = cfg_fingerprint(f);
        match self.cache.fingerprint {
            Some(old) if old == fp => {}
            Some(_) => {
                self.timings.stale_detections += 1;
                self.cache.generation += 1;
                self.cache.clear_all();
                self.cache.fingerprint = Some(fp);
            }
            None => self.cache.fingerprint = Some(fp),
        }
    }

    /// Dominator tree of `f`.
    pub fn dominators(&mut self, f: &Function) -> Arc<Dominators> {
        self.validate(f);
        if let Some(d) = &self.cache.dom {
            self.timings.record_hit("dom");
            return Arc::clone(d);
        }
        let sp = timed_span("dom", "analysis");
        let d = Arc::new(Dominators::compute(f));
        self.timings.record_compute("dom", sp.finish());
        self.cache.dom = Some(Arc::clone(&d));
        d
    }

    /// Post-dominator tree of `f`.
    pub fn post_dominators(&mut self, f: &Function) -> Arc<PostDominators> {
        self.validate(f);
        if let Some(d) = &self.cache.pdom {
            self.timings.record_hit("postdom");
            return Arc::clone(d);
        }
        let sp = timed_span("postdom", "analysis");
        let d = Arc::new(PostDominators::compute(f));
        self.timings.record_compute("postdom", sp.finish());
        self.cache.pdom = Some(Arc::clone(&d));
        d
    }

    /// Natural-loop forest of `f` (reuses cached dominators).
    pub fn loop_forest(&mut self, f: &Function) -> Arc<LoopForest> {
        self.validate(f);
        if let Some(l) = &self.cache.loops {
            self.timings.record_hit("loops");
            return Arc::clone(l);
        }
        let dom = self.dominators(f);
        let sp = timed_span("loops", "analysis");
        let l = Arc::new(LoopForest::compute_with(f, &dom));
        self.timings.record_compute("loops", sp.finish());
        self.cache.loops = Some(Arc::clone(&l));
        l
    }

    /// SSA overlay of `f` (reuses cached dominators).
    pub fn ssa(&mut self, f: &Function) -> Arc<Ssa> {
        self.validate(f);
        if let Some(s) = &self.cache.ssa {
            self.timings.record_hit("ssa");
            return Arc::clone(s);
        }
        let dom = self.dominators(f);
        let sp = timed_span("ssa", "analysis");
        let s = Arc::new(Ssa::compute(f, &dom));
        self.timings.record_compute("ssa", sp.finish());
        self.cache.ssa = Some(Arc::clone(&s));
        s
    }

    /// Unique static definitions of `f`.
    pub fn unique_defs(&mut self, f: &Function) -> Arc<UniqueDefs> {
        self.validate(f);
        if let Some(u) = &self.cache.udefs {
            self.timings.record_hit("unique-defs");
            return Arc::clone(u);
        }
        let sp = timed_span("unique-defs", "analysis");
        let u = Arc::new(unique_defs(f));
        self.timings.record_compute("unique-defs", sp.finish());
        self.cache.udefs = Some(Arc::clone(&u));
        u
    }

    /// Induction classification of `f` (reuses cached SSA and loops).
    pub fn induction(&mut self, f: &Function) -> Arc<InductionClasses> {
        self.validate(f);
        if let Some(i) = &self.cache.induction {
            self.timings.record_hit("induction");
            return Arc::clone(i);
        }
        let ssa = self.ssa(f);
        let forest = self.loop_forest(f);
        let sp = timed_span("induction", "analysis");
        let i = Arc::new(classify_function(f, &ssa, &forest));
        self.timings.record_compute("induction", sp.finish());
        self.cache.induction = Some(Arc::clone(&i));
        i
    }

    /// Value-range analysis of `f` (reuses the cached loop forest).
    /// Statement-tier: any check/trap edit drops it.
    pub fn vra(&mut self, f: &Function) -> Arc<crate::vra::Vra> {
        self.validate(f);
        if let Some(v) = &self.cache.vra {
            self.timings.record_hit("vra");
            return Arc::clone(v);
        }
        let forest = self.loop_forest(f);
        let sp = timed_span("vra", "analysis");
        let v = Arc::new(crate::vra::analyze_with_forest(f, &forest));
        self.timings.record_compute("vra", sp.finish());
        self.cache.vra = Some(Arc::clone(&v));
        v
    }

    /// Declares that a transformation ran, dropping the corresponding
    /// cache tier.
    pub fn invalidate(&mut self, what: Invalidation) {
        self.timings.invalidations += 1;
        self.cache.generation += 1;
        match what {
            Invalidation::Statements => self.cache.clear_statement_tier(),
            Invalidation::Cfg => self.cache.clear_all(),
        }
    }

    /// Ensures every loop of `f` has a preheader, reusing the cached loop
    /// forest and invalidating the CFG tier only when blocks were actually
    /// inserted. Returns `true` if `f` changed.
    pub fn ensure_preheaders(&mut self, f: &mut Function) -> bool {
        let forest = self.loop_forest(f);
        if forest.loops.iter().all(|l| l.preheader.is_some()) {
            return false;
        }
        let sp = timed_span("insert-preheaders", "pass");
        let changed = insert_preheaders_with(f, &forest);
        self.timings.record_pass("insert-preheaders", sp.finish());
        if changed {
            self.invalidate(Invalidation::Cfg);
        }
        changed
    }

    /// Runs `body` as a named pass, recording its wall time.
    pub fn time_pass<R>(&mut self, name: &'static str, body: impl FnOnce(&mut Self) -> R) -> R {
        let sp = timed_span(name, "pass");
        let r = body(self);
        self.timings.record_pass(name, sp.finish());
        r
    }
}
