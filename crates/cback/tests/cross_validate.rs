//! Cross-validation: the instrumented C back end and the interpreter are
//! two independent implementations of the paper's measurement harness and
//! must agree *exactly* — instruction counts, check counts, guard counts,
//! output values (bit-for-bit for reals), and trap verdicts — on naive
//! and optimized programs alike.

use nascent_cback::{cc_available, run_via_c, CRunResult};
use nascent_frontend::compile;
use nascent_interp::{run, Limits, RunResult, Value};
use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};

fn assert_agree(name: &str, interp: &RunResult, c: &CRunResult) {
    assert_eq!(
        interp.dynamic_instructions, c.dynamic_instructions,
        "{name}: instruction counts differ"
    );
    assert_eq!(
        interp.dynamic_checks, c.dynamic_checks,
        "{name}: check counts differ"
    );
    assert_eq!(
        interp.dynamic_guard_ops, c.dynamic_guard_ops,
        "{name}: guard counts differ"
    );
    assert_eq!(
        interp.dynamic_progress, c.dynamic_progress,
        "{name}: progress counts differ"
    );
    assert_eq!(
        interp.trap.is_some(),
        c.trap.is_some(),
        "{name}: trap verdicts differ ({:?} vs {:?})",
        interp.trap,
        c.trap
    );
    if let (Some(t), Some(ct)) = (&interp.trap, &c.trap) {
        assert_eq!(t.function, ct.function, "{name}: trap functions differ");
        assert_eq!(t.check, ct.check, "{name}: trap check strings differ");
        assert_eq!(
            t.at_instruction, ct.at_instruction,
            "{name}: trap instruction positions differ"
        );
        assert_eq!(
            t.at_progress, ct.at_progress,
            "{name}: trap progress positions differ"
        );
    }
    assert_eq!(
        interp.output.len(),
        c.output.len(),
        "{name}: output lengths"
    );
    for (iv, (kind, bits)) in interp.output.iter().zip(&c.output) {
        match (iv, kind) {
            (Value::Int(v), 'i') => assert_eq!(*v as u64, *bits, "{name}: int output"),
            (Value::Real(v), 'r') => {
                assert_eq!(v.to_bits(), *bits, "{name}: real output bits")
            }
            other => panic!("{name}: output kind mismatch {other:?}"),
        }
    }
}

fn cross_validate(name: &str, src: &str, scheme: Option<Scheme>) {
    if !cc_available() {
        eprintln!("skipping {name}: no C compiler");
        return;
    }
    let mut prog = compile(src).expect("compiles");
    if let Some(s) = scheme {
        optimize_program(&mut prog, &OptimizeOptions::scheme(s));
    }
    let interp = run(&prog, &Limits::default()).expect("interpreter runs");
    let tag = format!("{name}-{:?}", scheme);
    let c = run_via_c(&prog, &tag).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_agree(name, &interp, &c);
}

#[test]
fn straightline_program() {
    cross_validate(
        "straight",
        "program p\n integer a(1:10)\n integer i\n i = 3\n a(i) = i * 2\n print a(3)\nend\n",
        None,
    );
}

#[test]
fn loops_and_reals() {
    let src = "program p
 integer n, i
 real x(1:40), s
 n = 40
 s = 0.0
 do i = 1, n
  x(i) = 1.0 * i / 3.0
 enddo
 do i = 1, n
  s = s + x(i) * x(i)
 enddo
 print s
end
";
    cross_validate("loops-naive", src, None);
    cross_validate("loops-lls", src, Some(Scheme::Lls));
}

#[test]
fn trapping_program_agrees() {
    let src = "program p
 integer a(1:5)
 integer i
 print 7
 do i = 1, 9
  a(i) = i
 enddo
end
";
    cross_validate("trap-naive", src, None);
    cross_validate("trap-lls", src, Some(Scheme::Lls));
    cross_validate("trap-se", src, Some(Scheme::Se));
}

#[test]
fn conditional_checks_and_guards() {
    // zero-trip loop: the guard suppresses the hoisted check in both
    // implementations and the guard op is counted identically
    let src = "program p
 integer a(1:10)
 integer i, n, k
 n = 0
 k = 99
 do i = 1, n
  a(k) = i
 enddo
 print 1
end
";
    cross_validate("guards", src, Some(Scheme::Lls));
}

#[test]
fn subroutines_and_symbolic_bounds() {
    let src = "subroutine daxpy(n, k, da, dx, dy)
 integer n, k, i
 real da
 real dx(1:n), dy(1:n)
 do i = k, n
  dy(i) = dy(i) + da * dx(i)
 enddo
end
program p
 integer n, j
 integer i
 real a(1:30), b(1:30)
 n = 30
 do i = 1, n
  a(i) = 1.0 * i
  b(i) = 0.5 * i
 enddo
 do j = 1, 6
  call daxpy(n, j, 0.25, a, b)
 enddo
 print b(1) + b(n)
end
";
    cross_validate("daxpy-naive", src, None);
    cross_validate("daxpy-all", src, Some(Scheme::All));
}

#[test]
fn whole_test_suite_agrees_naive_and_optimized() {
    if !cc_available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    for b in nascent_suite::test_suite() {
        for scheme in [None, Some(Scheme::Lls), Some(Scheme::Ni)] {
            cross_validate(b.name, &b.source, scheme);
        }
    }
}

#[test]
fn mod_and_intrinsics() {
    let src = "program p
 integer a(1:20)
 integer i, j
 do i = 1, 20
  j = mod(i * 7, 20) + 1
  a(j) = max(min(i, 15), 2)
 enddo
 print a(1) + a(20)
end
";
    cross_validate("intrinsics", src, None);
    cross_validate("intrinsics-all", src, Some(Scheme::All));
}

#[test]
fn multi_dimensional_arrays() {
    let src = "program p
 integer g(0:7, 3:9)
 integer i, j, s
 do i = 0, 7
  do j = 3, 9
   g(i, j) = i * 10 + j
  enddo
 enddo
 s = 0
 do i = 0, 7
  s = s + g(i, 3) + g(i, 9)
 enddo
 print s
end
";
    cross_validate("2d", src, None);
    cross_validate("2d-lls", src, Some(Scheme::Lls));
}
