//! Compiles and runs generated C, parsing the instrumentation protocol.

use std::path::PathBuf;
use std::process::Command;

use nascent_ir::Program;

/// Result of an instrumented C run (mirrors
/// `nascent_interp::RunResult`).
#[derive(Debug, Clone, PartialEq)]
pub struct CRunResult {
    /// Dynamic non-check instructions.
    pub dynamic_instructions: u64,
    /// Dynamic checks performed.
    pub dynamic_checks: u64,
    /// Guard evaluations of conditional checks.
    pub dynamic_guard_ops: u64,
    /// Name of the function whose check trapped, if any.
    pub trap_function: Option<String>,
    /// Emitted values: integers as `("i", bits)` where bits is the value,
    /// reals as `("r", f64::to_bits)`.
    pub output: Vec<(char, u64)>,
}

/// Failure to build or run the generated C.
#[derive(Debug)]
pub enum CRunError {
    /// I/O problem writing or invoking.
    Io(std::io::Error),
    /// The C compiler rejected the generated code.
    CompileFailed(String),
    /// The binary exited abnormally (division by zero is exit 3,
    /// undetected out-of-bounds exit 4).
    RunFailed { code: Option<i32>, stdout: String },
    /// The protocol output could not be parsed.
    BadProtocol(String),
}

impl std::fmt::Display for CRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CRunError::Io(e) => write!(f, "io: {e}"),
            CRunError::CompileFailed(msg) => write!(f, "cc failed: {msg}"),
            CRunError::RunFailed { code, .. } => write!(f, "binary failed with {code:?}"),
            CRunError::BadProtocol(l) => write!(f, "bad protocol line: {l}"),
        }
    }
}

impl std::error::Error for CRunError {}

impl From<std::io::Error> for CRunError {
    fn from(e: std::io::Error) -> Self {
        CRunError::Io(e)
    }
}

/// Emits, compiles (with `-O1 -fwrapv`) and runs `prog`, returning the
/// parsed counters.
///
/// # Errors
///
/// See [`CRunError`]. Division by zero and undetected out-of-bounds
/// accesses surface as [`CRunError::RunFailed`] with exit codes 3 and 4.
pub fn run_via_c(prog: &Program, tag: &str) -> Result<CRunResult, CRunError> {
    let dir = std::env::temp_dir().join(format!("nascent-cback-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir)?;
    let c_path: PathBuf = dir.join("prog.c");
    let bin_path: PathBuf = dir.join("prog");
    std::fs::write(&c_path, crate::emit_c(prog))?;
    let cc = Command::new("cc")
        .arg("-O1")
        .arg("-fwrapv")
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()?;
    if !cc.status.success() {
        return Err(CRunError::CompileFailed(
            String::from_utf8_lossy(&cc.stderr).into_owned(),
        ));
    }
    let run = Command::new(&bin_path).output()?;
    let stdout = String::from_utf8_lossy(&run.stdout).into_owned();
    if !run.status.success() {
        return Err(CRunError::RunFailed {
            code: run.status.code(),
            stdout,
        });
    }
    parse_protocol(&stdout)
}

fn parse_protocol(stdout: &str) -> Result<CRunResult, CRunError> {
    let mut result = CRunResult {
        dynamic_instructions: 0,
        dynamic_checks: 0,
        dynamic_guard_ops: 0,
        trap_function: None,
        output: Vec::new(),
    };
    let mut saw_counters = false;
    for line in stdout.lines() {
        let mut parts = line.splitn(3, ' ');
        match parts.next() {
            Some("O") => {
                let kind = parts
                    .next()
                    .ok_or_else(|| CRunError::BadProtocol(line.into()))?;
                let val = parts
                    .next()
                    .ok_or_else(|| CRunError::BadProtocol(line.into()))?;
                match kind {
                    "i" => {
                        let v: i64 = val
                            .parse()
                            .map_err(|_| CRunError::BadProtocol(line.into()))?;
                        result.output.push(('i', v as u64));
                    }
                    "r" => {
                        let v: f64 = val
                            .parse()
                            .map_err(|_| CRunError::BadProtocol(line.into()))?;
                        result.output.push(('r', v.to_bits()));
                    }
                    _ => return Err(CRunError::BadProtocol(line.into())),
                }
            }
            Some("T") => {
                result.trap_function = Some(parts.next().unwrap_or("").to_string());
            }
            Some("C") => {
                let rest = line[2..].trim();
                for field in rest.split_whitespace() {
                    let (key, val) = field
                        .split_once('=')
                        .ok_or_else(|| CRunError::BadProtocol(line.into()))?;
                    let v: u64 = val
                        .parse()
                        .map_err(|_| CRunError::BadProtocol(line.into()))?;
                    match key {
                        "ins" => result.dynamic_instructions = v,
                        "chk" => result.dynamic_checks = v,
                        "grd" => result.dynamic_guard_ops = v,
                        _ => return Err(CRunError::BadProtocol(line.into())),
                    }
                }
                saw_counters = true;
            }
            Some("E") => {
                return Err(CRunError::BadProtocol(format!("runtime error: {line}")));
            }
            _ => return Err(CRunError::BadProtocol(line.into())),
        }
    }
    if !saw_counters {
        return Err(CRunError::BadProtocol("missing counter line".into()));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parses() {
        let r = parse_protocol("O i 42\nO r 1.5\nT demo\nC ins=100 chk=7 grd=2\n").unwrap();
        assert_eq!(r.dynamic_instructions, 100);
        assert_eq!(r.dynamic_checks, 7);
        assert_eq!(r.dynamic_guard_ops, 2);
        assert_eq!(r.trap_function.as_deref(), Some("demo"));
        assert_eq!(r.output.len(), 2);
        assert_eq!(r.output[0], ('i', 42));
        assert_eq!(r.output[1], ('r', 1.5f64.to_bits()));
    }

    #[test]
    fn missing_counters_is_error() {
        assert!(parse_protocol("O i 1\n").is_err());
        assert!(parse_protocol("garbage\n").is_err());
    }
}
