//! Compiles and runs generated C, parsing the instrumentation protocol.
//!
//! The compiler is `$CC` when set (falling back to `cc`); runs are
//! bounded by a wall-clock timeout (`NASCENT_CBACK_TIMEOUT_MS`, default
//! 60 s) and the scratch directory is removed on every path, error or
//! not.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use nascent_ir::Program;

/// A trap parsed from a `T <ins> <prg> <fn> <check>` protocol line —
/// field-for-field what `nascent_interp::Trap` carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CTrap {
    /// Function in which the check fired.
    pub function: String,
    /// The check, rendered in the paper's `Check (...)` notation (the
    /// emitter bakes the interpreter's exact `Display` string into the
    /// binary, so the two tiers agree byte-for-byte).
    pub check: String,
    /// Dynamic instruction count (non-check) at the moment of the trap.
    pub at_instruction: u64,
    /// Non-check statements executed at the moment of the trap.
    pub at_progress: u64,
}

/// Result of an instrumented C run (mirrors
/// `nascent_interp::RunResult`).
#[derive(Debug, Clone, PartialEq)]
pub struct CRunResult {
    /// Dynamic non-check instructions.
    pub dynamic_instructions: u64,
    /// Non-check, non-trap statements executed (the jump-insensitive
    /// progress metric).
    pub dynamic_progress: u64,
    /// Dynamic checks performed.
    pub dynamic_checks: u64,
    /// Guard evaluations of conditional checks.
    pub dynamic_guard_ops: u64,
    /// The trap that ended the run, if any.
    pub trap: Option<CTrap>,
    /// Emitted values: integers as `("i", bits)` where bits is the value,
    /// reals as `("r", f64::to_bits)`.
    pub output: Vec<(char, u64)>,
    /// In-process wall time of the measured run(s) in nanoseconds, from
    /// the binary's own `R ns=...` line — excludes process spawn and
    /// compile. Absent when the run trapped (the trap path exits before
    /// the timing line).
    pub exec_ns: Option<u64>,
    /// How many times the program ran inside the process
    /// (`NASCENT_CBACK_REPEAT`; counters accumulate across repeats,
    /// output comes from the final repeat only, so anything but 1 is
    /// only useful for timing).
    pub repeat: u64,
}

/// A runtime error reported by the instrumented binary (`E` protocol
/// lines) — variant-for-variant what `nascent_interp::RunError` carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CRuntimeError {
    /// `E steps`: the step budget (`NASCENT_STEP_LIMIT`) was exhausted.
    StepLimit,
    /// `E depth`: call depth (`NASCENT_DEPTH_LIMIT`) exceeded.
    CallDepth,
    /// `E div <fn>`: integer division or remainder by zero.
    DivisionByZero { function: String },
    /// `E oob <fn> <array> <dim> <index> <lo> <hi>`: an access went
    /// outside the declared bounds without a check trapping first.
    OutOfBounds {
        function: String,
        array: String,
        dim: usize,
        index: i64,
        lo: i64,
        hi: i64,
    },
    /// `E bad <fn> <array>`: an array was declared with negative extent.
    BadBounds { function: String, array: String },
}

/// Failure to build or run the generated C.
#[derive(Debug)]
pub enum CRunError {
    /// I/O problem writing or invoking.
    Io(std::io::Error),
    /// The C compiler rejected the generated code; `compiler` names the
    /// binary that ran (`$CC` or `cc`) and `stderr` is its full output.
    CompileFailed { compiler: String, stderr: String },
    /// The binary ran longer than the configured timeout and was killed.
    Timeout { limit: Duration },
    /// The binary exited abnormally without reporting a runtime error.
    RunFailed { code: Option<i32>, stdout: String },
    /// The binary reported a runtime error (`E` line).
    Runtime(CRuntimeError),
    /// The protocol output could not be parsed.
    BadProtocol(String),
}

impl std::fmt::Display for CRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CRunError::Io(e) => write!(f, "io: {e}"),
            CRunError::CompileFailed { compiler, stderr } => {
                write!(f, "`{compiler}` failed: {stderr}")
            }
            CRunError::Timeout { limit } => {
                write!(f, "binary killed after {} ms timeout", limit.as_millis())
            }
            CRunError::RunFailed { code, .. } => write!(f, "binary failed with {code:?}"),
            CRunError::Runtime(e) => write!(f, "runtime error: {e:?}"),
            CRunError::BadProtocol(l) => write!(f, "bad protocol line: {l}"),
        }
    }
}

impl std::error::Error for CRunError {}

impl From<std::io::Error> for CRunError {
    fn from(e: std::io::Error) -> Self {
        CRunError::Io(e)
    }
}

/// The C compiler to invoke: `$CC` when set and non-empty, else `cc`.
pub(crate) fn cc_command() -> String {
    std::env::var("CC")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "cc".to_string())
}

/// Run timeout: `NASCENT_CBACK_TIMEOUT_MS` when set, else 60 s.
pub(crate) fn run_timeout() -> Duration {
    std::env::var("NASCENT_CBACK_TIMEOUT_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(60))
}

/// Scratch directory removed on drop — success, error, and panic paths
/// all clean up.
pub(crate) struct TempDir(pub PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes `c_source` into `dir` as `<name>.c` and compiles it (with
/// `-O2 -fwrapv`) to `dir/<name>`, returning the binary path.
pub(crate) fn compile_c(c_source: &str, dir: &Path, name: &str) -> Result<PathBuf, CRunError> {
    let c_path = dir.join(format!("{name}.c"));
    let bin_path = dir.join(name);
    std::fs::write(&c_path, c_source)?;
    let compiler = cc_command();
    let cc = Command::new(&compiler)
        .arg("-O2")
        .arg("-fwrapv")
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()?;
    if !cc.status.success() {
        return Err(CRunError::CompileFailed {
            compiler,
            stderr: String::from_utf8_lossy(&cc.stderr).into_owned(),
        });
    }
    Ok(bin_path)
}

/// Runs a compiled instrumented binary with the given extra environment,
/// killing it after `timeout`, and parses the protocol.
pub(crate) fn exec_binary(
    bin: &Path,
    envs: &[(&str, String)],
    timeout: Duration,
) -> Result<CRunResult, CRunError> {
    let mut cmd = Command::new(bin);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let mut pipe = child.stdout.take().expect("stdout piped");
    let reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = pipe.read_to_end(&mut buf);
        buf
    });
    let deadline = Instant::now() + timeout;
    let status: ExitStatus = loop {
        if let Some(st) = child.try_wait()? {
            break st;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
            return Err(CRunError::Timeout { limit: timeout });
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let stdout = String::from_utf8_lossy(&reader.join().unwrap_or_default()).into_owned();
    let parsed = parse_protocol(&stdout);
    match parsed {
        // a reported runtime error wins over the generic nonzero-exit story
        Err(CRunError::Runtime(e)) => Err(CRunError::Runtime(e)),
        _ if !status.success() => Err(CRunError::RunFailed {
            code: status.code(),
            stdout,
        }),
        other => other,
    }
}

/// Emits, compiles (with `-O2 -fwrapv`) and runs `prog`, returning the
/// parsed counters. The scratch directory is removed whether the run
/// succeeds or fails. For repeated execution of the same program, use
/// [`crate::native::NativeRunner`], which caches the compiled binary by
/// content hash.
///
/// # Errors
///
/// See [`CRunError`]. Runtime errors (division by zero, undetected
/// out-of-bounds, negative extents, limit exhaustion) surface as
/// [`CRunError::Runtime`].
pub fn run_via_c(prog: &Program, tag: &str) -> Result<CRunResult, CRunError> {
    let dir =
        TempDir(std::env::temp_dir().join(format!("nascent-cback-{}-{}", std::process::id(), tag)));
    std::fs::create_dir_all(&dir.0)?;
    let bin = compile_c(&crate::emit_c(prog), &dir.0, "prog")?;
    exec_binary(&bin, &[], run_timeout())
}

fn bad(line: &str) -> CRunError {
    CRunError::BadProtocol(line.into())
}

fn parse_protocol(stdout: &str) -> Result<CRunResult, CRunError> {
    let mut result = CRunResult {
        dynamic_instructions: 0,
        dynamic_progress: 0,
        dynamic_checks: 0,
        dynamic_guard_ops: 0,
        trap: None,
        output: Vec::new(),
        exec_ns: None,
        repeat: 1,
    };
    let mut saw_counters = false;
    for line in stdout.lines() {
        match line.split(' ').next() {
            Some("O") => {
                let mut parts = line.splitn(3, ' ');
                parts.next();
                let kind = parts.next().ok_or_else(|| bad(line))?;
                let val = parts.next().ok_or_else(|| bad(line))?;
                match kind {
                    "i" => {
                        let v: i64 = val.parse().map_err(|_| bad(line))?;
                        result.output.push(('i', v as u64));
                    }
                    "r" => {
                        let v: f64 = val.parse().map_err(|_| bad(line))?;
                        result.output.push(('r', v.to_bits()));
                    }
                    _ => return Err(bad(line)),
                }
            }
            Some("T") => {
                // T <ins> <prg> <fn> <check...>
                let mut parts = line.splitn(5, ' ');
                parts.next();
                let ins = parts.next().ok_or_else(|| bad(line))?;
                let prg = parts.next().ok_or_else(|| bad(line))?;
                let function = parts.next().ok_or_else(|| bad(line))?.to_string();
                let check = parts.next().unwrap_or("").to_string();
                result.trap = Some(CTrap {
                    function,
                    check,
                    at_instruction: ins.parse().map_err(|_| bad(line))?,
                    at_progress: prg.parse().map_err(|_| bad(line))?,
                });
            }
            Some("C") => {
                let rest = line[2..].trim();
                for field in rest.split_whitespace() {
                    let (key, val) = field.split_once('=').ok_or_else(|| bad(line))?;
                    let v: u64 = val.parse().map_err(|_| bad(line))?;
                    match key {
                        "ins" => result.dynamic_instructions = v,
                        "chk" => result.dynamic_checks = v,
                        "grd" => result.dynamic_guard_ops = v,
                        "prg" => result.dynamic_progress = v,
                        _ => return Err(bad(line)),
                    }
                }
                saw_counters = true;
            }
            Some("R") => {
                for field in line[2..].split_whitespace() {
                    let (key, val) = field.split_once('=').ok_or_else(|| bad(line))?;
                    let v: u64 = val.parse().map_err(|_| bad(line))?;
                    match key {
                        "ns" => result.exec_ns = Some(v),
                        "repeat" => result.repeat = v,
                        _ => return Err(bad(line)),
                    }
                }
            }
            Some("E") => {
                let parts: Vec<&str> = line.split(' ').collect();
                let err = match parts.get(1).copied() {
                    Some("steps") => CRuntimeError::StepLimit,
                    Some("depth") => CRuntimeError::CallDepth,
                    Some("div") => CRuntimeError::DivisionByZero {
                        function: parts.get(2).ok_or_else(|| bad(line))?.to_string(),
                    },
                    Some("oob") => {
                        if parts.len() != 8 {
                            return Err(bad(line));
                        }
                        CRuntimeError::OutOfBounds {
                            function: parts[2].to_string(),
                            array: parts[3].to_string(),
                            dim: parts[4].parse().map_err(|_| bad(line))?,
                            index: parts[5].parse().map_err(|_| bad(line))?,
                            lo: parts[6].parse().map_err(|_| bad(line))?,
                            hi: parts[7].parse().map_err(|_| bad(line))?,
                        }
                    }
                    Some("bad") => CRuntimeError::BadBounds {
                        function: parts.get(2).ok_or_else(|| bad(line))?.to_string(),
                        array: parts.get(3).ok_or_else(|| bad(line))?.to_string(),
                    },
                    _ => return Err(bad(line)),
                };
                return Err(CRunError::Runtime(err));
            }
            _ => return Err(bad(line)),
        }
    }
    if !saw_counters {
        return Err(CRunError::BadProtocol("missing counter line".into()));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parses() {
        let r = parse_protocol(
            "O i 42\nO r 1.5\nT 100 37 demo Check (i <= 5)\nC ins=100 chk=7 grd=2 prg=37\n",
        )
        .unwrap();
        assert_eq!(r.dynamic_instructions, 100);
        assert_eq!(r.dynamic_checks, 7);
        assert_eq!(r.dynamic_guard_ops, 2);
        assert_eq!(r.dynamic_progress, 37);
        let trap = r.trap.expect("trap parsed");
        assert_eq!(trap.function, "demo");
        assert_eq!(trap.check, "Check (i <= 5)");
        assert_eq!(trap.at_instruction, 100);
        assert_eq!(trap.at_progress, 37);
        assert_eq!(r.output.len(), 2);
        assert_eq!(r.output[0], ('i', 42));
        assert_eq!(r.output[1], ('r', 1.5f64.to_bits()));
        assert_eq!(r.exec_ns, None);
    }

    #[test]
    fn timing_line_parses() {
        let r = parse_protocol("R ns=12345 repeat=10\nC ins=1 chk=0 grd=0 prg=1\n").unwrap();
        assert_eq!(r.exec_ns, Some(12345));
        assert_eq!(r.repeat, 10);
    }

    #[test]
    fn runtime_errors_parse() {
        match parse_protocol("E div main\n") {
            Err(CRunError::Runtime(CRuntimeError::DivisionByZero { function })) => {
                assert_eq!(function, "main");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_protocol("E oob main a 1 7 1 5\n") {
            Err(CRunError::Runtime(CRuntimeError::OutOfBounds {
                function,
                array,
                dim,
                index,
                lo,
                hi,
            })) => {
                assert_eq!((function.as_str(), array.as_str()), ("main", "a"));
                assert_eq!((dim, index, lo, hi), (1, 7, 1, 5));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_protocol("E steps\n"),
            Err(CRunError::Runtime(CRuntimeError::StepLimit))
        ));
        assert!(matches!(
            parse_protocol("E depth\n"),
            Err(CRunError::Runtime(CRuntimeError::CallDepth))
        ));
        assert!(matches!(
            parse_protocol("E bad main a\n"),
            Err(CRunError::Runtime(CRuntimeError::BadBounds { .. }))
        ));
    }

    #[test]
    fn missing_counters_is_error() {
        assert!(parse_protocol("O i 1\n").is_err());
        assert!(parse_protocol("garbage\n").is_err());
    }
}
