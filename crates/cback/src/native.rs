//! The native execution tier: a content-hash-keyed compile cache over
//! the instrumented C back end.
//!
//! [`run_via_c`](crate::run_via_c) pays an emit + compile + exec for
//! every call; across a 42-configuration × 10-program matrix most cells
//! optimize to the *same* program text, so the compile (by far the
//! dominant cost) is wasted work. [`NativeRunner`] keys compiled
//! binaries by a double-FNV content hash of the emitted C — the same
//! "exact content ⇒ exact reuse" discipline as the driver's fleet-wide
//! result cache — and coalesces concurrent identical compiles: the
//! first caller becomes the owner and runs the compiler, later callers
//! block on the entry's condvar and share the owner's binary. Runtime
//! limits travel per *exec* (environment variables), not per binary, so
//! one cached binary serves every limit setting.
//!
//! [`global()`] is the process-wide instance every
//! `Engine::Native` run goes through; [`stats()`](NativeRunner::stats)
//! feeds the service's `/metrics` gauges and the `BENCH_10.json`
//! hit-rate evidence.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use nascent_ir::Program;

use crate::runner::{self, CRunError, CRunResult};

/// 64-bit FNV-1a (the repo's standard content-hash primitive).
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cache key: two independent hashes of the emitted C plus its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    h1: u64,
    h2: u64,
    len: usize,
}

impl Key {
    fn of(c_source: &str) -> Key {
        let bytes = c_source.as_bytes();
        Key {
            h1: fnv1a(bytes, 0xcbf2_9ce4_8422_2325),
            h2: fnv1a(bytes, 0x6c62_272e_07bb_0142),
            len: bytes.len(),
        }
    }
}

/// A finished compile: the binary path, or (compiler, stderr) of the
/// failure — clonable so every waiter sees the owner's verdict.
type Compiled = Result<PathBuf, (String, String)>;

/// One cache entry: empty while the owner compiles, then filled once.
struct Slot {
    done: Mutex<Option<Compiled>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, value: Compiled) {
        *self.done.lock().expect("slot lock") = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> Compiled {
        let mut done = self.done.lock().expect("slot lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("slot wait");
        }
        done.clone().expect("filled")
    }
}

/// Compile-cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeCacheStats {
    /// Runs that found their binary already compiled.
    pub hits: u64,
    /// Runs that became the owner and invoked the C compiler.
    pub compiles: u64,
    /// Runs that arrived while an identical compile was in flight and
    /// waited for its binary instead of recompiling.
    pub coalesced: u64,
    /// Distinct programs compiled (in-flight included).
    pub entries: usize,
}

impl NativeCacheStats {
    /// hits / (hits + compiles + coalesced), in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.compiles + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Traffic since an earlier snapshot (for per-round hit rates).
    #[must_use]
    pub fn since(&self, earlier: &NativeCacheStats) -> NativeCacheStats {
        NativeCacheStats {
            hits: self.hits - earlier.hits,
            compiles: self.compiles - earlier.compiles,
            coalesced: self.coalesced - earlier.coalesced,
            entries: self.entries,
        }
    }
}

/// The content-hash-keyed compile cache + exec engine.
pub struct NativeRunner {
    dir: PathBuf,
    slots: Mutex<HashMap<Key, Arc<Slot>>>,
    hits: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
    cleanup: bool,
}

static GLOBAL: OnceLock<NativeRunner> = OnceLock::new();
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The process-wide runner used by `Engine::Native`: every caller in
/// the process shares one cache, so each distinct optimized program
/// compiles exactly once per fleet.
pub fn global() -> &'static NativeRunner {
    GLOBAL.get_or_init(|| NativeRunner::with_cleanup(false))
}

/// Compile-cache counters of the [`global`] runner (service metrics,
/// bench snapshots).
pub fn global_stats() -> NativeCacheStats {
    global().stats()
}

impl Default for NativeRunner {
    fn default() -> Self {
        NativeRunner::new()
    }
}

impl NativeRunner {
    /// A fresh runner with its own scratch directory, removed on drop.
    pub fn new() -> NativeRunner {
        NativeRunner::with_cleanup(true)
    }

    fn with_cleanup(cleanup: bool) -> NativeRunner {
        let seq = INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed);
        NativeRunner {
            dir: std::env::temp_dir().join(format!(
                "nascent-native-{}-{}",
                std::process::id(),
                seq
            )),
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cleanup,
        }
    }

    /// Emits, compiles (once per distinct program), and runs `prog`
    /// under the given limits, which are passed to the binary via
    /// environment variables so they never fragment the cache key.
    ///
    /// # Errors
    ///
    /// See [`CRunError`]; a cached compile failure is replayed to every
    /// later caller without re-invoking the compiler.
    pub fn run(
        &self,
        prog: &Program,
        max_steps: u64,
        max_call_depth: u64,
    ) -> Result<CRunResult, CRunError> {
        self.run_repeat(prog, max_steps, max_call_depth, 1)
    }

    /// [`run`](Self::run) with the program executed `repeat` times
    /// inside one process, for spawn-free self-timing (`exec_ns` in the
    /// result covers all repeats). Counters accumulate across repeats;
    /// output is printed only on the final repeat, so the parsed output
    /// equals a single run's and the timed loop stays stdio-free.
    ///
    /// # Errors
    ///
    /// See [`CRunError`].
    pub fn run_repeat(
        &self,
        prog: &Program,
        max_steps: u64,
        max_call_depth: u64,
        repeat: u64,
    ) -> Result<CRunResult, CRunError> {
        let c_source = {
            let _sp = nascent_obs::trace::span("emit", "native");
            crate::emit_c(prog)
        };
        let bin = self.compiled(&c_source)?;
        let envs = [
            ("NASCENT_STEP_LIMIT", max_steps.to_string()),
            ("NASCENT_DEPTH_LIMIT", max_call_depth.to_string()),
            ("NASCENT_CBACK_REPEAT", repeat.to_string()),
        ];
        let mut sp = nascent_obs::trace::span("exec", "native");
        let r = runner::exec_binary(&bin, &envs, runner::run_timeout());
        if let Ok(res) = &r {
            sp.attr("exec_ns", res.exec_ns.unwrap_or(0));
        }
        r
    }

    /// The compiled binary for `c_source`: owner compiles, waiters
    /// block, completed entries are instant hits.
    fn compiled(&self, c_source: &str) -> Result<PathBuf, CRunError> {
        let key = Key::of(c_source);
        let (slot, owner) = {
            let mut slots = self.slots.lock().expect("cache lock");
            match slots.entry(key) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(e) => {
                    let slot = Arc::new(Slot::new());
                    e.insert(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        let mut sp = nascent_obs::trace::span("compile", "native");
        sp.attr("cached", i64::from(!owner));
        let compiled = if owner {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            let result = self.compile_now(c_source, &key);
            slot.fill(result.clone());
            result
        } else {
            // completed entry => hit; in-flight entry => coalesced wait
            if slot.done.lock().expect("slot lock").is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            slot.wait()
        };
        compiled.map_err(|(compiler, stderr)| CRunError::CompileFailed { compiler, stderr })
    }

    fn compile_now(&self, c_source: &str, key: &Key) -> Compiled {
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            return Err(("mkdir".to_string(), e.to_string()));
        }
        let name = format!("p{:016x}{:016x}", key.h1, key.h2);
        match runner::compile_c(c_source, &self.dir, &name) {
            Ok(bin) => Ok(bin),
            Err(CRunError::CompileFailed { compiler, stderr }) => Err((compiler, stderr)),
            Err(other) => Err((runner::cc_command(), other.to_string())),
        }
    }

    /// Current compile-cache counters.
    pub fn stats(&self) -> NativeCacheStats {
        NativeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").len(),
        }
    }
}

impl Drop for NativeRunner {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}
