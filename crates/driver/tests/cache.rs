//! Fleet-wide result-cache behavior: hit/miss accounting, invalidation
//! by content (source or configuration edits change the key), and the
//! compute-once guarantee for concurrent identical requests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use nascent_driver::{compute, harness, Mode, Pipeline, Request, RunConfig};
use nascent_rangecheck::Scheme;

const PROGRAM: &str = "program cachetest
 integer a(1:50)
 integer i
 do i = 1, 50
  a(i) = i * 2
 enddo
 print a(50)
end
";

fn request(program: &str) -> Request {
    Request {
        program: program.into(),
        config: RunConfig::default(),
        mode: Mode::Certify,
    }
}

#[test]
fn identical_requests_hit_the_cache() {
    let pipeline = Pipeline::new();
    let req = request(PROGRAM);
    let first = pipeline.run(&req).unwrap();
    let stats = pipeline.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));

    let second = pipeline.run(&req).unwrap();
    let stats = pipeline.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.entries, 1);
    // not merely equal — the same stored outcome
    assert!(Arc::ptr_eq(&first, &second));
    assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
}

#[test]
fn source_edit_invalidates() {
    let pipeline = Pipeline::new();
    let req = request(PROGRAM);
    pipeline.run(&req).unwrap();
    // one changed byte in the source is a different key
    let edited = request(&PROGRAM.replace("i * 2", "i * 3"));
    let out = pipeline.run(&edited).unwrap();
    let stats = pipeline.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
    assert_eq!(stats.entries, 2);
    assert_eq!(out.counters.output, vec!["150".to_string()]);
}

#[test]
fn config_or_mode_edit_invalidates() {
    let pipeline = Pipeline::new();
    let req = request(PROGRAM);
    pipeline.run(&req).unwrap();

    let mut other_scheme = request(PROGRAM);
    other_scheme.config.scheme = Scheme::Ni;
    pipeline.run(&other_scheme).unwrap();
    assert_eq!(pipeline.cache_stats().misses, 2);

    let mut other_mode = request(PROGRAM);
    other_mode.mode = Mode::Optimize;
    let out = pipeline.run(&other_mode).unwrap();
    let stats = pipeline.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 3));
    assert!(out.certificate.is_none(), "optimize mode: no certificate");
}

#[test]
fn cached_outcome_matches_a_fresh_computation() {
    let pipeline = Pipeline::new();
    let req = request(PROGRAM);
    pipeline.run(&req).unwrap();
    let cached = pipeline.run(&req).unwrap();
    let fresh = compute(&req, &harness::harness_limits()).unwrap();
    assert_eq!(
        cached.deterministic_json().render(),
        fresh.deterministic_json().render(),
        "cache must replay the exact outcome"
    );
}

/// Two simultaneous identical requests compute exactly once: the
/// requests rendezvous on a barrier before entering the pipeline, and a
/// counter inside the computation proves single execution.
#[test]
fn concurrent_identical_requests_compute_once() {
    const THREADS: usize = 8;
    let pipeline = Arc::new(Pipeline::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let req = request(PROGRAM);
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let pipeline = Arc::clone(&pipeline);
                let barrier = Arc::clone(&barrier);
                let req = req.clone();
                s.spawn(move || {
                    barrier.wait();
                    pipeline.run(&req).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = pipeline.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one thread computed");
    assert_eq!(
        stats.hits + stats.coalesced,
        (THREADS - 1) as u64,
        "everyone else reused it"
    );
    assert_eq!(stats.entries, 1);
    for o in &outcomes[1..] {
        assert!(
            Arc::ptr_eq(&outcomes[0], o),
            "all threads share one stored outcome"
        );
    }
}

/// The same single-execution property, proven independently of the
/// traffic counters: a side-effect counter in the computed closure.
#[test]
fn coalesced_waiters_never_rerun_the_computation() {
    const THREADS: usize = 6;
    let cache = nascent_driver::cache::ResultCache::new();
    let runs = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    let req = request(PROGRAM);
    let limits = harness::harness_limits();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                barrier.wait();
                let out = cache
                    .get_or_compute(&req, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        compute(&req, &limits)
                    })
                    .unwrap();
                assert!(out.certificate.as_ref().unwrap().ok());
            });
        }
    });
    assert_eq!(runs.load(Ordering::SeqCst), 1, "computed exactly once");
}

#[test]
fn errors_are_cached_like_outcomes() {
    let pipeline = Pipeline::new();
    let req = request("program broken\n x = \nend\n");
    let first = pipeline.run(&req).unwrap_err();
    assert!(first.is_client_error());
    let second = pipeline.run(&req).unwrap_err();
    assert_eq!(first, second);
    let stats = pipeline.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}
