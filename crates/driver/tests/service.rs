//! In-process integration tests for the `nascentd` service: endpoint
//! behavior, concurrency, backpressure, panic isolation, and
//! byte-parity between the service and the CLI pipeline path.

use std::sync::Arc;

use nascent_driver::config::Mode;
use nascent_driver::http::request;
use nascent_driver::json::{parse, Json};
use nascent_driver::service::{start, ServerHandle, ServiceConfig};
use nascent_driver::{compute, harness, Request, RunConfig};

const PROGRAM: &str = "program servicetest
 integer a(1:40)
 integer i
 do i = 1, 40
  a(i) = i
 enddo
 print a(40)
end
";

fn test_server() -> ServerHandle {
    start(ServiceConfig {
        test_endpoints: true,
        ..ServiceConfig::default()
    })
    .expect("server starts")
}

fn body_for(program: &str, scheme: &str) -> String {
    Json::Obj(
        [
            ("program".to_string(), Json::Str(program.into())),
            ("scheme".to_string(), Json::Str(scheme.into())),
        ]
        .into_iter()
        .collect(),
    )
    .render()
}

fn addr(h: &ServerHandle) -> String {
    h.addr.to_string()
}

#[test]
fn healthz_and_metrics_respond() {
    let server = test_server();
    let (status, body) = request(&addr(&server), "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        parse(std::str::from_utf8(&body).unwrap())
            .unwrap()
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    let (status, body) = request(&addr(&server), "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    let metrics = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(metrics.get("cache").is_some());
    assert!(metrics.get("latency_ms").is_some());
    assert!(metrics.get("pool").is_some());
    server.stop();
}

#[test]
fn optimize_and_certify_match_the_cli_path_byte_for_byte() {
    let server = test_server();
    for (path, mode) in [("/optimize", Mode::Optimize), ("/certify", Mode::Certify)] {
        let (status, body) = request(
            &addr(&server),
            "POST",
            path,
            body_for(PROGRAM, "LLS").as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200, "{path}: {}", String::from_utf8_lossy(&body));
        let response = parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));

        // the CLI path: the same driver compute, locally
        let local = compute(
            &Request {
                program: PROGRAM.into(),
                config: RunConfig::default(),
                mode,
            },
            &harness::harness_limits(),
        )
        .unwrap();
        assert_eq!(
            response.get("result").unwrap().render(),
            local.deterministic_json().render(),
            "{path}: service and CLI results must be bit-identical"
        );
    }
    server.stop();
}

#[test]
fn malformed_requests_get_400_not_500() {
    let server = test_server();
    let a = addr(&server);
    // not JSON
    let (status, _) = request(&a, "POST", "/optimize", b"not json").unwrap();
    assert_eq!(status, 400);
    // missing program
    let (status, body) = request(&a, "POST", "/optimize", b"{\"scheme\":\"LLS\"}").unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("program"));
    // unknown field — same strictness as an unknown CLI flag
    let (status, body) = request(
        &a,
        "POST",
        "/optimize",
        b"{\"program\":\"program p\\nend\\n\",\"shceme\":\"LLS\"}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("shceme"));
    // bad scheme value — the shared parser's diagnostic
    let (status, body) = request(
        &a,
        "POST",
        "/optimize",
        b"{\"program\":\"program p\\nend\\n\",\"scheme\":\"BOGUS\"}",
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("unknown scheme"));
    // compile errors are client errors
    let (status, _) = request(
        &a,
        "POST",
        "/certify",
        body_for("program p\n x = 1\nend\n", "LLS").as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 400);
    // wrong method / wrong path
    let (status, _) = request(&a, "GET", "/optimize", b"").unwrap();
    assert_eq!(status, 405);
    let (status, _) = request(&a, "POST", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    server.stop();
}

#[test]
fn a_panicking_request_is_isolated() {
    let server = test_server();
    let a = addr(&server);
    let (status, body) = request(&a, "POST", "/panic", b"").unwrap();
    assert_eq!(status, 500);
    assert!(String::from_utf8_lossy(&body).contains("panicked"));
    // the pool survives: normal requests still work afterwards
    let (status, _) = request(&a, "POST", "/optimize", body_for(PROGRAM, "NI").as_bytes()).unwrap();
    assert_eq!(status, 200);
    let (_, body) = request(&a, "GET", "/metrics", b"").unwrap();
    let metrics = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let isolated = metrics
        .get("pool")
        .and_then(|p| p.get("panics_isolated"))
        .and_then(Json::as_i64);
    assert_eq!(isolated, Some(1));
    server.stop();
}

#[test]
fn concurrent_identical_requests_share_one_computation() {
    let server = test_server();
    let a = addr(&server);
    const CLIENTS: usize = 16;
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let a = a.clone();
                s.spawn(move || {
                    let (status, body) =
                        request(&a, "POST", "/certify", body_for(PROGRAM, "LLS").as_bytes())
                            .unwrap();
                    assert_eq!(status, 200);
                    String::from_utf8(body).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // all clients got the same result bytes
    let first = parse(&bodies[0]).unwrap().get("result").unwrap().render();
    for b in &bodies[1..] {
        assert_eq!(parse(b).unwrap().get("result").unwrap().render(), first);
    }
    // and the shared pipeline computed exactly once
    let stats = server.pipeline().cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits + stats.coalesced, (CLIENTS - 1) as u64);
    server.stop();
}

#[test]
fn queue_backpressure_rejects_with_503() {
    // queue_limit 1 and one worker: while one long request holds the only
    // admission permit, any overlapping request is rejected immediately
    let server = start(ServiceConfig {
        workers: 1,
        queue_limit: 1,
        test_endpoints: false,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let a = addr(&server);

    // a program with enough work to stay in flight while we probe
    let slow = "program slow
 integer a(1:200)
 integer i, j, s
 s = 0
 do j = 1, 5000
  do i = 1, 200
   a(i) = i + j
   s = s + a(i)
  enddo
 enddo
 print s
end
";
    let rejected = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    std::thread::scope(|s| {
        let a0 = a.clone();
        let occupant = s.spawn(move || {
            // with one admission permit, a probe may get in first — retry
            // until this request is the one holding the permit
            loop {
                let (status, _) =
                    request(&a0, "POST", "/certify", body_for(slow, "ALL").as_bytes()).unwrap();
                match status {
                    200 => break,
                    503 => continue,
                    other => panic!("occupant got {other}"),
                }
            }
        });
        // hammer until we observe a rejection (or the occupant finishes)
        for _ in 0..2000 {
            let (status, body) =
                request(&a, "POST", "/optimize", body_for(PROGRAM, "NI").as_bytes()).unwrap();
            if status == 503 {
                assert!(String::from_utf8_lossy(&body).contains("queue full"));
                rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                break;
            }
            if occupant.is_finished() {
                break;
            }
        }
        occupant.join().unwrap();
    });
    // backpressure is timing-dependent; accept either observing a 503 or
    // the slow request finishing first, but the server must stay healthy
    let (status, _) = request(&a, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn distinct_configs_are_distinct_cache_entries() {
    let server = test_server();
    let a = addr(&server);
    for scheme in ["NI", "CS", "LLS"] {
        let (status, _) = request(
            &a,
            "POST",
            "/optimize",
            body_for(PROGRAM, scheme).as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200);
    }
    let stats = server.pipeline().cache_stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.entries, 3);
    server.stop();
}

#[test]
fn cached_flag_and_cache_hit_rate_are_reported() {
    let server = test_server();
    let a = addr(&server);
    let (_, first) = request(&a, "POST", "/certify", body_for(PROGRAM, "SE").as_bytes()).unwrap();
    let (_, second) = request(&a, "POST", "/certify", body_for(PROGRAM, "SE").as_bytes()).unwrap();
    let first = parse(std::str::from_utf8(&first).unwrap()).unwrap();
    let second = parse(std::str::from_utf8(&second).unwrap()).unwrap();
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        first.get("result").unwrap().render(),
        second.get("result").unwrap().render()
    );
    let (_, metrics) = request(&a, "GET", "/metrics", b"").unwrap();
    let metrics = parse(std::str::from_utf8(&metrics).unwrap()).unwrap();
    let hits = metrics
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_i64);
    assert_eq!(hits, Some(1));
    let p50 = metrics
        .get("latency_ms")
        .and_then(|l| l.get("p50"))
        .and_then(Json::as_f64);
    assert!(p50.is_some());
    server.stop();
}

#[test]
fn every_response_carries_a_unique_request_id() {
    let server = test_server();
    let a = addr(&server);
    const CLIENTS: usize = 16;
    let ids: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let a = a.clone();
                s.spawn(move || {
                    let path = if i % 2 == 0 { "/optimize" } else { "/certify" };
                    let (status, body) =
                        request(&a, "POST", path, body_for(PROGRAM, "LLS").as_bytes()).unwrap();
                    assert_eq!(status, 200);
                    let response = parse(std::str::from_utf8(&body).unwrap()).unwrap();
                    response
                        .get("request_id")
                        .and_then(Json::as_str)
                        .expect("200 response carries request_id")
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let distinct: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(
        distinct.len(),
        CLIENTS,
        "request ids must be unique: {ids:?}"
    );

    // error diagnostics carry one too
    let (status, body) = request(&a, "POST", "/optimize", b"not json").unwrap();
    assert_eq!(status, 400);
    let err = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(
        err.get("request_id").and_then(Json::as_str).is_some(),
        "400 response carries request_id"
    );
    server.stop();
}

#[test]
fn prometheus_exposition_validates_and_reflects_traffic() {
    let server = test_server();
    let a = addr(&server);
    for scheme in ["NI", "LLS"] {
        let (status, _) = request(
            &a,
            "POST",
            "/optimize",
            body_for(PROGRAM, scheme).as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200);
    }
    let (status, _) = request(&a, "POST", "/certify", body_for(PROGRAM, "LLS").as_bytes()).unwrap();
    assert_eq!(status, 200);

    let (status, prom) = request(&a, "GET", "/metrics?format=prom", b"").unwrap();
    assert_eq!(status, 200);
    let prom = String::from_utf8(prom).unwrap();
    nascent_obs::metrics::validate_prom(&prom).expect("exposition format validates");
    for needle in [
        "nascentd_requests_total{endpoint=\"optimize\"} 2",
        "nascentd_requests_total{endpoint=\"certify\"} 1",
        "nascentd_responses_total{code=\"200\"} 3",
        "nascentd_stage_duration_seconds_bucket{stage=\"parse\",le=\"+Inf\"}",
        "nascentd_stage_duration_seconds_bucket{stage=\"execute\",le=\"+Inf\"}",
        "nascentd_checks_eliminated_total{scheme=\"LLS\"}",
        "nascentd_pool_workers",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    // the JSON rendering still answers on the same path, same shape
    let (status, json) = request(&a, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    let metrics = parse(std::str::from_utf8(&json).unwrap()).unwrap();
    assert!(metrics.get("requests").is_some());
    assert!(metrics.get("latency_ms").is_some());
    server.stop();
}

#[test]
fn traced_request_embeds_a_nested_chrome_trace() {
    let server = test_server();
    let a = addr(&server);
    let body = Json::Obj(
        [
            ("program".to_string(), Json::Str(PROGRAM.into())),
            ("scheme".to_string(), Json::Str("LLS".into())),
            ("discharge".to_string(), Json::Str("on".into())),
        ]
        .into_iter()
        .collect(),
    )
    .render();
    let (status, resp) = request(&a, "POST", "/certify?trace=1", body.as_bytes()).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let resp = parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    let request_id = resp.get("request_id").and_then(Json::as_str).unwrap();
    let trace = resp.get("trace").expect("trace field present");
    let Some(Json::Arr(events)) = trace.get("traceEvents") else {
        panic!("trace has no traceEvents");
    };
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for name in [
        "pipeline",
        "parse",
        "naive-run",
        "optimize",
        "certify",
        "execute",
        "discharge",
        "optimize-function",
    ] {
        assert!(names.contains(&name), "missing `{name}` in {names:?}");
    }
    // stage spans nest inside the root pipeline span
    let span = |name: &str| {
        let e = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .unwrap();
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        (ts, ts + dur)
    };
    let (root_start, root_end) = span("pipeline");
    for stage in ["parse", "naive-run", "optimize", "certify", "execute"] {
        let (s, e) = span(stage);
        assert!(
            s >= root_start && e <= root_end,
            "`{stage}` escapes the pipeline span"
        );
    }
    // every event is stamped with the response's request id
    for e in events {
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str),
            Some(request_id)
        );
    }
    // an untraced request has no trace field
    let (_, plain) = request(&a, "POST", "/certify", body.as_bytes()).unwrap();
    let plain = parse(std::str::from_utf8(&plain).unwrap()).unwrap();
    assert!(plain.get("trace").is_none());
    server.stop();
}

#[test]
fn latency_window_stays_bounded_over_a_soak() {
    use nascent_driver::service::LATENCY_RESERVOIR;
    let server = test_server();
    let a = addr(&server);
    const SOAK: usize = 10_000;
    let payload = body_for(PROGRAM, "NI");
    // prime the cache, then soak with cache hits across a few threads
    let (status, _) = request(&a, "POST", "/optimize", payload.as_bytes()).unwrap();
    assert_eq!(status, 200);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let a = a.clone();
            let payload = payload.clone();
            s.spawn(move || {
                for _ in 0..((SOAK - 1) / 8) {
                    let (status, _) = request(&a, "POST", "/optimize", payload.as_bytes()).unwrap();
                    assert_eq!(status, 200);
                }
            });
        }
    });
    let sent = 1 + 8 * ((SOAK - 1) / 8);
    let (_, body) = request(&a, "GET", "/metrics", b"").unwrap();
    let metrics = parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let lat = metrics.get("latency_ms").unwrap();
    assert_eq!(
        lat.get("count").and_then(Json::as_i64),
        Some(sent as i64),
        "lifetime sample count is exact"
    );
    let window = lat.get("window").and_then(Json::as_i64).unwrap();
    assert!(
        window <= LATENCY_RESERVOIR as i64,
        "sample window {window} exceeds the reservoir bound {LATENCY_RESERVOIR}"
    );
    server.stop();
}
