//! The one run-configuration surface shared by every driver of the
//! pipeline: `nascentc`, `nascentd`, the table binaries, and the tests.
//!
//! A [`RunConfig`] names everything that changes what the pipeline
//! computes (scheme, check kind, implication mode, discharge tier,
//! engine, classic pre-pass, whether to optimize at all). The flag
//! parser ([`RunConfig::parse_flag`] / [`RunConfig::from_args`]) and the
//! per-field string parsers are defined here exactly once, so a flag
//! accepted by `nascentc` is accepted — with identical spelling and
//! identical diagnostics — as a JSON field by `nascentd`.

use nascent_interp::Engine;
use nascent_rangecheck::{CheckKind, Discharge, ImplicationMode, OptimizeOptions, Scheme};

/// What the pipeline should produce for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Optimize and measure (no certificate).
    #[default]
    Optimize,
    /// Optimize, measure, and re-prove every decision with the static
    /// certifier.
    Certify,
}

impl Mode {
    /// `optimize` / `certify`, as used in URLs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Optimize => "optimize",
            Mode::Certify => "certify",
        }
    }
}

/// One run configuration: every knob that changes what the pipeline
/// computes for a given source program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Placement scheme.
    pub scheme: Scheme,
    /// PRX or INX checks.
    pub kind: CheckKind,
    /// Implication ablation.
    pub implications: ImplicationMode,
    /// Static-discharge tier.
    pub discharge: Discharge,
    /// Execution engine for the dynamic counters.
    pub engine: Engine,
    /// Classical scalar-optimization pre-pass.
    pub classic: bool,
    /// `false` keeps the naive checks (`--no-opt`).
    pub optimize: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scheme: Scheme::Lls,
            kind: CheckKind::default(),
            implications: ImplicationMode::default(),
            discharge: Discharge::default(),
            engine: Engine::default(),
            classic: false,
            optimize: true,
        }
    }
}

/// Parses a scheme name (`NI`, `CS`, …, case-insensitive).
pub fn parse_scheme(name: &str) -> Result<Scheme, String> {
    match name.to_ascii_uppercase().as_str() {
        "NI" => Ok(Scheme::Ni),
        "CS" => Ok(Scheme::Cs),
        "LNI" => Ok(Scheme::Lni),
        "SE" => Ok(Scheme::Se),
        "LI" => Ok(Scheme::Li),
        "LLS" => Ok(Scheme::Lls),
        "ALL" => Ok(Scheme::All),
        "MCM" => Ok(Scheme::Mcm),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

/// Parses a check kind (`prx` or `inx`).
pub fn parse_kind(name: &str) -> Result<CheckKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "prx" => Ok(CheckKind::Prx),
        "inx" => Ok(CheckKind::Inx),
        other => Err(format!("unknown check kind `{other}`")),
    }
}

/// Parses an implication mode (`all`, `cross`, or `none`).
pub fn parse_implications(mode: &str) -> Result<ImplicationMode, String> {
    match mode {
        "all" => Ok(ImplicationMode::All),
        "cross" => Ok(ImplicationMode::CrossFamilyOnly),
        "none" => Ok(ImplicationMode::None),
        other => Err(format!("unknown implication mode `{other}`")),
    }
}

/// Parses a discharge mode (`on` or `off`).
pub fn parse_discharge(mode: &str) -> Result<Discharge, String> {
    match mode {
        "on" => Ok(Discharge::On),
        "off" => Ok(Discharge::Off),
        other => Err(format!("unknown discharge mode `{other}`")),
    }
}

/// Parses an engine name (`tree`, `vm`, or `native`).
pub fn parse_engine(name: &str) -> Result<Engine, String> {
    name.parse::<Engine>()
}

/// Parses a mode name (`optimize` or `certify`).
pub fn parse_mode(name: &str) -> Result<Mode, String> {
    match name {
        "optimize" => Ok(Mode::Optimize),
        "certify" => Ok(Mode::Certify),
        other => Err(format!("unknown mode `{other}`")),
    }
}

impl RunConfig {
    /// The optimizer options this configuration selects.
    pub fn opts(&self) -> OptimizeOptions {
        OptimizeOptions {
            scheme: self.scheme,
            kind: self.kind,
            implications: self.implications,
            discharge: self.discharge,
        }
    }

    /// A [`RunConfig`] that reproduces `opts` (VM engine, no pre-pass).
    pub fn from_opts(opts: &OptimizeOptions) -> RunConfig {
        RunConfig {
            scheme: opts.scheme,
            kind: opts.kind,
            implications: opts.implications,
            discharge: opts.discharge,
            ..RunConfig::default()
        }
    }

    /// Tries to consume the flag at `args[*i]` (plus its value, if any).
    /// Returns `Ok(true)` when the flag belonged to the run
    /// configuration, `Ok(false)` when the caller should handle it, and
    /// `Err` on a malformed value. `*i` is left on the last consumed
    /// element, mirroring a manual `while i < args.len()` loop.
    pub fn parse_flag(&mut self, args: &[String], i: &mut usize) -> Result<bool, String> {
        fn value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        }
        let flag = args[*i].clone();
        match flag.as_str() {
            "--scheme" => self.scheme = parse_scheme(&value(args, i, &flag)?)?,
            "--inx" => self.kind = CheckKind::Inx,
            "--implications" => self.implications = parse_implications(&value(args, i, &flag)?)?,
            "--discharge" => self.discharge = parse_discharge(&value(args, i, &flag)?)?,
            "--engine" => self.engine = parse_engine(&value(args, i, &flag)?)?,
            "--classic" => self.classic = true,
            "--no-opt" => self.optimize = false,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds a configuration from a full argument list, rejecting
    /// anything that is not a run-configuration flag. Binaries with
    /// extra flags (e.g. `nascentc --certify`) drive [`parse_flag`]
    /// directly inside their own loop.
    pub fn from_args(args: &[String]) -> Result<RunConfig, String> {
        let mut config = RunConfig::default();
        let mut i = 0;
        while i < args.len() {
            if !config.parse_flag(args, &mut i)? {
                return Err(format!("unknown option `{}`", args[i]));
            }
            i += 1;
        }
        Ok(config)
    }

    /// A stable, human-readable fingerprint of the configuration — the
    /// cache-key component and the `config` echo in service responses.
    pub fn fingerprint(&self) -> String {
        format!(
            "scheme={} kind={} implications={} discharge={} engine={} classic={} optimize={}",
            self.scheme.name(),
            match self.kind {
                CheckKind::Prx => "prx",
                CheckKind::Inx => "inx",
            },
            match self.implications {
                ImplicationMode::All => "all",
                ImplicationMode::CrossFamilyOnly => "cross",
                ImplicationMode::None => "none",
            },
            match self.discharge {
                Discharge::On => "on",
                Discharge::Off => "off",
            },
            self.engine.name(),
            self.classic,
            self.optimize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_args_parses_every_flag() {
        let c = RunConfig::from_args(&args(&[
            "--scheme",
            "SE",
            "--inx",
            "--implications",
            "cross",
            "--discharge",
            "on",
            "--engine",
            "tree",
            "--classic",
            "--no-opt",
        ]))
        .unwrap();
        assert_eq!(c.scheme, Scheme::Se);
        assert_eq!(c.kind, CheckKind::Inx);
        assert_eq!(c.implications, ImplicationMode::CrossFamilyOnly);
        assert_eq!(c.discharge, Discharge::On);
        assert_eq!(c.engine, Engine::Tree);
        assert!(c.classic);
        assert!(!c.optimize);
    }

    #[test]
    fn from_args_rejects_unknown_and_missing() {
        assert!(RunConfig::from_args(&args(&["--frobnicate"])).is_err());
        assert!(RunConfig::from_args(&args(&["--scheme"])).is_err());
        assert!(RunConfig::from_args(&args(&["--scheme", "BOGUS"])).is_err());
        assert!(RunConfig::from_args(&args(&["--engine", "jit"])).is_err());
    }

    #[test]
    fn engine_native_parses_and_fingerprints() {
        let c = RunConfig::from_args(&args(&["--engine", "native"])).unwrap();
        assert_eq!(c.engine, Engine::Native);
        assert!(c.fingerprint().contains("engine=native"));
        assert_ne!(c.fingerprint(), RunConfig::default().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = RunConfig::default();
        let mut b = a;
        b.scheme = Scheme::Ni;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a;
        c.discharge = Discharge::On;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
