//! `nascent-driver` — the canonical pipeline layer.
//!
//! Every way of running the range-check pipeline (the `nascentc` CLI,
//! the `nascentd` service, the table binaries, the experiment harness,
//! the certification tests) used to carry its own copy of the same
//! glue: parse → INX/discharge → scheme placement → certify → measure.
//! This crate owns that glue exactly once:
//!
//! * [`RunConfig`] — the one run-configuration surface and flag parser
//!   ([`config`]),
//! * [`Pipeline`] — a [`Request`] `{ program, config, mode }` →
//!   [`Outcome`] `{ stats, certificate, counters, timings }` function
//!   with a fleet-wide result cache keyed by content hash of
//!   (source, config, mode) ([`cache`]); concurrent identical requests
//!   coalesce onto one computation,
//! * [`harness`] — the experiment-matrix machinery (`prepare`,
//!   `evaluate_prepared`, `run_matrix`, the table configurations) that
//!   `crates/bench` now re-exports as thin shims,
//! * [`service`] — the `nascentd` HTTP+JSON server: a bounded
//!   work-stealing pool with semaphore backpressure and per-request
//!   panic isolation serving `/optimize`, `/certify`, `/healthz`, and
//!   `/metrics`.
//!
//! The cache composes with the PR-2 invalidation tiers rather than
//! replacing them: a [`Pipeline`] hit short-circuits the whole request
//! on an exact content match, while inside a miss every optimizer pass
//! still runs against per-function `PassContext`s whose
//! `Statements`/`Cfg` tiers and CFG fingerprints keep the per-analysis
//! reuse sound.
//!
//! # Example
//!
//! ```
//! use nascent_driver::{Mode, Pipeline, Request, RunConfig};
//!
//! let pipeline = Pipeline::new();
//! let req = Request {
//!     program: "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\n print a(5)\nend\n".into(),
//!     config: RunConfig::default(),
//!     mode: Mode::Certify,
//! };
//! let out = pipeline.run(&req).unwrap();
//! assert!(out.certificate.as_ref().unwrap().ok());
//! assert!(out.counters.dynamic_checks < out.counters.naive_checks);
//! // identical request: served from the fleet-wide cache
//! let again = pipeline.run(&req).unwrap();
//! assert!(std::sync::Arc::ptr_eq(&out, &again));
//! ```

pub mod cache;
pub mod config;
pub mod harness;
pub mod http;
pub mod json;
pub mod service;

use std::fmt;
use std::sync::Arc;

use nascent_frontend::compile;
use nascent_interp::{run_with_engine, Limits, RunResult};
use nascent_ir::Program;
use nascent_rangecheck::{
    optimize_program_logged_timed, JustLog, OptimizeOptions, OptimizeStats, Timings,
};
use nascent_verify::{certify_program, Certificate};

pub use cache::CacheStats;
pub use config::{Mode, RunConfig};

/// One unit of work for the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// MiniF source text.
    pub program: String,
    /// Run configuration (scheme, kind, implications, discharge, engine,
    /// classic pre-pass, no-opt).
    pub config: RunConfig,
    /// Optimize only, or optimize + certify.
    pub mode: Mode,
}

/// Dynamic counters of the naive and optimized runs of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Counters {
    /// Dynamic checks of the naive (unoptimized, checked) run.
    pub naive_checks: u64,
    /// Dynamic non-check instructions of the naive run.
    pub naive_instructions: u64,
    /// Dynamic checks of the optimized run.
    pub dynamic_checks: u64,
    /// Dynamic guard evaluations of the optimized run.
    pub dynamic_guard_ops: u64,
    /// Dynamic non-check instructions of the optimized run.
    pub dynamic_instructions: u64,
    /// Statement-progress counter of the optimized run.
    pub dynamic_progress: u64,
    /// % of dynamic checks eliminated relative to the naive run.
    pub percent_eliminated: f64,
    /// Values emitted by `print`, rendered.
    pub output: Vec<String>,
    /// The trap that ended the optimized run, rendered, if any.
    pub trap: Option<String>,
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The configuration the outcome was computed under.
    pub config: RunConfig,
    /// The mode the outcome was computed under.
    pub mode: Mode,
    /// Optimizer statistics, summed across functions.
    pub stats: OptimizeStats,
    /// Certificate, present in [`Mode::Certify`].
    pub certificate: Option<Certificate>,
    /// Dynamic counters of the naive and optimized runs.
    pub counters: Counters,
    /// Per-analysis/per-pass wall-time counters (non-deterministic; kept
    /// out of [`Outcome::deterministic_json`]).
    pub timings: Timings,
    /// Per-stage wall time of the computation (non-deterministic; kept
    /// out of [`Outcome::deterministic_json`]).
    pub stages: StageNanos,
}

/// Wall time of each pipeline stage of one [`compute`] call, in
/// nanoseconds. Zero means the stage did not run (e.g. `certify_ns` in
/// [`Mode::Optimize`]). Non-deterministic by nature, so excluded from
/// [`Outcome::deterministic_json`]; the service feeds these into its
/// per-stage Prometheus histograms and `nascentc --trace` records the
/// same intervals as `stage`-category spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// MiniF source → IR.
    pub parse_ns: u64,
    /// Naive (unoptimized) measurement run.
    pub naive_run_ns: u64,
    /// Classic pre-pass + range-check optimizer.
    pub optimize_ns: u64,
    /// Translation validation of the optimization run.
    pub certify_ns: u64,
    /// Optimized measurement run plus differential validation.
    pub execute_ns: u64,
}

impl StageNanos {
    /// `(stage name, nanoseconds)` for every stage, in pipeline order.
    pub fn each(&self) -> [(&'static str, u64); 5] {
        [
            ("parse", self.parse_ns),
            ("naive-run", self.naive_run_ns),
            ("optimize", self.optimize_ns),
            ("certify", self.certify_ns),
            ("execute", self.execute_ns),
        ]
    }

    /// Sum over all stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.each().iter().map(|(_, ns)| ns).sum()
    }
}

impl Outcome {
    /// The outcome as a deterministic JSON value: configuration echo,
    /// optimizer stats, dynamic counters, and the certificate, with the
    /// wall-time [`Timings`] deliberately excluded. Equal outcomes render
    /// to identical bytes, which is what makes service responses
    /// byte-comparable against the CLI path and against cached replays.
    pub fn deterministic_json(&self) -> json::Json {
        use json::{obj, Json};
        let stats = obj(vec![
            ("static_before", Json::Int(self.stats.static_before as i64)),
            ("static_after", Json::Int(self.stats.static_after as i64)),
            ("inserted", Json::Int(self.stats.inserted as i64)),
            ("hoisted", Json::Int(self.stats.hoisted as i64)),
            ("strengthened", Json::Int(self.stats.strengthened as i64)),
            (
                "eliminated_static",
                Json::Int(self.stats.eliminated_static as i64),
            ),
            ("discharged", Json::Int(self.stats.discharged as i64)),
            ("folded_true", Json::Int(self.stats.folded_true as i64)),
            ("folded_false", Json::Int(self.stats.folded_false as i64)),
            ("families", Json::Int(self.stats.families as i64)),
            ("cig_edges", Json::Int(self.stats.cig_edges as i64)),
            (
                "dataflow_iterations",
                Json::Int(self.stats.dataflow_iterations as i64),
            ),
        ]);
        let counters = obj(vec![
            ("naive_checks", Json::Int(self.counters.naive_checks as i64)),
            (
                "naive_instructions",
                Json::Int(self.counters.naive_instructions as i64),
            ),
            (
                "dynamic_checks",
                Json::Int(self.counters.dynamic_checks as i64),
            ),
            (
                "dynamic_guard_ops",
                Json::Int(self.counters.dynamic_guard_ops as i64),
            ),
            (
                "dynamic_instructions",
                Json::Int(self.counters.dynamic_instructions as i64),
            ),
            (
                "dynamic_progress",
                Json::Int(self.counters.dynamic_progress as i64),
            ),
            (
                "percent_eliminated",
                Json::Num(self.counters.percent_eliminated),
            ),
            (
                "output",
                Json::Arr(
                    self.counters
                        .output
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "trap",
                match &self.counters.trap {
                    Some(t) => Json::Str(t.clone()),
                    None => Json::Null,
                },
            ),
        ]);
        let certificate = match &self.certificate {
            None => Json::Null,
            Some(c) => obj(vec![
                ("ok", Json::Bool(c.ok())),
                ("obligations", Json::Int(c.obligations as i64)),
                ("discharged_by_log", Json::Int(c.discharged_by_log as i64)),
                ("vra_discharged", Json::Int(c.vra_discharged as i64)),
                ("discharge_events", Json::Int(c.discharge_events as i64)),
                ("discharge_rejected", Json::Int(c.discharge_rejected as i64)),
                (
                    "diagnostics",
                    Json::Arr(
                        c.diagnostics
                            .iter()
                            .map(|d| Json::Str(d.to_string()))
                            .collect(),
                    ),
                ),
            ]),
        };
        obj(vec![
            ("config", Json::Str(self.config.fingerprint())),
            ("mode", Json::Str(self.mode.name().into())),
            ("stats", stats),
            ("counters", counters),
            ("certificate", certificate),
        ])
    }
}

/// Why a request could not produce an [`Outcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The source did not compile. Client error.
    Compile(String),
    /// The naive or optimized program failed to run (step limit, call
    /// depth, division by zero, …).
    Run(String),
    /// The optimized run disagreed with the naive run — an optimizer bug
    /// surfaced by the pipeline's built-in differential validation.
    Divergence(String),
    /// The computation panicked (isolated; the panic payload follows).
    Panic(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(m) => write!(f, "compile error: {m}"),
            PipelineError::Run(m) => write!(f, "run error: {m}"),
            PipelineError::Divergence(m) => write!(f, "divergence: {m}"),
            PipelineError::Panic(m) => write!(f, "panicked: {m}"),
        }
    }
}

impl PipelineError {
    /// True for errors the client caused (bad program), false for
    /// pipeline-side failures.
    pub fn is_client_error(&self) -> bool {
        matches!(self, PipelineError::Compile(_))
    }
}

/// Applies the classic pre-pass (when configured) and the range-check
/// optimizer to a compiled program — the in-place half of the pipeline,
/// shared by `nascentc dump`/`run`/`trace`/`compare`.
pub fn apply(config: &RunConfig, prog: &mut Program) -> OptimizeStats {
    if config.classic {
        for f in &mut prog.functions {
            nascent_classic::optimize_classic(f);
        }
    }
    if config.optimize {
        let (stats, _, _) = optimize_program_logged_timed(prog, &config.opts());
        stats
    } else {
        OptimizeStats::default()
    }
}

/// Applies the classic pre-pass, snapshots the reference program, runs
/// the logged optimizer, and certifies the run. The reference is taken
/// *after* the classic pre-pass: the certifier validates the range-check
/// optimization, not the scalar optimizations. This is the exact
/// `nascentc stats/report/verify` glue, owned here.
pub fn optimize_and_certify(
    config: &RunConfig,
    prog: &mut Program,
) -> (OptimizeStats, Certificate, Timings) {
    let (stats, cert, timings, _, _) = optimize_and_certify_staged(config, prog);
    (stats, cert, timings)
}

/// [`optimize_and_certify`] with per-stage wall time: additionally
/// returns `(optimize nanoseconds, certify nanoseconds)`, measured as
/// obs `stage` spans so a trace recorder sees the same intervals.
pub fn optimize_and_certify_staged(
    config: &RunConfig,
    prog: &mut Program,
) -> (OptimizeStats, Certificate, Timings, u64, u64) {
    let sp = nascent_obs::trace::timed_span("optimize", "stage");
    if config.classic {
        for f in &mut prog.functions {
            nascent_classic::optimize_classic(f);
        }
    }
    let reference = prog.clone();
    let opts = config.opts();
    let (stats, logs, timings) = optimize_with_log(prog, config, &opts);
    let optimize_ns = sp.finish().as_nanos() as u64;
    let sp = nascent_obs::trace::timed_span("certify", "stage");
    let cert = certify_program(&reference, prog, &logs, &opts);
    let certify_ns = sp.finish().as_nanos() as u64;
    (stats, cert, timings, optimize_ns, certify_ns)
}

/// Compiles a source, optimizes it under `opts`, and certifies the run —
/// the glue the certification test suites share.
pub fn certify_source(src: &str, opts: &OptimizeOptions) -> Result<Certificate, String> {
    let naive = compile(src).map_err(|e| e.to_string())?;
    let mut opt = naive.clone();
    let (_, logs, _) = optimize_with_log(&mut opt, &RunConfig::from_opts(opts), opts);
    Ok(certify_program(&naive, &opt, &logs, opts))
}

fn optimize_with_log(
    prog: &mut Program,
    config: &RunConfig,
    opts: &OptimizeOptions,
) -> (OptimizeStats, Vec<JustLog>, Timings) {
    if config.optimize {
        optimize_program_logged_timed(prog, opts)
    } else {
        let logs = (0..prog.functions.len()).map(|_| JustLog::new()).collect();
        (OptimizeStats::default(), logs, Timings::default())
    }
}

fn render_trap(t: &nascent_interp::Trap) -> String {
    format!(
        "TRAP in {} at instruction {}: {}",
        t.function, t.at_instruction, t.check
    )
}

/// Validates the optimized run against the naive run: equal output and
/// no trap when the naive run is trap-free; a no-later trap (by the
/// statement-progress metric) with a consistent output prefix when the
/// naive run traps.
fn validate_runs(naive: &RunResult, opt: &RunResult) -> Result<(), PipelineError> {
    match (&naive.trap, &opt.trap) {
        (None, None) => {
            if opt.output != naive.output {
                return Err(PipelineError::Divergence("output changed".into()));
            }
            if opt.dynamic_progress != naive.dynamic_progress {
                return Err(PipelineError::Divergence(format!(
                    "non-check work changed: {} -> {}",
                    naive.dynamic_progress, opt.dynamic_progress
                )));
            }
            if opt.dynamic_checks > naive.dynamic_checks {
                return Err(PipelineError::Divergence(format!(
                    "dynamic checks increased: {} -> {}",
                    naive.dynamic_checks, opt.dynamic_checks
                )));
            }
            Ok(())
        }
        (Some(nt), Some(ot)) => {
            if ot.at_progress > nt.at_progress {
                return Err(PipelineError::Divergence(format!(
                    "optimized trap at progress {} later than naive trap at {}",
                    ot.at_progress, nt.at_progress
                )));
            }
            if !naive.output.starts_with(&opt.output) {
                return Err(PipelineError::Divergence(
                    "output before the trap diverged".into(),
                ));
            }
            Ok(())
        }
        (Some(_), None) => Err(PipelineError::Divergence(
            "naive run traps but the optimized run does not".into(),
        )),
        (None, Some(ot)) => Err(PipelineError::Divergence(format!(
            "optimizer introduced a trap: {}",
            render_trap(ot)
        ))),
    }
}

/// The canonical pipeline: compile, optimize (logged), optionally
/// certify, and measure both the naive and the optimized program on the
/// configured engine, validating the two runs against each other.
///
/// This is the uncached single-request path; [`Pipeline::run`] adds the
/// fleet-wide cache and request coalescing on top.
pub fn compute(req: &Request, limits: &Limits) -> Result<Outcome, PipelineError> {
    let mut root = nascent_obs::trace::span("pipeline", "stage");
    root.attr("config", req.config.fingerprint());
    root.attr("mode", req.mode.name());
    let mut stages = StageNanos::default();

    let sp = nascent_obs::trace::timed_span("parse", "stage");
    let naive_prog = compile(&req.program).map_err(|e| PipelineError::Compile(e.to_string()))?;
    stages.parse_ns = sp.finish().as_nanos() as u64;

    let sp = nascent_obs::trace::timed_span("naive-run", "stage");
    let naive = run_with_engine(&naive_prog, limits, req.config.engine)
        .map_err(|e| PipelineError::Run(format!("naive run: {e}")))?;
    stages.naive_run_ns = sp.finish().as_nanos() as u64;

    let mut prog = naive_prog;
    let (stats, certificate, timings) = match req.mode {
        Mode::Certify => {
            let (stats, cert, timings, optimize_ns, certify_ns) =
                optimize_and_certify_staged(&req.config, &mut prog);
            stages.optimize_ns = optimize_ns;
            stages.certify_ns = certify_ns;
            (stats, Some(cert), timings)
        }
        Mode::Optimize => {
            let sp = nascent_obs::trace::timed_span("optimize", "stage");
            if req.config.classic {
                for f in &mut prog.functions {
                    nascent_classic::optimize_classic(f);
                }
            }
            let opts = req.config.opts();
            let (stats, _, timings) = optimize_with_log(&mut prog, &req.config, &opts);
            stages.optimize_ns = sp.finish().as_nanos() as u64;
            (stats, None, timings)
        }
    };

    let sp = nascent_obs::trace::timed_span("execute", "stage");
    let opt = run_with_engine(&prog, limits, req.config.engine)
        .map_err(|e| PipelineError::Run(format!("optimized run: {e}")))?;
    // The classic pre-pass legitimately changes non-check work, so the
    // differential validation only applies to the pure range-check
    // pipeline.
    if !req.config.classic {
        validate_runs(&naive, &opt)?;
    }
    stages.execute_ns = sp.finish().as_nanos() as u64;

    let percent = 100.0 * (1.0 - opt.dynamic_checks as f64 / naive.dynamic_checks.max(1) as f64);
    Ok(Outcome {
        config: req.config,
        mode: req.mode,
        stats,
        certificate,
        counters: Counters {
            naive_checks: naive.dynamic_checks,
            naive_instructions: naive.dynamic_instructions,
            dynamic_checks: opt.dynamic_checks,
            dynamic_guard_ops: opt.dynamic_guard_ops,
            dynamic_instructions: opt.dynamic_instructions,
            dynamic_progress: opt.dynamic_progress,
            percent_eliminated: percent,
            output: opt.output.iter().map(|v| v.to_string()).collect(),
            trap: opt.trap.as_ref().map(render_trap),
        },
        timings,
        stages,
    })
}

/// The shared pipeline front door: [`compute`] behind a fleet-wide
/// result cache with request coalescing.
pub struct Pipeline {
    limits: Limits,
    cache: cache::ResultCache,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// A pipeline with the harness interpreter limits.
    pub fn new() -> Pipeline {
        Pipeline::with_limits(harness::harness_limits())
    }

    /// A pipeline with explicit interpreter limits.
    pub fn with_limits(limits: Limits) -> Pipeline {
        Pipeline {
            limits,
            cache: cache::ResultCache::new(),
        }
    }

    /// Runs a request through the cache: an exact (source, config, mode)
    /// match returns the stored outcome without recomputing; concurrent
    /// identical requests coalesce onto the first computation.
    pub fn run(&self, req: &Request) -> Result<Arc<Outcome>, PipelineError> {
        self.cache
            .get_or_compute(req, || compute(req, &self.limits))
    }

    /// Cache traffic counters (hits, misses, coalesced waits, entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "program demo
 integer a(1:100)
 integer i, n
 n = 100
 do i = 1, n
  a(i) = 2 * i
 enddo
 print a(n)
end
";

    #[test]
    fn compute_measures_and_certifies() {
        let req = Request {
            program: DEMO.into(),
            config: RunConfig::default(),
            mode: Mode::Certify,
        };
        let out = compute(&req, &harness::harness_limits()).unwrap();
        assert_eq!(out.counters.output, vec!["200".to_string()]);
        assert!(out.counters.dynamic_checks < out.counters.naive_checks);
        assert!(out.counters.percent_eliminated > 50.0);
        let cert = out.certificate.as_ref().expect("certify mode");
        assert!(cert.ok());
        assert!(cert.obligations > 0);
    }

    #[test]
    fn optimize_mode_skips_the_certificate() {
        let req = Request {
            program: DEMO.into(),
            config: RunConfig::default(),
            mode: Mode::Optimize,
        };
        let out = compute(&req, &harness::harness_limits()).unwrap();
        assert!(out.certificate.is_none());
        assert!(out.stats.static_before > 0);
    }

    #[test]
    fn compile_errors_are_client_errors() {
        let req = Request {
            program: "program p\n x = 1\nend\n".into(),
            config: RunConfig::default(),
            mode: Mode::Optimize,
        };
        let err = compute(&req, &harness::harness_limits()).unwrap_err();
        assert!(err.is_client_error(), "{err}");
    }

    #[test]
    fn trapping_programs_flow_through() {
        let req = Request {
            program: "program p\n integer a(1:5)\n a(9) = 1\nend\n".into(),
            config: RunConfig::default(),
            mode: Mode::Certify,
        };
        let out = compute(&req, &harness::harness_limits()).unwrap();
        assert!(out.counters.trap.as_deref().unwrap().contains("TRAP"));
        assert!(out.certificate.as_ref().unwrap().ok());
    }

    #[test]
    fn no_opt_keeps_the_naive_counters() {
        let config = RunConfig {
            optimize: false,
            ..RunConfig::default()
        };
        let req = Request {
            program: DEMO.into(),
            config,
            mode: Mode::Optimize,
        };
        let out = compute(&req, &harness::harness_limits()).unwrap();
        assert_eq!(out.counters.dynamic_checks, out.counters.naive_checks);
        assert_eq!(out.counters.percent_eliminated, 0.0);
    }
}
