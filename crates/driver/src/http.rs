//! Minimal HTTP/1.1 framing for the `nascentd` service and its clients.
//!
//! One request per connection (`Connection: close`), which keeps the
//! framing trivial and makes per-request backpressure exact: a queued
//! connection is a queued request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a benchmark source is a few KB; 8 MiB
/// leaves room for generated programs without letting a client pin
/// unbounded memory).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw query string (the part after `?`, empty when absent).
    pub query: String,
    /// Body bytes (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The value of query parameter `key` (`a=1&b=2` syntax; no percent
    /// decoding — the service's parameters are plain tokens). A bare key
    /// with no `=` yields `Some("")`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Reads one request from the stream. `Err` carries a human-readable
/// reason suitable for a 400 response.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("missing request target")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(HttpRequest {
        method,
        path,
        query,
        body,
    })
}

/// Writes one response and flushes. Errors are ignored beyond reporting:
/// a client that hung up mid-response has already received its answer or
/// never will.
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Client side: sends one request to `addr` and returns
/// `(status, body)`. Used by `bench_service`, the smoke tests, and any
/// Rust-side client of a running `nascentd`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", status_line.trim()))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok((status, body))
}
