//! `nascentd` — the pipeline as a long-running optimize+certify service.
//!
//! Architecture (all std, no external runtime — the build must work
//! without registry access):
//!
//! * an **acceptor** thread owns the listening socket; each accepted
//!   connection is one request (`Connection: close`),
//! * admission goes through a **semaphore-limited queue**: when
//!   `queue_limit` requests are already admitted and unfinished, new
//!   connections are rejected immediately with `503` — backpressure is
//!   explicit, not an unbounded backlog (`GET /healthz` and
//!   `GET /metrics` are exempt and answer even at saturation),
//! * admitted connections are dealt round-robin to a **bounded
//!   work-stealing pool**: every worker owns a deque, pops its own work
//!   from the front, and steals from siblings' backs when idle, so one
//!   slow request (a `certify` of a large program) never stalls the
//!   queue behind it,
//! * every request body is handled under **panic isolation**
//!   ([`std::panic::catch_unwind`] here, plus the cache-level isolation
//!   in [`crate::cache`]): a panicking request produces a `500` for its
//!   client and a counter tick, never a dead worker,
//! * all `/optimize` and `/certify` traffic flows through the shared
//!   [`Pipeline`] and its fleet-wide result cache, so identical
//!   requests — across all clients — compute once.
//!
//! Endpoints: `POST /optimize`, `POST /certify`, `GET /healthz`,
//! `GET /metrics`.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nascent_interp::Limits;

use crate::cache::panic_message;
use crate::config::{
    parse_discharge, parse_engine, parse_implications, parse_kind, parse_scheme, Mode,
};
use crate::http::{read_request, write_response, HttpRequest};
use crate::json::{obj, parse, Json};
use crate::{harness, Outcome, Pipeline, Request, RunConfig};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admitted-but-unfinished request limit (the backpressure bound).
    pub queue_limit: usize,
    /// Interpreter limits applied to every request.
    pub limits: Limits,
    /// Enables `POST /panic`, which panics inside the pool — only for
    /// exercising panic isolation in tests.
    pub test_endpoints: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            // floored at 128 so even a single-core box admits the
            // 64-concurrent-client load the service is specified for
            queue_limit: (workers * 16).max(128),
            limits: harness::harness_limits(),
            test_endpoints: false,
        }
    }
}

/// Counting semaphore (admission control).
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Non-blocking acquire; `false` means the queue is full.
    fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock().expect("semaphore lock");
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore lock") += 1;
        self.cv.notify_one();
    }
}

/// Service-wide counters, all monotone; snapshot rendered by `/metrics`.
#[derive(Default)]
pub struct Metrics {
    optimize_requests: AtomicU64,
    certify_requests: AtomicU64,
    healthz_requests: AtomicU64,
    metrics_requests: AtomicU64,
    responses_200: AtomicU64,
    responses_400: AtomicU64,
    responses_404: AtomicU64,
    responses_405: AtomicU64,
    responses_500: AtomicU64,
    responses_503: AtomicU64,
    panics_isolated: AtomicU64,
    queued: AtomicUsize,
    stolen: AtomicU64,
    /// Completed pipeline-request latencies, in microseconds.
    latencies_us: Mutex<Vec<u64>>,
}

impl Metrics {
    fn count_response(&self, status: u16) {
        let c = match status {
            200 => &self.responses_200,
            400 => &self.responses_400,
            404 => &self.responses_404,
            405 => &self.responses_405,
            503 => &self.responses_503,
            _ => &self.responses_500,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn record_latency(&self, d: Duration) {
        let mut l = self.latencies_us.lock().expect("latency lock");
        // keep the reservoir bounded; half a million requests is far more
        // than any one process lifetime needs for stable percentiles
        if l.len() < 500_000 {
            l.push(d.as_micros() as u64);
        }
    }

    fn percentile(sorted: &[u64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
    }

    fn render(&self, pipeline: &Pipeline, workers: usize, queue_limit: usize) -> Json {
        let cache = pipeline.cache_stats();
        let mut lat = self.latencies_us.lock().expect("latency lock").clone();
        lat.sort_unstable();
        let ms = |v: f64| Json::Num((v * 1e3).round() / 1e3);
        obj(vec![
            (
                "requests",
                obj(vec![
                    (
                        "optimize",
                        Json::Int(self.optimize_requests.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "certify",
                        Json::Int(self.certify_requests.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "healthz",
                        Json::Int(self.healthz_requests.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "metrics",
                        Json::Int(self.metrics_requests.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "responses",
                obj(vec![
                    (
                        "200",
                        Json::Int(self.responses_200.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "400",
                        Json::Int(self.responses_400.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "404",
                        Json::Int(self.responses_404.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "405",
                        Json::Int(self.responses_405.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "500",
                        Json::Int(self.responses_500.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "503",
                        Json::Int(self.responses_503.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("coalesced", Json::Int(cache.coalesced as i64)),
                    ("entries", Json::Int(cache.entries as i64)),
                    (
                        "hit_rate",
                        Json::Num((cache.hit_rate() * 1e4).round() / 1e4),
                    ),
                ]),
            ),
            (
                "latency_ms",
                obj(vec![
                    ("count", Json::Int(lat.len() as i64)),
                    ("p50", ms(Self::percentile(&lat, 0.50) / 1e3)),
                    ("p90", ms(Self::percentile(&lat, 0.90) / 1e3)),
                    ("p99", ms(Self::percentile(&lat, 0.99) / 1e3)),
                    ("max", ms(lat.last().copied().unwrap_or(0) as f64 / 1e6)),
                ]),
            ),
            (
                "pool",
                obj(vec![
                    ("workers", Json::Int(workers as i64)),
                    ("queue_limit", Json::Int(queue_limit as i64)),
                    (
                        "queued",
                        Json::Int(self.queued.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "stolen",
                        Json::Int(self.stolen.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "panics_isolated",
                        Json::Int(self.panics_isolated.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
        ])
    }
}

struct Shared {
    config: ServiceConfig,
    pipeline: Pipeline,
    metrics: Metrics,
    deques: Vec<Mutex<VecDeque<TcpStream>>>,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
    admission: Semaphore,
    shutdown: AtomicBool,
}

/// A running service; dropping the handle does **not** stop it — call
/// [`ServerHandle::stop`] (tests) or let the process own it (`nascentd`).
pub struct ServerHandle {
    /// The actual bound address (resolves `:0` bindings).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared pipeline (for asserting cache behavior in tests).
    pub fn pipeline(&self) -> &Pipeline {
        &self.shared.pipeline
    }

    /// Requests shutdown and joins every thread. In-flight requests
    /// finish; queued-but-unstarted connections are dropped.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock the acceptor with one last connection
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.wakeup.notify_all();
        for w in self.workers.drain(..) {
            self.shared.wakeup.notify_all();
            let _ = w.join();
        }
    }
}

/// Binds the listener and spawns the acceptor + worker pool.
pub fn start(config: ServiceConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        pipeline: Pipeline::with_limits(config.limits),
        metrics: Metrics::default(),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        wakeup: Condvar::new(),
        wakeup_lock: Mutex::new(()),
        admission: Semaphore::new(config.queue_limit.max(1)),
        shutdown: AtomicBool::new(false),
        config,
    });

    let mut worker_handles = Vec::new();
    for id in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("nascentd-worker-{id}"))
                .spawn(move || worker_loop(id, &shared))
                .map_err(|e| e.to_string())?,
        );
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("nascentd-acceptor".into())
            .spawn(move || acceptor_loop(listener, &shared))
            .map_err(|e| e.to_string())?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

fn acceptor_loop(listener: TcpListener, shared: &Shared) {
    let mut next_worker = 0usize;
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        if !shared.admission.try_acquire() {
            // backpressure: the admitted-request budget is spent. Drain the
            // request first (bounded by a short timeout) — closing with
            // unread bytes in the socket would turn the polite 503 into a
            // connection reset on the client side.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let request = read_request(&mut stream);
            // GET endpoints stay responsive even when the work queue is
            // full: a /healthz that 503s under load would make an
            // orchestrator kill a busy-but-healthy instance, and /metrics
            // is exactly what an operator wants to see at saturation.
            // They do cheap in-memory reads, so serving them here on the
            // acceptor thread is safe.
            if let Ok(r) = &request {
                if r.method == "GET" {
                    let (status, body) = route(r, shared);
                    shared.metrics.count_response(status);
                    write_response(&mut stream, status, "application/json", body.as_bytes());
                    continue;
                }
            }
            shared.metrics.count_response(503);
            let body = obj(vec![
                ("status", Json::Str("error".into())),
                ("error", Json::Str("queue full".into())),
            ])
            .render();
            write_response(&mut stream, 503, "application/json", body.as_bytes());
            continue;
        }
        shared.metrics.queued.fetch_add(1, Ordering::Relaxed);
        let slot = next_worker % shared.deques.len();
        next_worker = next_worker.wrapping_add(1);
        shared.deques[slot]
            .lock()
            .expect("deque lock")
            .push_back(stream);
        shared.wakeup.notify_all();
    }
}

fn take_job(id: usize, shared: &Shared) -> Option<(TcpStream, bool)> {
    if let Some(job) = shared.deques[id].lock().expect("deque lock").pop_front() {
        return Some((job, false));
    }
    for other in 0..shared.deques.len() {
        if other == id {
            continue;
        }
        if let Some(job) = shared.deques[other].lock().expect("deque lock").pop_back() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(id: usize, shared: &Shared) {
    loop {
        match take_job(id, shared) {
            Some((stream, stolen)) => {
                shared.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                if stolen {
                    shared.metrics.stolen.fetch_add(1, Ordering::Relaxed);
                }
                serve_connection(stream, shared);
                shared.admission.release();
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = shared.wakeup_lock.lock().expect("wakeup lock");
                let _ = shared
                    .wakeup
                    .wait_timeout(guard, Duration::from_millis(20))
                    .expect("wakeup wait");
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.count_response(400);
            let body = error_json(&format!("malformed request: {e}"));
            write_response(&mut stream, 400, "application/json", body.as_bytes());
            return;
        }
    };
    // panic isolation: a request must never take its worker down
    let outcome = catch_unwind(AssertUnwindSafe(|| route(&request, shared)));
    let (status, body) = match outcome {
        Ok(r) => r,
        Err(payload) => {
            shared
                .metrics
                .panics_isolated
                .fetch_add(1, Ordering::Relaxed);
            (
                500,
                error_json(&format!("panicked: {}", panic_message(payload.as_ref()))),
            )
        }
    };
    shared.metrics.count_response(status);
    write_response(&mut stream, status, "application/json", body.as_bytes());
}

fn error_json(message: &str) -> String {
    obj(vec![
        ("status", Json::Str("error".into())),
        ("error", Json::Str(message.into())),
    ])
    .render()
}

fn route(request: &HttpRequest, shared: &Shared) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared
                .metrics
                .healthz_requests
                .fetch_add(1, Ordering::Relaxed);
            (200, obj(vec![("status", Json::Str("ok".into()))]).render())
        }
        ("GET", "/metrics") => {
            shared
                .metrics
                .metrics_requests
                .fetch_add(1, Ordering::Relaxed);
            let body = shared
                .metrics
                .render(
                    &shared.pipeline,
                    shared.deques.len(),
                    shared.config.queue_limit,
                )
                .render();
            (200, body)
        }
        ("POST", "/optimize") => {
            shared
                .metrics
                .optimize_requests
                .fetch_add(1, Ordering::Relaxed);
            pipeline_endpoint(request, Mode::Optimize, shared)
        }
        ("POST", "/certify") => {
            shared
                .metrics
                .certify_requests
                .fetch_add(1, Ordering::Relaxed);
            pipeline_endpoint(request, Mode::Certify, shared)
        }
        ("POST", "/panic") if shared.config.test_endpoints => {
            panic!("test endpoint requested a panic")
        }
        (_, "/healthz" | "/metrics") => (405, error_json("method not allowed")),
        (_, "/optimize" | "/certify") => (405, error_json("method not allowed")),
        _ => (404, error_json("no such endpoint")),
    }
}

/// Parses a pipeline request body. Field spellings are exactly the CLI
/// flag values — one config parser for both binaries ([`crate::config`]).
pub fn parse_pipeline_request(body: &[u8], mode: Mode) -> Result<Request, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = parse(text)?;
    let Json::Obj(fields) = &v else {
        return Err("body must be a JSON object".into());
    };
    let mut config = RunConfig::default();
    let mut program = None;
    for (key, value) in fields {
        let as_str = || {
            value
                .as_str()
                .ok_or_else(|| format!("field `{key}` must be a string"))
        };
        let as_bool = || {
            value
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a boolean"))
        };
        match key.as_str() {
            "program" => program = Some(as_str()?.to_string()),
            "scheme" => config.scheme = parse_scheme(as_str()?)?,
            "kind" => config.kind = parse_kind(as_str()?)?,
            "implications" => config.implications = parse_implications(as_str()?)?,
            "discharge" => config.discharge = parse_discharge(as_str()?)?,
            "engine" => config.engine = parse_engine(as_str()?)?,
            "classic" => config.classic = as_bool()?,
            "optimize" => config.optimize = as_bool()?,
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    Ok(Request {
        program: program.ok_or("missing field `program`")?,
        config,
        mode,
    })
}

/// Renders a successful pipeline response. The `result` object is
/// [`Outcome::deterministic_json`], so a cached response is byte-equal
/// to the original computation and to the CLI path.
pub fn render_pipeline_response(outcome: &Outcome, cached: bool) -> String {
    obj(vec![
        ("status", Json::Str("ok".into())),
        ("cached", Json::Bool(cached)),
        ("result", outcome.deterministic_json()),
        (
            "timing_ns",
            obj(vec![
                (
                    "analysis",
                    Json::Int(outcome.timings.analysis_nanos() as i64),
                ),
                ("pass", Json::Int(outcome.timings.pass_nanos() as i64)),
            ]),
        ),
    ])
    .render()
}

fn pipeline_endpoint(request: &HttpRequest, mode: Mode, shared: &Shared) -> (u16, String) {
    let req = match parse_pipeline_request(&request.body, mode) {
        Ok(r) => r,
        Err(e) => return (400, error_json(&e)),
    };
    let before = shared.pipeline.cache_stats();
    let t0 = Instant::now();
    let result = shared.pipeline.run(&req);
    shared.metrics.record_latency(t0.elapsed());
    let after = shared.pipeline.cache_stats();
    let cached = after.misses == before.misses;
    match result {
        Ok(outcome) => (200, render_pipeline_response(&outcome, cached)),
        Err(e) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e.to_string()))
        }
    }
}
