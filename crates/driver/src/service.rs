//! `nascentd` — the pipeline as a long-running optimize+certify service.
//!
//! Architecture (all std, no external runtime — the build must work
//! without registry access):
//!
//! * an **acceptor** thread owns the listening socket; each accepted
//!   connection is one request (`Connection: close`),
//! * admission goes through a **semaphore-limited queue**: when
//!   `queue_limit` requests are already admitted and unfinished, new
//!   connections are rejected immediately with `503` — backpressure is
//!   explicit, not an unbounded backlog (`GET /healthz` and
//!   `GET /metrics` are exempt and answer even at saturation),
//! * admitted connections are dealt round-robin to a **bounded
//!   work-stealing pool**: every worker owns a deque, pops its own work
//!   from the front, and steals from siblings' backs when idle, so one
//!   slow request (a `certify` of a large program) never stalls the
//!   queue behind it,
//! * every request body is handled under **panic isolation**
//!   ([`std::panic::catch_unwind`] here, plus the cache-level isolation
//!   in [`crate::cache`]): a panicking request produces a `500` for its
//!   client and a counter tick, never a dead worker,
//! * all `/optimize` and `/certify` traffic flows through the shared
//!   [`Pipeline`] and its fleet-wide result cache, so identical
//!   requests — across all clients — compute once.
//!
//! Telemetry (`nascent-obs`): every request is minted a **request id**
//! (echoed as `request_id` in success and error bodies, and carried on
//! the worker thread so any span recorded while handling the request is
//! tagged with it); all counters live in an obs
//! [`metrics::Registry`](nascent_obs::metrics::Registry), rendered as
//! the stable JSON `/metrics` document *and* as Prometheus text format
//! under `GET /metrics?format=prom` (per-endpoint latency histograms,
//! per-stage pipeline timings, cache traffic, per-scheme elimination
//! totals); latency percentiles come from a fixed-capacity
//! [`Reservoir`](nascent_obs::metrics::Reservoir), so memory stays
//! bounded across any number of requests; and `?trace=1` on a pipeline
//! endpoint captures that request's spans with a scoped collector and
//! embeds the Chrome-trace JSON in the response.
//!
//! Endpoints: `POST /optimize`, `POST /certify`, `GET /healthz`,
//! `GET /metrics`.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nascent_interp::{Engine, Limits};
use nascent_obs::metrics::{percentile, Counter, Gauge, Histogram, Registry, Reservoir};
use nascent_obs::trace::{chrome_trace_json, set_request_id, ScopedCollector};

use crate::cache::panic_message;
use crate::config::{
    parse_discharge, parse_engine, parse_implications, parse_kind, parse_scheme, Mode,
};
use crate::http::{read_request, write_response, HttpRequest};
use crate::json::{obj, parse, Json};
use crate::{harness, Outcome, Pipeline, Request, RunConfig};

/// Samples held by the latency reservoir: enough for stable p99s, fixed
/// however many requests the process serves.
pub const LATENCY_RESERVOIR: usize = 4096;

/// Content type for Prometheus text exposition format.
const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

const JSON_CONTENT_TYPE: &str = "application/json";

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admitted-but-unfinished request limit (the backpressure bound).
    pub queue_limit: usize,
    /// Interpreter limits applied to every request.
    pub limits: Limits,
    /// Enables `POST /panic`, which panics inside the pool — only for
    /// exercising panic isolation in tests.
    pub test_endpoints: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            // floored at 128 so even a single-core box admits the
            // 64-concurrent-client load the service is specified for
            queue_limit: (workers * 16).max(128),
            limits: harness::harness_limits(),
            test_endpoints: false,
        }
    }
}

/// Counting semaphore (admission control).
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Non-blocking acquire; `false` means the queue is full.
    fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock().expect("semaphore lock");
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore lock") += 1;
        self.cv.notify_one();
    }
}

/// Service-wide telemetry: an obs [`Registry`] plus cheap handles into
/// it, a bounded latency [`Reservoir`], and the pool's queued count.
/// `/metrics` renders the registry twice — the stable JSON document and
/// Prometheus text format — from the same underlying counters.
pub struct Metrics {
    registry: Registry,
    optimize_requests: Counter,
    certify_requests: Counter,
    healthz_requests: Counter,
    metrics_requests: Counter,
    /// Response counters for 200/400/404/405/500/503, in that order.
    responses: [Counter; 6],
    panics_isolated: Counter,
    stolen: Counter,
    /// Live queued count (inc/dec; mirrored into a gauge at render time).
    queued: AtomicUsize,
    queued_gauge: Gauge,
    /// Cache gauges, synced from [`Pipeline::cache_stats`] at render time.
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_coalesced: Gauge,
    cache_entries: Gauge,
    cache_hit_rate: Gauge,
    /// Native compile-cache gauges, synced from
    /// [`nascent_cback::native::global_stats`] at render time.
    native_hits: Gauge,
    native_compiles: Gauge,
    native_coalesced: Gauge,
    native_entries: Gauge,
    native_hit_rate: Gauge,
    /// Completed pipeline-request latencies (µs), bounded window.
    latencies: Reservoir,
    optimize_latency: Histogram,
    certify_latency: Histogram,
    /// Pipeline-request latency by execution engine (tree/vm/native).
    engine_latency: [Histogram; 3],
    /// Per-stage wall-time histograms (parse, naive-run, optimize,
    /// certify, execute), fed from [`Outcome::stages`] on fresh
    /// computations (cache hits did not run the stages).
    stage_latency: [Histogram; 5],
}

const RESPONSE_CODES: [&str; 6] = ["200", "400", "404", "405", "500", "503"];
const STAGES: [&str; 5] = ["parse", "naive-run", "optimize", "certify", "execute"];
const ENGINES: [Engine; 3] = [Engine::Tree, Engine::Vm, Engine::Native];

impl Metrics {
    fn new(workers: usize, queue_limit: usize) -> Metrics {
        let registry = Registry::new();
        let req = |ep: &str| {
            registry.counter(
                "nascentd_requests_total",
                "Requests received, by endpoint",
                &[("endpoint", ep)],
            )
        };
        let resp = |code: &str| {
            registry.counter(
                "nascentd_responses_total",
                "Responses sent, by status code",
                &[("code", code)],
            )
        };
        let cache_gauge = |stat: &str| {
            registry.gauge(
                "nascentd_cache",
                "Fleet-wide result cache traffic",
                &[("stat", stat)],
            )
        };
        let native_gauge = |stat: &str| {
            registry.gauge(
                "nascentd_native_cache",
                "Native-tier compile cache traffic (process-wide)",
                &[("stat", stat)],
            )
        };
        let lat = |ep: &str| {
            registry.histogram(
                "nascentd_request_duration_seconds",
                "Pipeline request latency, by endpoint",
                &[("endpoint", ep)],
                nascent_obs::metrics::LATENCY_BUCKETS,
            )
        };
        let stage = |s: &str| {
            registry.histogram(
                "nascentd_stage_duration_seconds",
                "Pipeline stage wall time (fresh computations only)",
                &[("stage", s)],
                nascent_obs::metrics::LATENCY_BUCKETS,
            )
        };
        registry
            .gauge("nascentd_pool_workers", "Worker threads in the pool", &[])
            .set(workers as f64);
        registry
            .gauge(
                "nascentd_pool_queue_limit",
                "Admitted-but-unfinished request limit",
                &[],
            )
            .set(queue_limit as f64);
        Metrics {
            optimize_requests: req("optimize"),
            certify_requests: req("certify"),
            healthz_requests: req("healthz"),
            metrics_requests: req("metrics"),
            responses: RESPONSE_CODES.map(resp),
            panics_isolated: registry.counter(
                "nascentd_panics_isolated_total",
                "Request panics caught without losing a worker",
                &[],
            ),
            stolen: registry.counter(
                "nascentd_pool_stolen_total",
                "Jobs stolen from a sibling worker's deque",
                &[],
            ),
            queued: AtomicUsize::new(0),
            queued_gauge: registry.gauge(
                "nascentd_pool_queued",
                "Connections admitted but not yet finished",
                &[],
            ),
            cache_hits: cache_gauge("hits"),
            cache_misses: cache_gauge("misses"),
            cache_coalesced: cache_gauge("coalesced"),
            cache_entries: cache_gauge("entries"),
            cache_hit_rate: cache_gauge("hit_rate"),
            native_hits: native_gauge("hits"),
            native_compiles: native_gauge("compiles"),
            native_coalesced: native_gauge("coalesced"),
            native_entries: native_gauge("entries"),
            native_hit_rate: native_gauge("hit_rate"),
            latencies: Reservoir::new(LATENCY_RESERVOIR),
            optimize_latency: lat("optimize"),
            certify_latency: lat("certify"),
            engine_latency: ENGINES.map(|e| {
                registry.histogram(
                    "nascentd_engine_duration_seconds",
                    "Pipeline request latency, by execution engine",
                    &[("engine", e.name())],
                    nascent_obs::metrics::LATENCY_BUCKETS,
                )
            }),
            stage_latency: STAGES.map(stage),
            registry,
        }
    }

    fn count_response(&self, status: u16) {
        let idx = RESPONSE_CODES
            .iter()
            .position(|c| c.parse::<u16>().unwrap() == status)
            .unwrap_or(4); // anything unexpected counts as a 500
        self.responses[idx].inc();
    }

    fn record_latency(&self, mode: Mode, engine: Engine, d: Duration) {
        self.latencies.observe(d.as_micros() as u64);
        match mode {
            Mode::Optimize => self.optimize_latency.observe_duration(d),
            Mode::Certify => self.certify_latency.observe_duration(d),
        }
        if let Some(i) = ENGINES.iter().position(|e| *e == engine) {
            self.engine_latency[i].observe_duration(d);
        }
    }

    /// Records per-stage wall time and per-scheme elimination totals of
    /// one freshly computed outcome (cache hits did not run the stages,
    /// so recording them would double-count work that never happened).
    fn record_outcome(&self, outcome: &Outcome) {
        for (hist, (_, ns)) in self.stage_latency.iter().zip(outcome.stages.each()) {
            hist.observe(ns as f64 / 1e9);
        }
        let scheme = outcome.config.scheme.name();
        let static_gone = outcome.stats.eliminated_static + outcome.stats.discharged;
        self.registry
            .counter(
                "nascentd_checks_eliminated_total",
                "Static checks removed by the optimizer, by scheme",
                &[("scheme", scheme)],
            )
            .add(static_gone as u64);
        let dynamic_gone = outcome
            .counters
            .naive_checks
            .saturating_sub(outcome.counters.dynamic_checks);
        self.registry
            .counter(
                "nascentd_dynamic_checks_eliminated_total",
                "Dynamic check executions avoided relative to the naive run, by scheme",
                &[("scheme", scheme)],
            )
            .add(dynamic_gone);
    }

    /// Syncs the render-time gauges (cache traffic, queued count) from
    /// their sources of truth.
    fn sync_gauges(&self, pipeline: &Pipeline) {
        let cache = pipeline.cache_stats();
        self.cache_hits.set(cache.hits as f64);
        self.cache_misses.set(cache.misses as f64);
        self.cache_coalesced.set(cache.coalesced as f64);
        self.cache_entries.set(cache.entries as f64);
        self.cache_hit_rate
            .set((cache.hit_rate() * 1e4).round() / 1e4);
        let native = nascent_cback::native::global_stats();
        self.native_hits.set(native.hits as f64);
        self.native_compiles.set(native.compiles as f64);
        self.native_coalesced.set(native.coalesced as f64);
        self.native_entries.set(native.entries as f64);
        self.native_hit_rate
            .set((native.hit_rate() * 1e4).round() / 1e4);
        self.queued_gauge
            .set(self.queued.load(Ordering::Relaxed) as f64);
    }

    /// Prometheus text exposition of every registry family.
    fn render_prom(&self, pipeline: &Pipeline) -> String {
        self.sync_gauges(pipeline);
        self.registry.render_prom()
    }

    fn render(&self, pipeline: &Pipeline, workers: usize, queue_limit: usize) -> Json {
        let cache = pipeline.cache_stats();
        let native = nascent_cback::native::global_stats();
        let (total, window, lat) = self.latencies.snapshot();
        let ms = |v: f64| Json::Num((v * 1e3).round() / 1e3);
        let pct = |p: f64| ms(percentile(&lat, p) / 1e3);
        obj(vec![
            (
                "requests",
                obj(vec![
                    ("optimize", Json::Int(self.optimize_requests.get() as i64)),
                    ("certify", Json::Int(self.certify_requests.get() as i64)),
                    ("healthz", Json::Int(self.healthz_requests.get() as i64)),
                    ("metrics", Json::Int(self.metrics_requests.get() as i64)),
                ]),
            ),
            (
                "responses",
                obj(RESPONSE_CODES
                    .iter()
                    .zip(&self.responses)
                    .map(|(code, c)| (*code, Json::Int(c.get() as i64)))
                    .collect()),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("coalesced", Json::Int(cache.coalesced as i64)),
                    ("entries", Json::Int(cache.entries as i64)),
                    (
                        "hit_rate",
                        Json::Num((cache.hit_rate() * 1e4).round() / 1e4),
                    ),
                ]),
            ),
            (
                "native_cache",
                obj(vec![
                    ("hits", Json::Int(native.hits as i64)),
                    ("compiles", Json::Int(native.compiles as i64)),
                    ("coalesced", Json::Int(native.coalesced as i64)),
                    ("entries", Json::Int(native.entries as i64)),
                    (
                        "hit_rate",
                        Json::Num((native.hit_rate() * 1e4).round() / 1e4),
                    ),
                ]),
            ),
            (
                "latency_ms",
                obj(vec![
                    ("count", Json::Int(total as i64)),
                    ("window", Json::Int(window as i64)),
                    ("p50", pct(0.50)),
                    ("p90", pct(0.90)),
                    ("p99", pct(0.99)),
                    ("max", ms(lat.last().copied().unwrap_or(0) as f64 / 1e3)),
                ]),
            ),
            (
                "pool",
                obj(vec![
                    ("workers", Json::Int(workers as i64)),
                    ("queue_limit", Json::Int(queue_limit as i64)),
                    (
                        "queued",
                        Json::Int(self.queued.load(Ordering::Relaxed) as i64),
                    ),
                    ("stolen", Json::Int(self.stolen.get() as i64)),
                    (
                        "panics_isolated",
                        Json::Int(self.panics_isolated.get() as i64),
                    ),
                ]),
            ),
        ])
    }
}

struct Shared {
    config: ServiceConfig,
    pipeline: Pipeline,
    metrics: Metrics,
    deques: Vec<Mutex<VecDeque<TcpStream>>>,
    wakeup: Condvar,
    wakeup_lock: Mutex<()>,
    admission: Semaphore,
    shutdown: AtomicBool,
}

/// A running service; dropping the handle does **not** stop it — call
/// [`ServerHandle::stop`] (tests) or let the process own it (`nascentd`).
pub struct ServerHandle {
    /// The actual bound address (resolves `:0` bindings).
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared pipeline (for asserting cache behavior in tests).
    pub fn pipeline(&self) -> &Pipeline {
        &self.shared.pipeline
    }

    /// Requests shutdown and joins every thread. In-flight requests
    /// finish; queued-but-unstarted connections are dropped.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock the acceptor with one last connection
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.wakeup.notify_all();
        for w in self.workers.drain(..) {
            self.shared.wakeup.notify_all();
            let _ = w.join();
        }
    }
}

/// Binds the listener and spawns the acceptor + worker pool.
pub fn start(config: ServiceConfig) -> Result<ServerHandle, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        pipeline: Pipeline::with_limits(config.limits),
        metrics: Metrics::new(workers, config.queue_limit),
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        wakeup: Condvar::new(),
        wakeup_lock: Mutex::new(()),
        admission: Semaphore::new(config.queue_limit.max(1)),
        shutdown: AtomicBool::new(false),
        config,
    });

    let mut worker_handles = Vec::new();
    for id in 0..workers {
        let shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("nascentd-worker-{id}"))
                .spawn(move || worker_loop(id, &shared))
                .map_err(|e| e.to_string())?,
        );
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("nascentd-acceptor".into())
            .spawn(move || acceptor_loop(listener, &shared))
            .map_err(|e| e.to_string())?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

fn acceptor_loop(listener: TcpListener, shared: &Shared) {
    let mut next_worker = 0usize;
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        if !shared.admission.try_acquire() {
            // backpressure: the admitted-request budget is spent. Drain the
            // request first (bounded by a short timeout) — closing with
            // unread bytes in the socket would turn the polite 503 into a
            // connection reset on the client side.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let request = read_request(&mut stream);
            // GET endpoints stay responsive even when the work queue is
            // full: a /healthz that 503s under load would make an
            // orchestrator kill a busy-but-healthy instance, and /metrics
            // is exactly what an operator wants to see at saturation.
            // They do cheap in-memory reads, so serving them here on the
            // acceptor thread is safe.
            if let Ok(r) = &request {
                if r.method == "GET" {
                    let (status, body, content_type) = route(r, shared);
                    shared.metrics.count_response(status);
                    write_response(&mut stream, status, content_type, body.as_bytes());
                    continue;
                }
            }
            shared.metrics.count_response(503);
            let body = obj(vec![
                ("status", Json::Str("error".into())),
                ("error", Json::Str("queue full".into())),
            ])
            .render();
            write_response(&mut stream, 503, JSON_CONTENT_TYPE, body.as_bytes());
            continue;
        }
        shared.metrics.queued.fetch_add(1, Ordering::Relaxed);
        let slot = next_worker % shared.deques.len();
        next_worker = next_worker.wrapping_add(1);
        shared.deques[slot]
            .lock()
            .expect("deque lock")
            .push_back(stream);
        shared.wakeup.notify_all();
    }
}

fn take_job(id: usize, shared: &Shared) -> Option<(TcpStream, bool)> {
    if let Some(job) = shared.deques[id].lock().expect("deque lock").pop_front() {
        return Some((job, false));
    }
    for other in 0..shared.deques.len() {
        if other == id {
            continue;
        }
        if let Some(job) = shared.deques[other].lock().expect("deque lock").pop_back() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(id: usize, shared: &Shared) {
    loop {
        match take_job(id, shared) {
            Some((stream, stolen)) => {
                shared.metrics.queued.fetch_sub(1, Ordering::Relaxed);
                if stolen {
                    shared.metrics.stolen.inc();
                }
                serve_connection(stream, shared);
                shared.admission.release();
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = shared.wakeup_lock.lock().expect("wakeup lock");
                let _ = shared
                    .wakeup
                    .wait_timeout(guard, Duration::from_millis(20))
                    .expect("wakeup wait");
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    // every admitted request gets an id: echoed in the response body,
    // carried on this thread so every span recorded while handling the
    // request (pipeline stages, passes, analyses) is tagged with it
    let request_id = nascent_obs::mint_request_id();
    let prev = set_request_id(Some(request_id.clone()));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.count_response(400);
            let body = error_json(&format!("malformed request: {e}"));
            write_response(&mut stream, 400, JSON_CONTENT_TYPE, body.as_bytes());
            set_request_id(prev);
            return;
        }
    };
    // panic isolation: a request must never take its worker down
    let outcome = catch_unwind(AssertUnwindSafe(|| route(&request, shared)));
    let (status, body, content_type) = match outcome {
        Ok(r) => r,
        Err(payload) => {
            shared.metrics.panics_isolated.inc();
            (
                500,
                error_json(&format!("panicked: {}", panic_message(payload.as_ref()))),
                JSON_CONTENT_TYPE,
            )
        }
    };
    shared.metrics.count_response(status);
    write_response(&mut stream, status, content_type, body.as_bytes());
    set_request_id(prev);
}

/// An error body. Includes the thread's current request id when one is
/// set, so failures can be joined to their traces too.
fn error_json(message: &str) -> String {
    let mut fields = vec![
        ("status", Json::Str("error".into())),
        ("error", Json::Str(message.into())),
    ];
    if let Some(id) = nascent_obs::trace::current_request_id() {
        fields.push(("request_id", Json::Str(id)));
    }
    obj(fields).render()
}

fn route(request: &HttpRequest, shared: &Shared) -> (u16, String, &'static str) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.healthz_requests.inc();
            (
                200,
                obj(vec![("status", Json::Str("ok".into()))]).render(),
                JSON_CONTENT_TYPE,
            )
        }
        ("GET", "/metrics") => {
            shared.metrics.metrics_requests.inc();
            if request.query_param("format") == Some("prom") {
                let body = shared.metrics.render_prom(&shared.pipeline);
                return (200, body, PROM_CONTENT_TYPE);
            }
            let body = shared
                .metrics
                .render(
                    &shared.pipeline,
                    shared.deques.len(),
                    shared.config.queue_limit,
                )
                .render();
            (200, body, JSON_CONTENT_TYPE)
        }
        ("POST", "/optimize") => {
            shared.metrics.optimize_requests.inc();
            pipeline_endpoint(request, Mode::Optimize, shared)
        }
        ("POST", "/certify") => {
            shared.metrics.certify_requests.inc();
            pipeline_endpoint(request, Mode::Certify, shared)
        }
        ("POST", "/panic") if shared.config.test_endpoints => {
            panic!("test endpoint requested a panic")
        }
        (_, "/healthz" | "/metrics") => (405, error_json("method not allowed"), JSON_CONTENT_TYPE),
        (_, "/optimize" | "/certify") => (405, error_json("method not allowed"), JSON_CONTENT_TYPE),
        _ => (404, error_json("no such endpoint"), JSON_CONTENT_TYPE),
    }
}

/// Parses a pipeline request body. Field spellings are exactly the CLI
/// flag values — one config parser for both binaries ([`crate::config`]).
pub fn parse_pipeline_request(body: &[u8], mode: Mode) -> Result<Request, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = parse(text)?;
    let Json::Obj(fields) = &v else {
        return Err("body must be a JSON object".into());
    };
    let mut config = RunConfig::default();
    let mut program = None;
    for (key, value) in fields {
        let as_str = || {
            value
                .as_str()
                .ok_or_else(|| format!("field `{key}` must be a string"))
        };
        let as_bool = || {
            value
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a boolean"))
        };
        match key.as_str() {
            "program" => program = Some(as_str()?.to_string()),
            "scheme" => config.scheme = parse_scheme(as_str()?)?,
            "kind" => config.kind = parse_kind(as_str()?)?,
            "implications" => config.implications = parse_implications(as_str()?)?,
            "discharge" => config.discharge = parse_discharge(as_str()?)?,
            "engine" => config.engine = parse_engine(as_str()?)?,
            "classic" => config.classic = as_bool()?,
            "optimize" => config.optimize = as_bool()?,
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    Ok(Request {
        program: program.ok_or("missing field `program`")?,
        config,
        mode,
    })
}

/// Renders a successful pipeline response. The `result` object is
/// [`Outcome::deterministic_json`], so a cached response is byte-equal
/// to the original computation and to the CLI path; `request_id` and the
/// optional embedded `trace` ride alongside it, outside the
/// deterministic surface.
pub fn render_pipeline_response(
    outcome: &Outcome,
    cached: bool,
    request_id: Option<&str>,
    trace: Option<Json>,
) -> String {
    let mut fields = vec![
        ("status", Json::Str("ok".into())),
        ("cached", Json::Bool(cached)),
        ("result", outcome.deterministic_json()),
        (
            "timing_ns",
            obj(vec![
                (
                    "analysis",
                    Json::Int(outcome.timings.analysis_nanos() as i64),
                ),
                ("pass", Json::Int(outcome.timings.pass_nanos() as i64)),
            ]),
        ),
    ];
    if let Some(id) = request_id {
        fields.push(("request_id", Json::Str(id.into())));
    }
    if let Some(trace) = trace {
        fields.push(("trace", trace));
    }
    obj(fields).render()
}

fn pipeline_endpoint(
    request: &HttpRequest,
    mode: Mode,
    shared: &Shared,
) -> (u16, String, &'static str) {
    let req = match parse_pipeline_request(&request.body, mode) {
        Ok(r) => r,
        Err(e) => return (400, error_json(&e), JSON_CONTENT_TYPE),
    };
    // ?trace=1: collect this thread's spans for the duration of the run
    // and embed the Chrome-trace JSON in the response. A cache hit or a
    // computation coalesced onto another thread yields few or no spans —
    // the trace shows the work *this* request performed.
    let want_trace = request.query_param("trace") == Some("1");
    let collector = want_trace.then(ScopedCollector::begin);
    let before = shared.pipeline.cache_stats();
    let t0 = Instant::now();
    let result = shared.pipeline.run(&req);
    shared
        .metrics
        .record_latency(mode, req.config.engine, t0.elapsed());
    let trace = collector.map(|c| {
        let spans = c.finish();
        // rendered and re-parsed so it embeds as a JSON value, keeping
        // the response a single well-formed document
        parse(&chrome_trace_json(&spans)).expect("chrome trace renders valid JSON")
    });
    let after = shared.pipeline.cache_stats();
    let cached = after.misses == before.misses;
    match result {
        Ok(outcome) => {
            if !cached {
                shared.metrics.record_outcome(&outcome);
            }
            let id = nascent_obs::trace::current_request_id();
            (
                200,
                render_pipeline_response(&outcome, cached, id.as_deref(), trace),
                JSON_CONTENT_TYPE,
            )
        }
        Err(e) => {
            let status = if e.is_client_error() { 400 } else { 500 };
            (status, error_json(&e.to_string()), JSON_CONTENT_TYPE)
        }
    }
}
