//! Fleet-wide result cache for the [`Pipeline`](crate::Pipeline).
//!
//! Requests are keyed by a content hash of (source text, run
//! configuration, mode) — the same "exact content ⇒ exact reuse"
//! discipline as the PR-2 `PassContext` tiers, lifted from one function
//! inside one compile to whole requests across the fleet: a source or
//! configuration edit changes the key, which *is* the invalidation (the
//! old entry simply stops being addressed), while a hit skips parse,
//! optimize, certify, and both measurement runs outright.
//!
//! Concurrent identical requests coalesce: the first becomes the owner
//! and computes, the rest block on the entry's condvar and share the
//! owner's `Arc<Outcome>` — two simultaneous identical requests compute
//! exactly once (see `tests/cache.rs`).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::{Outcome, PipelineError, Request};

/// 64-bit FNV-1a, the same content-hash primitive style as the PR-2 CFG
/// fingerprint: cheap, deterministic, dependency-free.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cache key: two independent content hashes plus the lengths they
/// summarize. The configuration fingerprint is kept verbatim (it is
/// tiny); the program text is represented by its hashes only, so the
/// cache does not retain request bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    h1: u64,
    h2: u64,
    source_len: usize,
    config: String,
    mode: &'static str,
}

impl Key {
    fn of(req: &Request) -> Key {
        let bytes = req.program.as_bytes();
        Key {
            h1: fnv1a(bytes, 0xcbf2_9ce4_8422_2325),
            h2: fnv1a(bytes, 0x6c62_272e_07bb_0142),
            source_len: bytes.len(),
            config: req.config.fingerprint(),
            mode: req.mode.name(),
        }
    }
}

type Computed = Result<Arc<Outcome>, PipelineError>;

/// One cache entry: empty while the owner computes, then filled once.
struct Slot {
    done: Mutex<Option<Computed>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, value: Computed) {
        *self.done.lock().expect("slot lock") = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> Computed {
        let mut done = self.done.lock().expect("slot lock");
        while done.is_none() {
            done = self.cv.wait(done).expect("slot wait");
        }
        done.clone().expect("filled")
    }
}

/// Cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a completed entry.
    pub hits: u64,
    /// Requests that became the owner and computed.
    pub misses: u64,
    /// Requests that arrived while an identical one was in flight and
    /// waited for its result instead of recomputing.
    pub coalesced: u64,
    /// Entries currently stored (in-flight included).
    pub entries: usize,
}

impl CacheStats {
    /// hits / (hits + misses + coalesced), in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The fleet-wide (source, config, mode) → [`Outcome`] cache.
pub struct ResultCache {
    slots: Mutex<HashMap<Key, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Returns the cached outcome for `req`, or runs `compute` (exactly
    /// once per key, however many threads ask concurrently) and caches
    /// its result. A panicking computation is isolated into
    /// [`PipelineError::Panic`] and unblocks all waiters.
    pub fn get_or_compute<F>(&self, req: &Request, compute: F) -> Computed
    where
        F: FnOnce() -> Result<Outcome, PipelineError>,
    {
        let key = Key::of(req);
        let (slot, owner) = {
            let mut slots = self.slots.lock().expect("cache lock");
            match slots.entry(key) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(e) => {
                    let slot = Arc::new(Slot::new());
                    e.insert(Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let result = match catch_unwind(AssertUnwindSafe(compute)) {
                Ok(r) => r.map(Arc::new),
                Err(payload) => Err(PipelineError::Panic(panic_message(payload.as_ref()))),
            };
            slot.fill(result.clone());
            result
        } else {
            // Completed entry => hit; in-flight entry => coalesced wait.
            if slot.done.lock().expect("slot lock").is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            slot.wait()
        }
    }

    /// Current traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").len(),
        }
    }
}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, RunConfig};

    fn req(src: &str) -> Request {
        Request {
            program: src.into(),
            config: RunConfig::default(),
            mode: Mode::Optimize,
        }
    }

    #[test]
    fn keys_separate_source_config_and_mode() {
        let a = Key::of(&req("program p\nend\n"));
        let b = Key::of(&req("program q\nend\n"));
        assert_ne!(a, b);
        let mut r = req("program p\nend\n");
        r.config.classic = true;
        assert_ne!(a, Key::of(&r));
        let mut r = req("program p\nend\n");
        r.mode = Mode::Certify;
        assert_ne!(a, Key::of(&r));
    }

    #[test]
    fn a_panicking_computation_is_isolated_and_cached() {
        let cache = ResultCache::new();
        let r = req("program p\nend\n");
        let err = cache
            .get_or_compute(&r, || panic!("boom"))
            .expect_err("panic becomes error");
        assert_eq!(err, PipelineError::Panic("boom".into()));
        // waiters and later requests observe the same isolated error
        let again = cache
            .get_or_compute(&r, || unreachable!("must not recompute"))
            .expect_err("cached error");
        assert_eq!(again, err);
    }
}
