//! Minimal JSON support for the service wire format.
//!
//! The build must succeed without registry access (see
//! `vendor/README.md`), so instead of `serde` the service uses this
//! small recursive-descent parser and escaping writer. It covers the
//! full JSON grammar; numbers are kept as `i64` when exact and `f64`
//! otherwise, which is all the wire format needs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64` exactly.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload (integers widen), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes the value, compact (no whitespace), keys in `Obj`
    /// order. Deterministic: equal values produce identical bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // surrogate pairs
                            if (0xd800..0xdc00).contains(&code) {
                                let rest = self
                                    .bytes
                                    .get(self.pos + 5..self.pos + 11)
                                    .ok_or("truncated surrogate pair")?;
                                if &rest[..2] != b"\\u" {
                                    return Err("lone high surrogate".into());
                                }
                                let lo_hex =
                                    std::str::from_utf8(&rest[2..]).map_err(|_| "bad surrogate")?;
                                let lo =
                                    u32::from_str_radix(lo_hex, 16).map_err(|_| "bad surrogate")?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                                self.pos += 10;
                            } else {
                                out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                                self.pos += 4;
                            }
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":"x\ny"}"#,
            r#"-42"#,
            r#"3.5"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{case}");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\"b\\cAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\cAé");
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str().unwrap(), "😀");
        let back = parse(&Json::Str("tab\there\n".into()).render()).unwrap();
        assert_eq!(back.as_str().unwrap(), "tab\there\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn object_render_is_deterministic() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.render(), b.render());
    }
}
