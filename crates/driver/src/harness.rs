//! The experiment harness: prepared baselines, per-configuration
//! evaluation, certification, and the parallel configuration × program
//! matrix. Moved here from `crates/bench` (which now re-exports these as
//! thin shims) so the table binaries, the service, and the tests all
//! drive the *same* pipeline layer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nascent_analysis::context::PassContext;
use nascent_frontend::compile;
use nascent_interp::{
    lower, run_compiled, run_with_engine, CompiledProgram, Engine, Limits, RunError, RunResult,
    Value,
};
use nascent_ir::Program;
use nascent_rangecheck::{
    optimize_program_timed, CheckKind, ImplicationMode, OptimizeOptions, OptimizeStats, Scheme,
    Timings,
};
use nascent_suite::Benchmark;
use nascent_verify::Certificate;

use crate::RunConfig;

/// Interpreter limits used by the harness.
pub fn harness_limits() -> Limits {
    Limits {
        max_steps: 2_000_000_000,
        max_call_depth: 128,
    }
}

/// Sums the static instruction cost of a program (cost-model units).
pub fn static_instruction_count(p: &Program) -> u64 {
    let mut total = 0;
    for f in &p.functions {
        for b in &f.blocks {
            for s in &b.stmts {
                total += s.cost();
            }
            total += b.term.cost();
        }
    }
    total
}

/// Counts natural loops across all functions.
pub fn loop_count(p: &Program) -> usize {
    p.functions
        .iter()
        .map(|f| {
            let mut ctx = PassContext::new();
            ctx.loop_forest(f).loops.len()
        })
        .sum()
}

/// One benchmark with everything that is shared across every cell of the
/// configuration matrix: the compiled (naive, checked) program, its run,
/// and its loop count. Computing these once per benchmark — instead of
/// once per scheme × kind × mode cell — is what makes the matrix cheap.
#[derive(Debug)]
pub struct PreparedBenchmark {
    /// The source benchmark.
    pub bench: Benchmark,
    /// Naive compile (checks inserted, nothing optimized).
    pub checked: Program,
    /// The naive program lowered to register bytecode, once; re-runs of
    /// the naive baseline (differential tests, engine benchmarks) go
    /// straight to the VM without paying the lowering again.
    pub lowered: CompiledProgram,
    /// Wall time of that compile (charged to every cell's `total_time`,
    /// mirroring what a per-cell recompile used to cost).
    pub compile_time: Duration,
    /// The naive run: the output/trap/dynamic-check baseline every
    /// optimized configuration is validated against.
    pub naive: RunResult,
    /// Natural loops across all units.
    pub loops: usize,
}

/// Compiles and runs a benchmark once, capturing the shared baseline.
/// The baseline run itself executes on the register-bytecode VM (the two
/// engines are counter-for-counter identical; see the differential test).
///
/// # Panics
///
/// Panics if the benchmark fails to compile or run — the suite is
/// expected to be trap-free.
pub fn prepare(b: &Benchmark) -> PreparedBenchmark {
    let t0 = Instant::now();
    let checked = compile(&b.source).expect("benchmark compiles");
    let compile_time = t0.elapsed();
    let lowered = lower(&checked);
    let naive = run_compiled(&lowered, &harness_limits()).expect("benchmark runs");
    assert!(naive.trap.is_none(), "{} trapped", b.name);
    let loops = loop_count(&checked);
    PreparedBenchmark {
        bench: b.clone(),
        checked,
        lowered,
        compile_time,
        naive,
        loops,
    }
}

/// Result of optimizing and running one benchmark under one configuration.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// % of dynamic checks eliminated relative to the naive run.
    pub percent_eliminated: f64,
    /// Residual dynamic checks.
    pub dynamic_checks: u64,
    /// Dynamic guard operations of hoisted conditional checks.
    pub dynamic_guard_ops: u64,
    /// Time spent in the range-check optimizer.
    pub optimize_time: Duration,
    /// Total compile + optimize time.
    pub total_time: Duration,
    /// Per-analysis and per-pass wall times from the optimizer's
    /// [`PassContext`]s.
    pub timings: Timings,
    /// Optimizer statistics (static counts: discharged, hoisted, …),
    /// summed across all functions.
    pub stats: OptimizeStats,
}

fn evaluate_compiled(
    name: &str,
    checked: &Program,
    compile_time: Duration,
    naive: &RunResult,
    opts: &OptimizeOptions,
    engine: Engine,
) -> SchemeResult {
    let limits = harness_limits();
    let mut prog = checked.clone();
    let t1 = Instant::now();
    let (stats, timings) = optimize_program_timed(&mut prog, opts);
    let optimize_time = t1.elapsed();
    let total_time = compile_time + optimize_time;
    let r = run_with_engine(&prog, &limits, engine).unwrap_or_else(|e| {
        panic!("{name} under {opts:?}: {e}");
    });
    assert!(
        r.trap.is_none(),
        "{name} under {opts:?}: optimizer introduced trap {:?}",
        r.trap
    );
    assert_eq!(
        r.output, naive.output,
        "{name} under {opts:?}: output changed"
    );
    let pct = 100.0 * (1.0 - r.dynamic_checks as f64 / naive.dynamic_checks.max(1) as f64);
    SchemeResult {
        percent_eliminated: pct,
        dynamic_checks: r.dynamic_checks,
        dynamic_guard_ops: r.dynamic_guard_ops,
        optimize_time,
        total_time,
        timings,
        stats,
    }
}

/// Optimizes a benchmark under `opts`, runs it, validates it against the
/// naive run, and reports elimination percentage and timings.
///
/// # Panics
///
/// Panics if the optimized program misbehaves (different output, trap
/// introduced, later trap, undetected violation) — optimizer bugs must
/// not produce table rows.
pub fn evaluate(b: &Benchmark, naive: &RunResult, opts: &OptimizeOptions) -> SchemeResult {
    let t0 = Instant::now();
    let prog = compile(&b.source).expect("benchmark compiles");
    let compile_time = t0.elapsed();
    evaluate_compiled(b.name, &prog, compile_time, naive, opts, Engine::default())
}

/// [`evaluate`] against a prepared baseline: reuses the compiled program
/// and the naive run instead of recompiling and re-running per cell.
/// Executes on the register-bytecode VM ([`Engine::Vm`]).
pub fn evaluate_prepared(pb: &PreparedBenchmark, opts: &OptimizeOptions) -> SchemeResult {
    evaluate_prepared_with(pb, opts, Engine::default())
}

/// [`evaluate_prepared`] on an explicit [`Engine`] (for tree-vs-VM A/B).
pub fn evaluate_prepared_with(
    pb: &PreparedBenchmark,
    opts: &OptimizeOptions,
    engine: Engine,
) -> SchemeResult {
    evaluate_compiled(
        pb.bench.name,
        &pb.checked,
        pb.compile_time,
        &pb.naive,
        opts,
        engine,
    )
}

/// Optimizes a benchmark with the justification log enabled and
/// re-validates every decision with the static certifier
/// (`nascent-verify`). The returned certificate carries the obligation
/// counts and the number of checks the value-range analysis discharges
/// statically.
///
/// # Panics
///
/// Panics if the certifier rejects the run — tables must not be produced
/// from uncertified optimizations.
pub fn certify_benchmark(b: &Benchmark, opts: &OptimizeOptions) -> Certificate {
    let naive = compile(&b.source).expect("benchmark compiles");
    certify_compiled(b.name, &naive, opts)
}

/// [`certify_benchmark`] against a prepared baseline (no recompile).
pub fn certify_prepared(pb: &PreparedBenchmark, opts: &OptimizeOptions) -> Certificate {
    certify_compiled(pb.bench.name, &pb.checked, opts)
}

fn certify_compiled(name: &str, naive: &Program, opts: &OptimizeOptions) -> Certificate {
    let mut prog = naive.clone();
    let (_, cert, _) = crate::optimize_and_certify(&RunConfig::from_opts(opts), &mut prog);
    assert!(
        cert.ok(),
        "{name} under {opts:?} rejected by the certifier:\n{}",
        cert.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    cert
}

/// Runs the naive (unoptimized, checked) version of a benchmark on the VM.
pub fn naive_run(b: &Benchmark) -> RunResult {
    let prog = compile(&b.source).expect("benchmark compiles");
    run_compiled(&lower(&prog), &harness_limits()).expect("benchmark runs")
}

/// One row of Table 2 / Table 3: a named configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Row label (`NI`, `SE'`, …).
    pub label: &'static str,
    /// Options for the optimizer.
    pub opts: OptimizeOptions,
}

/// The seven Table 2 rows for a check kind.
pub fn table2_configs(kind: CheckKind) -> Vec<Config> {
    Scheme::EACH
        .iter()
        .map(|s| Config {
            label: s.name(),
            opts: OptimizeOptions::scheme(*s).with_kind(kind),
        })
        .collect()
}

/// The six Table 3 rows for a check kind: NI, NI', SE, SE', LLS, LLS'.
pub fn table3_configs(kind: CheckKind) -> Vec<Config> {
    vec![
        Config {
            label: "NI",
            opts: OptimizeOptions::scheme(Scheme::Ni).with_kind(kind),
        },
        Config {
            label: "NI'",
            opts: OptimizeOptions::scheme(Scheme::Ni)
                .with_kind(kind)
                .with_implications(ImplicationMode::None),
        },
        Config {
            label: "SE",
            opts: OptimizeOptions::scheme(Scheme::Se).with_kind(kind),
        },
        Config {
            label: "SE'",
            opts: OptimizeOptions::scheme(Scheme::Se)
                .with_kind(kind)
                .with_implications(ImplicationMode::None),
        },
        Config {
            label: "LLS",
            opts: OptimizeOptions::scheme(Scheme::Lls).with_kind(kind),
        },
        Config {
            label: "LLS'",
            opts: OptimizeOptions::scheme(Scheme::Lls)
                .with_kind(kind)
                .with_implications(ImplicationMode::CrossFamilyOnly),
        },
    ]
}

/// Every scheme × check-kind × implication-mode configuration — the full
/// certification matrix (`table2 --certify`, the service smoke test).
pub fn full_matrix_configs() -> Vec<Config> {
    let mut configs = Vec::new();
    for kind in [CheckKind::Prx, CheckKind::Inx] {
        for scheme in Scheme::EACH {
            for mode in [
                ImplicationMode::All,
                ImplicationMode::CrossFamilyOnly,
                ImplicationMode::None,
            ] {
                configs.push(Config {
                    label: scheme.name(),
                    opts: OptimizeOptions::scheme(scheme)
                        .with_kind(kind)
                        .with_implications(mode),
                });
            }
        }
    }
    configs
}

/// One completed cell of the configuration × benchmark matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Index into the `configs` slice passed to [`run_matrix`].
    pub config_index: usize,
    /// Index into the `prepared` slice passed to [`run_matrix`].
    pub bench_index: usize,
    /// Evaluation result (always produced).
    pub result: SchemeResult,
    /// Certifier verdict, when certification was requested.
    pub certificate: Option<Certificate>,
    /// Wall-clock time this cell took on its worker (optimize + run +
    /// validate + optional certification).
    pub wall: Duration,
}

/// The whole matrix plus the parallel-execution accounting for the
/// `--timings` report.
#[derive(Debug)]
pub struct MatrixReport {
    /// All cells, sorted by `(config_index, bench_index)` — identical
    /// order to a serial nested loop, whatever the thread interleaving.
    pub cells: Vec<MatrixCell>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the parallel run.
    pub wall_time: Duration,
    /// Serial estimate: the sum of every cell's wall time plus one
    /// benchmark recompile per cell — what a one-cell-at-a-time loop
    /// that recompiles the program for every configuration (the old
    /// harness) pays for the same matrix.
    pub serial_time: Duration,
    /// Per-analysis/per-pass counters merged across every cell.
    pub timings: Timings,
}

impl MatrixReport {
    /// Serial-estimate / wall-clock speedup factor.
    pub fn speedup(&self) -> f64 {
        self.serial_time.as_secs_f64() / self.wall_time.as_secs_f64().max(1e-9)
    }

    /// The cell for `(config_index, bench_index)`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is out of range.
    pub fn cell(&self, config_index: usize, bench_index: usize) -> &MatrixCell {
        self.cells
            .iter()
            .find(|c| c.config_index == config_index && c.bench_index == bench_index)
            .expect("cell exists")
    }

    /// Stable machine-readable `--timings` block: the merged
    /// [`Timings::report`] followed by one `harness` line.
    pub fn timings_report(&self) -> String {
        format!(
            "{}harness threads={} wall_ms={:.1} serial_ms={:.1} speedup={:.2}\n",
            self.timings.report(),
            self.threads,
            self.wall_time.as_secs_f64() * 1e3,
            self.serial_time.as_secs_f64() * 1e3,
            self.speedup(),
        )
    }
}

/// Worker-thread count for [`run_matrix`]: `NASCENT_THREADS` when set to
/// a positive integer, otherwise the machine's available parallelism;
/// either way capped by the number of cells. The override exists so
/// constrained CI runners (and benchmark snapshots) can pin — and
/// honestly report — the worker count actually used.
pub fn matrix_threads(cells: usize) -> usize {
    let requested = std::env::var("NASCENT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0);
    requested
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(cells)
        .max(1)
}

/// Bit-level equality of two run results: counters, trap records, and
/// outputs, with `Real` outputs compared by bit pattern (so `-0.0` and
/// `0.0` differ and NaNs equal themselves) — the differential criterion,
/// stricter than [`RunResult`]'s `PartialEq`.
pub fn results_bit_identical(a: &RunResult, b: &RunResult) -> bool {
    a.dynamic_instructions == b.dynamic_instructions
        && a.dynamic_progress == b.dynamic_progress
        && a.dynamic_checks == b.dynamic_checks
        && a.dynamic_guard_ops == b.dynamic_guard_ops
        && a.trap == b.trap
        && a.output.len() == b.output.len()
        && a.output.iter().zip(&b.output).all(|(x, y)| match (x, y) {
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Real(x), Value::Real(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        })
}

/// Runs `prog` on every engine in `engines` and asserts the outcomes are
/// bit-identical: counters, outputs (reals by bit pattern), trap records,
/// and error verdicts alike. Returns the first engine's outcome.
///
/// # Panics
///
/// Panics if any two engines diverge, or if the native tier fails for an
/// infrastructure reason (no C compiler, compile rejection, timeout) —
/// gate native runs on [`nascent_cback::cc_available`] first.
pub fn compare_engines(
    name: &str,
    prog: &Program,
    limits: &Limits,
    engines: &[Engine],
) -> Result<RunResult, RunError> {
    assert!(!engines.is_empty(), "compare_engines needs an engine");
    let mut outcomes: Vec<(Engine, Result<RunResult, RunError>)> = Vec::new();
    for &e in engines {
        let r = run_with_engine(prog, limits, e);
        if let Err(RunError::NativeBackend(msg)) = &r {
            panic!("{name}: native tier infrastructure failure: {msg}");
        }
        outcomes.push((e, r));
    }
    let (e0, first) = &outcomes[0];
    for (e, r) in &outcomes[1..] {
        let same = match (first, r) {
            (Ok(a), Ok(b)) => results_bit_identical(a, b),
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        assert!(
            same,
            "{name}: engines diverge:\n  {}: {first:?}\n  {}: {r:?}",
            e0.name(),
            e.name(),
        );
    }
    outcomes.swap_remove(0).1
}

/// Evaluates (and optionally certifies) every `configs[i]` × `prepared[j]`
/// cell, fanned out over [`matrix_threads`] worker threads pulling cells
/// from a shared queue. Each cell builds its own per-function
/// [`PassContext`]s inside the optimizer, so no state is shared between
/// concurrent cells; the prepared baselines are read-only.
///
/// # Panics
///
/// Panics (propagated from the workers) if any cell fails validation or
/// certification.
pub fn run_matrix(
    prepared: &[PreparedBenchmark],
    configs: &[Config],
    certify: bool,
) -> MatrixReport {
    run_matrix_with(prepared, configs, certify, Engine::default())
}

/// [`run_matrix`] on an explicit [`Engine`] (for tree-vs-VM A/B runs; the
/// check and guard counters of every cell are engine-invariant).
pub fn run_matrix_with(
    prepared: &[PreparedBenchmark],
    configs: &[Config],
    certify: bool,
    engine: Engine,
) -> MatrixReport {
    let pairs: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..prepared.len()).map(move |b| (c, b)))
        .collect();
    let threads = matrix_threads(pairs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MatrixCell>>> = pairs.iter().map(|_| Mutex::new(None)).collect();
    let wall0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(config_index, bench_index)) = pairs.get(i) else {
                    break;
                };
                let pb = &prepared[bench_index];
                let cfg = &configs[config_index];
                let cell0 = Instant::now();
                let result = evaluate_prepared_with(pb, &cfg.opts, engine);
                let certificate = certify.then(|| certify_prepared(pb, &cfg.opts));
                *slots[i].lock().expect("slot lock") = Some(MatrixCell {
                    config_index,
                    bench_index,
                    result,
                    certificate,
                    wall: cell0.elapsed(),
                });
            });
        }
    });
    let wall_time = wall0.elapsed();
    let mut cells: Vec<MatrixCell> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("cell computed"))
        .collect();
    cells.sort_by_key(|c| (c.config_index, c.bench_index));
    let serial_time = cells
        .iter()
        .map(|c| c.wall + prepared[c.bench_index].compile_time)
        .sum();
    let mut timings = Timings::default();
    for c in &cells {
        timings.merge(&c.result.timings);
    }
    MatrixReport {
        cells,
        threads,
        wall_time,
        serial_time,
        timings,
    }
}
