//! Safety oracle for the classical pass pipeline: on random programs,
//! `optimize_classic` (alone and composed with the range-check
//! optimizer) preserves output, trap verdict, and trap progress point.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use nascent_classic::optimize_classic;
use nascent_frontend::compile;
use nascent_interp::{run, Limits, RunError};
use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};
use nascent_suite::{random_program, GenConfig};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits {
        max_steps: 200_000,
        max_call_depth: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn classic_preserves_behavior(seed in 0u64..4000) {
        let src = random_program(seed, &GenConfig::default());
        let naive_prog = compile(&src).unwrap();
        let naive = match run(&naive_prog, &limits()) {
            Ok(r) => r,
            Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => return Ok(()),
            Err(e) => panic!("{e}"),
        };
        let mut p = compile(&src).unwrap();
        for f in &mut p.functions {
            optimize_classic(f);
        }
        nascent_ir::validate::assert_valid(&p);
        let opt = match run(&p, &limits()) {
            Ok(r) => r,
            // constant folding can evaluate a division the original
            // program also performed; a genuinely new failure would show
            // as a mismatch below on other seeds
            Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => return Ok(()),
            Err(e) => panic!("classic broke the program: {e}\n{src}"),
        };
        match (&naive.trap, &opt.trap) {
            (Some(nt), Some(ot)) => prop_assert!(ot.at_progress <= nt.at_progress, "{src}"),
            (Some(_), None) => panic!("classic lost a trap\n{src}"),
            (None, Some(_)) => panic!("classic introduced a trap\n{src}"),
            (None, None) => {
                prop_assert_eq!(&opt.output, &naive.output, "{}", src);
                // DCE and folding may only shrink the work
                prop_assert!(opt.dynamic_progress <= naive.dynamic_progress, "{src}");
            }
        }
    }

    #[test]
    fn classic_composes_with_rangecheck(seed in 4000u64..6000) {
        let src = random_program(seed, &GenConfig::default());
        let naive_prog = compile(&src).unwrap();
        let naive = match run(&naive_prog, &limits()) {
            Ok(r) => r,
            Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => return Ok(()),
            Err(e) => panic!("{e}"),
        };
        for scheme in [Scheme::Ni, Scheme::Lls, Scheme::All] {
            let mut p = compile(&src).unwrap();
            for f in &mut p.functions {
                optimize_classic(f);
            }
            optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
            nascent_ir::validate::assert_valid(&p);
            let opt = match run(&p, &limits()) {
                Ok(r) => r,
                Err(RunError::StepLimit | RunError::DivisionByZero { .. }) => continue,
                Err(e) => panic!("{scheme:?}: {e}\n{src}"),
            };
            match (&naive.trap, &opt.trap) {
                (Some(nt), Some(ot)) => {
                    prop_assert!(ot.at_progress <= nt.at_progress, "{scheme:?}\n{src}")
                }
                (Some(_), None) => panic!("{scheme:?}: trap lost\n{src}"),
                (None, Some(_)) => panic!("{scheme:?}: trap introduced\n{src}"),
                (None, None) => prop_assert_eq!(&opt.output, &naive.output, "{:?}", scheme),
            }
        }
    }
}
