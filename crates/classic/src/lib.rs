//! Classical scalar optimizations over the nascent IR.
//!
//! The paper notes (§1) that "range checks are subject to traditional
//! compiler optimizations such as constant propagation, common
//! subexpression elimination, and invariant code motion" before its own
//! technique applies. This crate provides that traditional substrate as
//! an optional pre-pass:
//!
//! * [`valueprop`] — forward constant *and* copy propagation over a
//!   `var → (constant | copy-of)` lattice, including rewriting of the
//!   canonical range-check forms and folding of constant branch
//!   conditions into jumps;
//! * [`dce`] — liveness-based removal of dead scalar assignments;
//! * [`cfg`](mod@cfg) — CFG cleanup: unreachable-block removal and jump threading
//!   (which also undoes the empty blocks left by edge-splitting
//!   placements).
//!
//! [`optimize_classic`] runs the passes to a fixpoint. All passes
//! preserve the observable behavior tested by the safety oracle: output,
//! trap verdict, and the trap's progress point.

pub mod cfg;
pub mod dce;
pub mod valueprop;

use nascent_ir::Function;

/// Statistics from one [`optimize_classic`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassicStats {
    /// Uses rewritten to constants or copied variables.
    pub uses_rewritten: usize,
    /// Branches folded to jumps.
    pub branches_folded: usize,
    /// Dead assignments removed.
    pub dead_assignments: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
    /// Jumps threaded through empty blocks.
    pub jumps_threaded: usize,
    /// Pass-pipeline iterations until fixpoint.
    pub iterations: usize,
}

/// Runs value propagation, DCE and CFG cleanup to a fixpoint.
pub fn optimize_classic(f: &mut Function) -> ClassicStats {
    let mut stats = ClassicStats::default();
    for _ in 0..8 {
        stats.iterations += 1;
        let mut changed = false;
        let vp = valueprop::propagate(f);
        stats.uses_rewritten += vp.uses_rewritten;
        stats.branches_folded += vp.branches_folded;
        changed |= vp.uses_rewritten > 0 || vp.branches_folded > 0;
        let dead = dce::remove_dead_assignments(f);
        stats.dead_assignments += dead;
        changed |= dead > 0;
        let cfg = cfg::simplify(f);
        stats.blocks_removed += cfg.blocks_removed;
        stats.jumps_threaded += cfg.jumps_threaded;
        changed |= cfg.blocks_removed > 0 || cfg.jumps_threaded > 0;
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};

    #[test]
    fn fixpoint_pipeline_preserves_behavior() {
        let src = "program p
 integer a(1:20)
 integer i, k, n, dead
 n = 10
 k = n
 dead = 99
 do i = 1, k
  a(i) = i + n - 10
 enddo
 if (n > 5) then
  print a(k)
 else
  print 0
 endif
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let mut p = compile(src).unwrap();
        let stats = optimize_classic(&mut p.functions[0]);
        nascent_ir::validate::assert_valid(&p);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert_eq!(opt.trap, naive.trap);
        assert!(stats.uses_rewritten > 0);
        assert!(stats.branches_folded >= 1, "n > 5 is constant");
        assert!(stats.dead_assignments >= 1, "dead = 99 removed");
    }

    #[test]
    fn classic_then_rangecheck_is_sound_and_stronger() {
        use nascent_rangecheck::{optimize_function, OptimizeOptions, Scheme};
        // k = n with n constant: after propagation the checks on a(k)
        // fold at compile time, which plain LLS leaves to the guard
        let src = "program p
 integer a(1:20)
 integer i, k, n
 n = 10
 k = n + 5
 do i = 1, n
  a(k) = a(k) + i
 enddo
 print a(15)
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let mut p = compile(src).unwrap();
        optimize_classic(&mut p.functions[0]);
        let stats = optimize_function(&mut p.functions[0], &OptimizeOptions::scheme(Scheme::Lls));
        nascent_ir::validate::assert_valid(&p);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert!(
            stats.folded_true >= 1 && stats.static_after == 0,
            "constant subscripts fold: {stats:?}"
        );
        assert_eq!(opt.dynamic_checks, 0, "every check decided at compile time");
    }
}
