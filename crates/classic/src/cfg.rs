//! CFG cleanup: jump threading through empty blocks and removal of
//! unreachable blocks (with block-id compaction).

use std::collections::HashMap;

use nascent_analysis::dom::Dominators;
use nascent_ir::{BlockId, Function, Terminator};

/// Result of one [`simplify`] round.
#[derive(Debug, Clone, Copy, Default)]
pub struct CfgStats {
    /// Edges retargeted through empty jump-only blocks.
    pub jumps_threaded: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
}

/// The ultimate target of a chain of empty jump-only blocks starting at
/// `b` (following at most the number of blocks, so cycles terminate).
fn chase(f: &Function, mut b: BlockId) -> BlockId {
    let mut seen = 0;
    loop {
        let block = f.block(b);
        if !block.stmts.is_empty() {
            return b;
        }
        let Terminator::Jump(next) = block.term else {
            return b;
        };
        if next == b || seen > f.blocks.len() {
            return b;
        }
        b = next;
        seen += 1;
    }
}

/// Threads jumps and deletes unreachable blocks. Returns what changed.
pub fn simplify(f: &mut Function) -> CfgStats {
    let mut stats = CfgStats::default();
    // 1. thread edges through empty jump-only blocks
    for b in f.block_ids().collect::<Vec<_>>() {
        let term = f.block(b).term.clone();
        match term {
            Terminator::Jump(t) => {
                let t2 = chase(f, t);
                if t2 != t {
                    f.block_mut(b).term = Terminator::Jump(t2);
                    stats.jumps_threaded += 1;
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let (nt, ne) = (chase(f, then_bb), chase(f, else_bb));
                if nt != then_bb || ne != else_bb {
                    f.block_mut(b).term = Terminator::Branch {
                        cond,
                        then_bb: nt,
                        else_bb: ne,
                    };
                    stats.jumps_threaded += 1;
                }
            }
            Terminator::Return => {}
        }
    }
    // 2. drop unreachable blocks, compacting ids
    let dom = Dominators::compute(f);
    let reachable: Vec<BlockId> = f.block_ids().filter(|b| dom.is_reachable(*b)).collect();
    if reachable.len() < f.blocks.len() {
        let remap: HashMap<BlockId, BlockId> = reachable
            .iter()
            .enumerate()
            .map(|(new, old)| (*old, BlockId(new as u32)))
            .collect();
        stats.blocks_removed = f.blocks.len() - reachable.len();
        let mut new_blocks = Vec::with_capacity(reachable.len());
        for old in &reachable {
            let mut block = f.block(*old).clone();
            match &mut block.term {
                Terminator::Jump(t) => *t = remap[t],
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    *then_bb = remap[then_bb];
                    *else_bb = remap[else_bb];
                }
                Terminator::Return => {}
            }
            new_blocks.push(block);
        }
        f.entry = remap[&f.entry];
        f.blocks = new_blocks;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};
    use nascent_ir::validate::assert_valid;

    #[test]
    fn threads_empty_chains_from_exit_lowering() {
        // `exit` lowering leaves unreachable continuation blocks and
        // empty jump chains
        let src = "program p
 integer i, s
 s = 0
 do i = 1, 10
  if (i == 3) then
   exit
  endif
  s = s + i
 enddo
 print s
end
";
        let mut p = compile(src).unwrap();
        let naive = run(&p, &Limits::default()).unwrap();
        let before = p.functions[0].blocks.len();
        let stats = simplify(&mut p.functions[0]);
        assert_valid(&p);
        assert!(stats.blocks_removed > 0 || stats.jumps_threaded > 0);
        assert!(p.functions[0].blocks.len() <= before);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn removes_blocks_dead_after_branch_folding() {
        let src = "program p
 integer x
 x = 1
 if (x > 0) then
  print 1
 else
  print 2
 endif
end
";
        let mut p = compile(src).unwrap();
        crate::valueprop::propagate(&mut p.functions[0]);
        let stats = simplify(&mut p.functions[0]);
        assert!(stats.blocks_removed >= 1, "else arm is unreachable");
        assert_valid(&p);
        let r = run(&p, &Limits::default()).unwrap();
        assert_eq!(r.output.len(), 1);
    }

    #[test]
    fn self_loop_of_empty_block_terminates() {
        use nascent_ir::{Block, Function};
        let mut f = Function::new("inf");
        let b1 = f.add_block(Block::default());
        f.block_mut(f.entry).term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Jump(b1);
        let _ = simplify(&mut f); // must not hang
        assert!(!f.blocks.is_empty());
    }

    #[test]
    fn compaction_preserves_execution_on_suite_program() {
        let b = &nascent_suite::test_suite()[0];
        let mut p = compile(&b.source).unwrap();
        let naive = run(&p, &Limits::default()).unwrap();
        for func in &mut p.functions {
            simplify(func);
        }
        assert_valid(&p);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert_eq!(opt.dynamic_checks, naive.dynamic_checks);
    }
}
