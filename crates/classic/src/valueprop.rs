//! Forward constant and copy propagation.
//!
//! The data-flow fact maps each variable to what is known about its
//! value at a program point: a compile-time constant or a copy of
//! another (unmodified-since) variable. Uses are rewritten to the
//! constant / the copied variable; range-check forms are rewritten
//! through [`LinForm::substitute_var`]; branch conditions that become
//! constants fold the branch into a jump.

use std::collections::BTreeMap;

use nascent_analysis::dataflow::{solve, Direction, Problem};
use nascent_ir::{
    Arg, BlockId, CheckExpr, Expr, Function, LinForm, Stmt, Terminator, Ty, UnOp, VarId, R64,
};

/// What is known about a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Known {
    /// An integer constant.
    Int(i64),
    /// A real constant (bit pattern).
    Real(R64),
    /// A copy of another variable (whose own value is unknown).
    Copy(VarId),
}

type Fact = Option<BTreeMap<VarId, Known>>; // None = unvisited (top)

struct ValueProp;

impl Problem for ValueProp {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Fact {
        Some(BTreeMap::new())
    }

    fn top(&self) -> Fact {
        None
    }

    fn meet(&self, a: &Fact, b: &Fact) -> Fact {
        match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(a), Some(b)) => Some(
                a.iter()
                    .filter(|(k, v)| b.get(k) == Some(v))
                    .map(|(k, v)| (*k, *v))
                    .collect(),
            ),
        }
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &Fact) -> Fact {
        let mut map = fact.clone()?;
        for s in &f.block(b).stmts {
            step(f, &mut map, s);
        }
        Some(map)
    }
}

/// Applies one statement to the known-value map.
fn step(f: &Function, map: &mut BTreeMap<VarId, Known>, s: &Stmt) {
    let Some(var) = s.defined_var() else { return };
    // any copies OF this variable become stale
    map.retain(|_, v| *v != Known::Copy(var));
    let ty = f.vars[var.index()].ty;
    match s {
        Stmt::Assign { value, .. } => match eval(map, value).map(|k| coerce_known(ty, k)) {
            Some(Some(k)) => {
                map.insert(var, k);
            }
            _ => {
                // plain copy x = y (y not itself resolvable); only track
                // same-typed copies (assignment coerces otherwise)
                match value {
                    Expr::Var(y) if *y != var && f.vars[y.index()].ty == ty => {
                        let known = resolve(map, *y);
                        map.insert(var, known.unwrap_or(Known::Copy(*y)));
                    }
                    _ => {
                        map.remove(&var);
                    }
                }
            }
        },
        _ => {
            map.remove(&var);
        }
    }
}

/// Coerces a known value to the declared type of the variable holding it
/// (mirroring the interpreter's assignment coercion). `None` when the
/// coercion cannot be represented (`Copy` across types).
fn coerce_known(ty: Ty, k: Known) -> Option<Known> {
    Some(match (ty, k) {
        (Ty::Int, Known::Real(r)) => {
            let v = r.value();
            if v.is_nan() {
                Known::Int(0)
            } else {
                Known::Int(v as i64)
            }
        }
        (Ty::Real, Known::Int(v)) => Known::Real(R64::new(v as f64)),
        (_, Known::Copy(_)) => return None,
        (_, k) => k,
    })
}

/// Resolves a variable through the map (constants win over copies).
fn resolve(map: &BTreeMap<VarId, Known>, v: VarId) -> Option<Known> {
    match map.get(&v) {
        Some(Known::Copy(w)) => match map.get(w) {
            Some(k @ (Known::Int(_) | Known::Real(_))) => Some(*k),
            _ => Some(Known::Copy(*w)),
        },
        Some(k) => Some(*k),
        None => None,
    }
}

/// Constant-evaluates an expression under the map, if fully known.
fn eval(map: &BTreeMap<VarId, Known>, e: &Expr) -> Option<Known> {
    match e {
        Expr::IntConst(v) => Some(Known::Int(*v)),
        Expr::RealConst(r) => Some(Known::Real(*r)),
        Expr::Var(v) => match resolve(map, *v) {
            Some(k @ (Known::Int(_) | Known::Real(_))) => Some(k),
            _ => None,
        },
        Expr::Unary(op, inner) => {
            let k = eval(map, inner)?;
            Some(match (op, k) {
                (UnOp::Neg, Known::Int(v)) => Known::Int(v.wrapping_neg()),
                (UnOp::Neg, Known::Real(r)) => Known::Real(R64::new(-r.value())),
                (UnOp::Not, Known::Int(v)) => Known::Int(i64::from(v == 0)),
                (UnOp::Not, Known::Real(r)) => Known::Int(i64::from(r.value() == 0.0)),
                (_, Known::Copy(_)) => return None,
            })
        }
        Expr::Binary(op, l, r) => {
            let a = eval(map, l)?;
            let b = eval(map, r)?;
            match (a, b) {
                (Known::Int(x), Known::Int(y)) => {
                    nascent_ir::expr::eval_int_binop(*op, x, y).map(Known::Int)
                }
                (x, y) => {
                    // mixed/real arithmetic: promote to f64 like the interpreter
                    let xv = match x {
                        Known::Int(v) => v as f64,
                        Known::Real(r) => r.value(),
                        Known::Copy(_) => return None,
                    };
                    let yv = match y {
                        Known::Int(v) => v as f64,
                        Known::Real(r) => r.value(),
                        Known::Copy(_) => return None,
                    };
                    real_binop(*op, xv, yv)
                }
            }
        }
    }
}

fn real_binop(op: nascent_ir::BinOp, a: f64, b: f64) -> Option<Known> {
    use nascent_ir::BinOp;
    Some(match op {
        BinOp::Add => Known::Real(R64::new(a + b)),
        BinOp::Sub => Known::Real(R64::new(a - b)),
        BinOp::Mul => Known::Real(R64::new(a * b)),
        BinOp::Div => Known::Real(R64::new(a / b)),
        BinOp::Mod => Known::Real(R64::new(a % b)),
        BinOp::Min => Known::Real(R64::new(a.min(b))),
        BinOp::Max => Known::Real(R64::new(a.max(b))),
        BinOp::Lt => Known::Int(i64::from(a < b)),
        BinOp::Le => Known::Int(i64::from(a <= b)),
        BinOp::Gt => Known::Int(i64::from(a > b)),
        BinOp::Ge => Known::Int(i64::from(a >= b)),
        BinOp::Eq => Known::Int(i64::from(a == b)),
        BinOp::Ne => Known::Int(i64::from(a != b)),
        BinOp::And => Known::Int(i64::from(a != 0.0 && b != 0.0)),
        BinOp::Or => Known::Int(i64::from(a != 0.0 || b != 0.0)),
    })
}

/// Result of one propagation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PropStats {
    /// Variable uses rewritten to constants or copy sources.
    pub uses_rewritten: usize,
    /// Constant branches folded to jumps.
    pub branches_folded: usize,
}

/// Rewrites a use of `v` given the map; counts in `n`.
fn rewrite_var(
    map: &BTreeMap<VarId, Known>,
    f: &Function,
    v: VarId,
    n: &mut usize,
) -> Option<Expr> {
    match resolve(map, v)? {
        Known::Int(c) => {
            if f.vars[v.index()].ty == Ty::Int {
                *n += 1;
                Some(Expr::int(c))
            } else {
                *n += 1;
                Some(Expr::real(c as f64))
            }
        }
        Known::Real(r) => {
            if f.vars[v.index()].ty == Ty::Real {
                *n += 1;
                Some(Expr::RealConst(r))
            } else {
                None
            }
        }
        Known::Copy(w) => {
            if f.vars[w.index()].ty == f.vars[v.index()].ty {
                *n += 1;
                Some(Expr::var(w))
            } else {
                None
            }
        }
    }
}

fn rewrite_expr(map: &BTreeMap<VarId, Known>, f: &Function, e: &Expr, n: &mut usize) -> Expr {
    match e {
        Expr::IntConst(_) | Expr::RealConst(_) => e.clone(),
        Expr::Var(v) => rewrite_var(map, f, *v, n).unwrap_or_else(|| e.clone()),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(rewrite_expr(map, f, inner, n))),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(map, f, l, n)),
            Box::new(rewrite_expr(map, f, r, n)),
        ),
    }
}

/// Rewrites a canonical check expression under the known-value map.
fn rewrite_check(map: &BTreeMap<VarId, Known>, ce: &CheckExpr, n: &mut usize) -> CheckExpr {
    let mut form = ce.form().clone();
    let mut changed = false;
    for _ in 0..8 {
        let mut stepped = false;
        for v in form.vars() {
            let repl = match resolve(map, v) {
                Some(Known::Int(c)) => LinForm::constant(c),
                Some(Known::Copy(w)) => LinForm::var(w),
                _ => continue,
            };
            if repl.uses_var(v) {
                continue;
            }
            if let Some(next) = form.substitute_var(v, &repl) {
                form = next;
                stepped = true;
                changed = true;
                break;
            }
        }
        if !stepped {
            break;
        }
    }
    if changed {
        *n += 1;
        CheckExpr::new(form, ce.bound())
    } else {
        ce.clone()
    }
}

/// Runs one round of constant/copy propagation over the function,
/// rewriting uses and folding constant branches.
pub fn propagate(f: &mut Function) -> PropStats {
    let sol = solve(f, &ValueProp);
    let mut stats = PropStats::default();
    for b in f.block_ids().collect::<Vec<_>>() {
        let Some(mut map) = sol.entry[b.index()].clone() else {
            continue; // unreachable
        };
        let mut stmts = std::mem::take(&mut f.block_mut(b).stmts);
        for s in &mut stmts {
            // rewrite uses first, then apply the statement's effect
            let n = &mut stats.uses_rewritten;
            match s {
                Stmt::Assign { value, .. } => *value = rewrite_expr(&map, f, value, n),
                Stmt::Load { index, .. } => {
                    for e in index.iter_mut() {
                        *e = rewrite_expr(&map, f, e, n);
                    }
                }
                Stmt::Store { index, value, .. } => {
                    for e in index.iter_mut() {
                        *e = rewrite_expr(&map, f, e, n);
                    }
                    *value = rewrite_expr(&map, f, value, n);
                }
                Stmt::Check(c) => {
                    for g in &mut c.guards {
                        *g = rewrite_check(&map, g, n);
                    }
                    c.cond = rewrite_check(&map, &c.cond, n);
                }
                Stmt::Call { args, .. } => {
                    for a in args.iter_mut() {
                        if let Arg::Scalar(e) = a {
                            *e = rewrite_expr(&map, f, e, n);
                        }
                    }
                }
                Stmt::Emit(e) => *e = rewrite_expr(&map, f, e, n),
                Stmt::Trap { .. } => {}
            }
            step(f, &mut map, s);
        }
        f.block_mut(b).stmts = stmts;
        // branch folding with the end-of-block fact
        let term = f.block(b).term.clone();
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = term
        {
            let mut n = 0usize;
            let folded = rewrite_expr(&map, f, &cond, &mut n).fold();
            match folded.as_int() {
                Some(0) => {
                    f.block_mut(b).term = Terminator::Jump(else_bb);
                    stats.branches_folded += 1;
                }
                Some(_) => {
                    f.block_mut(b).term = Terminator::Jump(then_bb);
                    stats.branches_folded += 1;
                }
                None => {
                    if n > 0 {
                        stats.uses_rewritten += n;
                        f.block_mut(b).term = Terminator::Branch {
                            cond: folded,
                            then_bb,
                            else_bb,
                        };
                    }
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_ir::pretty::checks_to_strings;

    #[test]
    fn constants_flow_through_copies() {
        let mut p =
            compile("program p\n integer x, y, z\n x = 4\n y = x\n z = y + 1\n print z\nend\n")
                .unwrap();
        let stats = propagate(&mut p.functions[0]);
        assert!(stats.uses_rewritten >= 2);
        // the emit is now a constant
        let f = &p.functions[0];
        let emit = f
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .find_map(|s| match s {
                Stmt::Emit(e) => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(emit.fold().as_int(), Some(5));
    }

    #[test]
    fn branch_on_constant_folds_to_jump() {
        let mut p = compile(
            "program p\n integer x\n x = 1\n if (x > 0) then\n print 1\n else\n print 2\n endif\nend\n",
        )
        .unwrap();
        let stats = propagate(&mut p.functions[0]);
        assert_eq!(stats.branches_folded, 1);
        let branches = p.functions[0]
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 0);
    }

    #[test]
    fn check_forms_are_rewritten() {
        let mut p =
            compile("program p\n integer a(1:10)\n integer k, n\n n = 4\n k = n\n a(k) = 0\nend\n")
                .unwrap();
        propagate(&mut p.functions[0]);
        let checks = checks_to_strings(&p.functions[0]);
        // checks are now constant inequalities (forms without variables)
        assert!(checks.iter().all(|(_, s)| !s.contains('v')), "{checks:?}");
    }

    #[test]
    fn merge_kills_disagreeing_constants() {
        let mut p = compile(
            "program p
 integer x, c
 c = 0
 if (c == 0) then
  x = 1
 else
  x = 2
 endif
 print x
end
",
        )
        .unwrap();
        // branch folds (c constant), so x = 1 wins on the surviving path;
        // run twice to let the fold enable more propagation
        propagate(&mut p.functions[0]);
        propagate(&mut p.functions[0]);
        let f = &p.functions[0];
        let emit = f
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .find_map(|s| match s {
                Stmt::Emit(e) => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(emit.as_int(), Some(1));
    }

    #[test]
    fn loads_invalidate_knowledge() {
        let mut p = compile(
            "program p\n integer a(1:5)\n integer x\n x = 3\n a(1) = 7\n x = a(1)\n print x\nend\n",
        )
        .unwrap();
        propagate(&mut p.functions[0]);
        let f = &p.functions[0];
        let emit = f
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .find_map(|s| match s {
                Stmt::Emit(e) => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        // x is loaded from memory: not a constant
        assert!(emit.as_int().is_none());
    }
}
