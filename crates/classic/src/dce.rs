//! Dead-assignment elimination via backward liveness.
//!
//! Only plain scalar assignments are removed: loads stay (their bounds
//! behavior is part of the checked program), and stores, checks, calls,
//! traps and emits are always live.

use std::collections::BTreeSet;

use nascent_analysis::dataflow::{solve, Direction, Problem};
use nascent_ir::{Arg, BlockId, Function, Stmt, Terminator, VarId};

struct Liveness;

impl Problem for Liveness {
    type Fact = BTreeSet<VarId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn top(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.union(b).cloned().collect()
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut live = fact.clone();
        if let Terminator::Branch { cond, .. } = &f.block(b).term {
            live.extend(cond.vars());
        }
        for s in f.block(b).stmts.iter().rev() {
            step(&mut live, s);
        }
        live
    }
}

/// Applies one statement to a liveness fact, walking backward.
fn step(live: &mut BTreeSet<VarId>, s: &Stmt) {
    if let Some(v) = s.defined_var() {
        live.remove(&v);
    }
    match s {
        Stmt::Assign { value, .. } => live.extend(value.vars()),
        Stmt::Load { index, .. } => {
            for e in index {
                live.extend(e.vars());
            }
        }
        Stmt::Store { index, value, .. } => {
            for e in index {
                live.extend(e.vars());
            }
            live.extend(value.vars());
        }
        Stmt::Check(c) => live.extend(c.vars()),
        Stmt::Call { args, .. } => {
            for a in args {
                if let Arg::Scalar(e) = a {
                    live.extend(e.vars());
                }
            }
        }
        Stmt::Emit(e) => live.extend(e.vars()),
        Stmt::Trap { .. } => {}
    }
}

/// Removes assignments to variables that are dead at the assignment.
/// Returns the number removed.
pub fn remove_dead_assignments(f: &mut Function) -> usize {
    let sol = solve(f, &Liveness);
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // walk backward, tracking liveness before each statement
        let mut live = sol.exit[b.index()].clone();
        if let Terminator::Branch { cond, .. } = &f.block(b).term {
            live.extend(cond.vars());
        }
        let stmts = std::mem::take(&mut f.block_mut(b).stmts);
        let mut kept_rev = Vec::with_capacity(stmts.len());
        for s in stmts.into_iter().rev() {
            let dead = matches!(
                &s,
                Stmt::Assign { var, .. } if !live.contains(var)
            );
            if dead {
                removed += 1;
                continue; // a dead assignment has no effect on liveness
            }
            step(&mut live, &s);
            kept_rev.push(s);
        }
        kept_rev.reverse();
        f.block_mut(b).stmts = kept_rev;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};

    #[test]
    fn removes_dead_and_keeps_live() {
        let src = "program p\n integer x, y\n x = 1\n y = 2\n y = 3\n print y\nend\n";
        let mut p = compile(src).unwrap();
        let naive = run(&p, &Limits::default()).unwrap();
        let removed = remove_dead_assignments(&mut p.functions[0]);
        assert_eq!(removed, 2); // x = 1 and the overwritten y = 2
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let src =
            "program p\n integer i, s\n s = 0\n do i = 1, 5\n s = s + i\n enddo\n print s\nend\n";
        let mut p = compile(src).unwrap();
        let removed = remove_dead_assignments(&mut p.functions[0]);
        assert_eq!(removed, 0);
    }

    #[test]
    fn check_uses_keep_variables_live() {
        let src = "program p\n integer a(1:10)\n integer k\n k = 5\n a(k) = 1\nend\n";
        let mut p = compile(src).unwrap();
        let removed = remove_dead_assignments(&mut p.functions[0]);
        assert_eq!(removed, 0, "k feeds the checks and the store");
    }

    #[test]
    fn dead_chain_unravels_over_iterations() {
        // b depends on a; both dead: first pass removes b, second removes a
        let src = "program p\n integer a, b\n a = 1\n b = a + 1\n print 9\nend\n";
        let mut p = compile(src).unwrap();
        let r1 = remove_dead_assignments(&mut p.functions[0]);
        let r2 = remove_dead_assignments(&mut p.functions[0]);
        assert_eq!(r1 + r2, 2);
    }
}
