//! Justification log: one structured event per optimization decision.
//!
//! Every pass that adds, removes, rewrites or hoists a check records *why*
//! the transformation is safe, in terms a verifier can re-check from
//! scratch against the final CFG (see `nascent-verify`): an elimination
//! names the available check that implies the victim, a strengthening
//! names the anticipated stronger bound, a hoist names its preheader,
//! guards and substituted condition, and so on. The log is advisory for
//! the optimizer — it changes no code — but it is the certificate the
//! translation-validation pass consumes.

use nascent_ir::{BlockId, Check, CheckExpr};

/// One optimization decision, with the facts that justify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An (unconditional or conditional) check was deleted because
    /// `because` is available at its site and implies it.
    Eliminated {
        /// Block the check was deleted from.
        block: BlockId,
        /// The deleted check's condition.
        check: CheckExpr,
        /// An available check that implies it.
        because: CheckExpr,
    },
    /// A check's bound was replaced by a stronger anticipated bound (CS).
    Strengthened {
        /// Block of the rewritten check.
        block: BlockId,
        /// Condition before the rewrite.
        from: CheckExpr,
        /// Condition after the rewrite (same family, smaller bound).
        to: CheckExpr,
    },
    /// A conditional check was placed in a loop preheader (LI/LLS/MCM).
    Hoisted {
        /// The preheader that received the check.
        preheader: BlockId,
        /// Guards of the inserted `Cond-check` (empty when the loop's
        /// entry guard is a compile-time tautology).
        guards: Vec<CheckExpr>,
        /// The hoisted condition (invariant, or loop-limit substituted).
        cond: CheckExpr,
    },
    /// An in-loop check was deleted because a hoisted preheader check
    /// covers it.
    HoistCovered {
        /// Block the in-loop check was deleted from.
        block: BlockId,
        /// The deleted check's condition.
        check: CheckExpr,
        /// The preheader holding the covering hoisted check.
        preheader: BlockId,
        /// The covering hoisted condition.
        by: CheckExpr,
    },
    /// A guarded check moved from an inner-loop block to an outer
    /// preheader, with loop-limit temporaries normalized away.
    Rehoisted {
        /// The outer preheader that received the check.
        preheader: BlockId,
        /// Guards after normalization, outer entry guard appended.
        guards: Vec<CheckExpr>,
        /// Condition after normalization / substitution.
        cond: CheckExpr,
        /// Block the guarded check was taken from.
        from_block: BlockId,
        /// The guarded check as it appeared there.
        original: Check,
    },
    /// PRE placement (SE/LNI) inserted an unconditional check.
    Inserted {
        /// Block that received the check (possibly a fresh edge block).
        block: BlockId,
        /// The inserted condition.
        check: CheckExpr,
    },
    /// A check (or a conditional check's guard) was proven true at
    /// compile time and removed.
    FoldedTrue {
        /// Block the check was removed from.
        block: BlockId,
        /// The removed check's condition.
        check: CheckExpr,
    },
    /// A check was proven false at compile time and replaced by `TRAP`.
    FoldedFalse {
        /// Block of the new `TRAP`.
        block: BlockId,
        /// The condition proven false.
        check: CheckExpr,
    },
    /// The static-discharge pre-pass deleted an unconditional check the
    /// value-range analysis proved always true at its site. The verifier
    /// re-proves the verdict with its *own* value-range analysis; the
    /// recorded reason is advisory.
    Discharged {
        /// Block the check was deleted from.
        block: BlockId,
        /// The deleted check's condition.
        check: CheckExpr,
        /// Why the optimizer's analysis believed the check safe.
        reason: DischargeReason,
    },
}

/// Why the optimizer's value-range analysis discharged a check. Advisory
/// (untrusted): the certifier re-derives the verdict from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DischargeReason {
    /// The check site is statically unreachable.
    Unreachable,
    /// The check's condition folds to a true constant.
    Constant,
    /// Interval/symbolic range facts prove the condition.
    Range,
}

/// The justification log of one function's optimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JustLog {
    /// Events in the order the optimizer made the decisions.
    pub events: Vec<Event>,
}

impl JustLog {
    /// An empty log.
    pub fn new() -> JustLog {
        JustLog::default()
    }

    /// Records one event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Every check expression mentioned anywhere in the log (used by the
    /// verifier to widen its check universe).
    pub fn mentioned_checks(&self) -> Vec<CheckExpr> {
        let mut out = Vec::new();
        for e in &self.events {
            match e {
                Event::Eliminated { check, because, .. } => {
                    out.push(check.clone());
                    out.push(because.clone());
                }
                Event::Strengthened { from, to, .. } => {
                    out.push(from.clone());
                    out.push(to.clone());
                }
                Event::Hoisted { guards, cond, .. } => {
                    out.extend(guards.iter().cloned());
                    out.push(cond.clone());
                }
                Event::HoistCovered { check, by, .. } => {
                    out.push(check.clone());
                    out.push(by.clone());
                }
                Event::Rehoisted {
                    guards,
                    cond,
                    original,
                    ..
                } => {
                    out.extend(guards.iter().cloned());
                    out.push(cond.clone());
                    out.extend(original.guards.iter().cloned());
                    out.push(original.cond.clone());
                }
                Event::Inserted { check, .. }
                | Event::FoldedTrue { check, .. }
                | Event::FoldedFalse { check, .. }
                | Event::Discharged { check, .. } => out.push(check.clone()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_ir::{Expr, VarId};

    #[test]
    fn mentioned_checks_cover_all_variants() {
        let c = |b: i64| CheckExpr::new(nascent_ir::LinForm::var(VarId(0)), b);
        let mut log = JustLog::new();
        log.push(Event::Eliminated {
            block: BlockId(0),
            check: c(1),
            because: c(0),
        });
        log.push(Event::Rehoisted {
            preheader: BlockId(1),
            guards: vec![c(2)],
            cond: c(3),
            from_block: BlockId(2),
            original: Check::conditional(vec![c(4)], c(5)),
        });
        let got = log.mentioned_checks();
        for b in 0..6 {
            assert!(got.contains(&c(b)), "bound {b} mentioned");
        }
        let _ = Expr::int(0); // keep the import used under all features
    }
}
