//! The *check universe* of a function: the distinct canonical checks that
//! occur in it, their families, and the precomputed implication masks the
//! data-flow systems operate on.
//!
//! A data-flow fact is a [`BitSet`] over universe indices. Performing an
//! (unconditional) check generates the set of checks it implies; defining
//! a variable kills every check whose range expression mentions it.

use std::collections::HashMap;

use nascent_analysis::context::PassContext;
use nascent_ir::{CheckExpr, Function, Stmt, VarId};

use crate::cig::{discover_affine_edges, Cig, CigClosure, FamilyId};
use crate::util::BitSet;
use crate::ImplicationMode;

/// The check universe of one function (see module docs).
#[derive(Debug)]
pub struct Universe {
    /// The distinct canonical checks, indexed by universe id.
    pub checks: Vec<CheckExpr>,
    /// Family of each check.
    pub family_of: Vec<FamilyId>,
    /// The implication graph.
    pub cig: Cig,
    /// Its transitive closure.
    pub closure: CigClosure,
    /// `gen_avail[c]` — checks made available by performing check `c`
    /// (everything `c` implies under the active mode).
    pub gen_avail: Vec<BitSet>,
    /// `implied_by[c]` — checks whose availability makes `c` redundant
    /// (everything that implies `c`).
    pub implied_by: Vec<BitSet>,
    /// `gen_antic[c]` — checks made anticipatable by an occurrence of `c`:
    /// `c` and its weaker family members (within-family only, §3.2).
    pub gen_antic: Vec<BitSet>,
    /// `kill_of[v]` — checks killed by a definition of `v`.
    pub kill_of: HashMap<VarId, BitSet>,
    /// Active implication mode.
    pub mode: ImplicationMode,
    id_of: HashMap<CheckExpr, usize>,
}

impl Universe {
    /// Builds the universe of `f` under the given implication mode.
    /// Cross-family affine edges are discovered unless the mode is
    /// [`ImplicationMode::None`].
    pub fn build(f: &Function, mode: ImplicationMode) -> Universe {
        Universe::build_ctx(f, mode, &mut PassContext::new())
    }

    /// [`Universe::build`] drawing dominators and unique definitions from
    /// a shared [`PassContext`] instead of recomputing them.
    pub fn build_ctx(f: &Function, mode: ImplicationMode, ctx: &mut PassContext) -> Universe {
        Universe::build_with_extra_ctx(f, mode, &[], ctx)
    }

    /// [`Universe::build`] with additional check expressions seeded into
    /// the universe beyond those occurring in `f`. The verifier uses this
    /// to reason about checks the optimizer deleted (they appear in the
    /// justification log and the reference program but not in the
    /// optimized function).
    pub fn build_with_extra(f: &Function, mode: ImplicationMode, extra: &[CheckExpr]) -> Universe {
        Universe::build_with_extra_ctx(f, mode, extra, &mut PassContext::new())
    }

    /// [`Universe::build_with_extra`] over a shared [`PassContext`].
    pub fn build_with_extra_ctx(
        f: &Function,
        mode: ImplicationMode,
        extra: &[CheckExpr],
        ctx: &mut PassContext,
    ) -> Universe {
        let mut checks: Vec<CheckExpr> = Vec::new();
        let mut id_of: HashMap<CheckExpr, usize> = HashMap::new();
        for b in f.block_ids() {
            for s in &f.block(b).stmts {
                if let Stmt::Check(c) = s {
                    if !id_of.contains_key(&c.cond) {
                        id_of.insert(c.cond.clone(), checks.len());
                        checks.push(c.cond.clone());
                    }
                }
            }
        }
        for c in extra {
            if !id_of.contains_key(c) {
                id_of.insert(c.clone(), checks.len());
                checks.push(c.clone());
            }
        }
        let mut cig = Cig::new();
        let family_of: Vec<FamilyId> = checks.iter().map(|c| cig.family(c.family_key())).collect();
        if mode != ImplicationMode::None {
            let dom = ctx.dominators(f);
            let udefs = ctx.unique_defs(f);
            let fams: Vec<(FamilyId, nascent_ir::LinForm)> = family_of
                .iter()
                .zip(&checks)
                .map(|(fid, c)| (*fid, c.family_key().clone()))
                .collect();
            discover_affine_edges(f, &dom, &udefs, &mut cig, &fams);
        }
        let closure = cig.closure();

        let n = checks.len();
        let mut gen_avail = vec![BitSet::empty(n); n];
        let mut implied_by = vec![BitSet::empty(n); n];
        let mut gen_antic = vec![BitSet::empty(n); n];
        for c in 0..n {
            for (d, implied) in implied_by.iter_mut().enumerate() {
                if implies(mode, &closure, &checks, &family_of, c, d) {
                    gen_avail[c].insert(d);
                    implied.insert(c);
                }
                if implies_in_family(mode, &checks, &family_of, c, d) {
                    gen_antic[c].insert(d);
                }
            }
        }
        let mut kill_of: HashMap<VarId, BitSet> = HashMap::new();
        for (i, c) in checks.iter().enumerate() {
            for v in c.vars() {
                kill_of
                    .entry(v)
                    .or_insert_with(|| BitSet::empty(n))
                    .insert(i);
            }
        }
        Universe {
            checks,
            family_of,
            cig,
            closure,
            gen_avail,
            implied_by,
            gen_antic,
            kill_of,
            mode,
            id_of,
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Universe id of a check, if present.
    pub fn id(&self, c: &CheckExpr) -> Option<usize> {
        self.id_of.get(c).copied()
    }

    /// Does performing `c` imply `d` under this universe's mode?
    /// `None` when either check is outside the universe.
    pub fn implies_checks(&self, c: &CheckExpr, d: &CheckExpr) -> Option<bool> {
        let (ci, di) = (self.id(c)?, self.id(d)?);
        Some(self.gen_avail[ci].contains(di))
    }
}

/// Does performing `c` imply `d` under the mode's availability rules?
fn implies(
    mode: ImplicationMode,
    closure: &CigClosure,
    checks: &[CheckExpr],
    family_of: &[FamilyId],
    c: usize,
    d: usize,
) -> bool {
    if c == d {
        return true;
    }
    let (fc, fd) = (family_of[c], family_of[d]);
    match mode {
        ImplicationMode::None => false,
        ImplicationMode::All => match closure.weight(fc, fd) {
            Some(w) => checks[c].bound().saturating_add(w) <= checks[d].bound(),
            None => false,
        },
        ImplicationMode::CrossFamilyOnly => {
            if fc == fd {
                false // identical checks handled by c == d above
            } else {
                match closure.weight(fc, fd) {
                    Some(w) => checks[c].bound().saturating_add(w) <= checks[d].bound(),
                    None => false,
                }
            }
        }
    }
}

/// Within-family implication used by anticipatability (§3.2: "a range
/// check statement generates a check C and all weaker checks that are in
/// the family of C").
fn implies_in_family(
    mode: ImplicationMode,
    checks: &[CheckExpr],
    family_of: &[FamilyId],
    c: usize,
    d: usize,
) -> bool {
    if c == d {
        return true;
    }
    mode == ImplicationMode::All
        && family_of[c] == family_of[d]
        && checks[c].bound() <= checks[d].bound()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    fn universe(src: &str, mode: ImplicationMode) -> (Function, Universe) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let u = Universe::build(&f, mode);
        (f, u)
    }

    /// Figure 1(a): A[2*N] and A[2*N-1] against integer A(5:10).
    const FIG1: &str = "program fig1
 integer a(5:10)
 integer n
 n = 4
 a(2*n) = 0
 a(2*n - 1) = 1
end
";

    #[test]
    fn figure1_universe_has_two_families_four_checks() {
        let (_, u) = universe(FIG1, ImplicationMode::All);
        assert_eq!(u.len(), 4);
        // two families: {2n} uppers and {-2n} lowers
        let mut fams: Vec<FamilyId> = u.family_of.clone();
        fams.sort();
        fams.dedup();
        assert_eq!(fams.len(), 2);
    }

    #[test]
    fn figure1_implication_structure() {
        let (_, u) = universe(FIG1, ImplicationMode::All);
        // find C2 = (2n <= 10) and C4 = (2n <= 11)
        let c2 = u
            .checks
            .iter()
            .position(|c| c.bound() == 10)
            .expect("C2 present");
        let c4 = u
            .checks
            .iter()
            .position(|c| c.bound() == 11)
            .expect("C4 present");
        assert!(u.gen_avail[c2].contains(c4), "C2 implies C4");
        assert!(!u.gen_avail[c4].contains(c2));
        assert!(u.implied_by[c4].contains(c2));
        // lower checks: C1 = (-2n <= -5), C3 = (-2n <= -6)
        let c1 = u.checks.iter().position(|c| c.bound() == -5).unwrap();
        let c3 = u.checks.iter().position(|c| c.bound() == -6).unwrap();
        assert!(u.gen_avail[c3].contains(c1), "C3 implies C1");
        assert!(u.gen_antic[c3].contains(c1), "antic gen stays in family");
    }

    #[test]
    fn mode_none_has_identity_implications_only() {
        let (_, u) = universe(FIG1, ImplicationMode::None);
        for c in 0..u.len() {
            assert_eq!(u.gen_avail[c].iter().collect::<Vec<_>>(), vec![c]);
            assert_eq!(u.gen_antic[c].iter().collect::<Vec<_>>(), vec![c]);
        }
    }

    #[test]
    fn mode_cross_family_only_drops_family_ordering() {
        let (_, u) = universe(FIG1, ImplicationMode::CrossFamilyOnly);
        let c2 = u.checks.iter().position(|c| c.bound() == 10).unwrap();
        let c4 = u.checks.iter().position(|c| c.bound() == 11).unwrap();
        assert!(!u.gen_avail[c2].contains(c4));
        assert!(u.gen_avail[c2].contains(c2));
    }

    #[test]
    fn kill_masks_cover_form_variables() {
        let (_, u) = universe(FIG1, ImplicationMode::All);
        let kills = &u.kill_of[&VarId(0)]; // n
        assert_eq!(kills.count(), 4); // every check mentions n
    }

    #[test]
    fn duplicate_checks_share_an_id() {
        let (_, u) = universe(
            "program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\n a(i) = 1\nend\n",
            ImplicationMode::All,
        );
        assert_eq!(u.len(), 2); // lower + upper, each appearing twice
    }
}
