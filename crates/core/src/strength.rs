//! Check strengthening (Gupta's scheme, `CS` in Table 2).
//!
//! For each check `C`, compute the strongest anticipatable check `C'` in
//! `C`'s family at the point of `C` (which implies `C`), and replace `C`
//! by `C'`. The later, stronger occurrence then becomes redundant and is
//! removed by the elimination step. This turns the paper's Figure 1(b)
//! into Figure 1(c).

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::dataflow::solve;
use nascent_ir::{Function, Stmt};

use crate::dataflow::{antic_step, Antic};
use crate::justify::{Event, JustLog};
use crate::universe::Universe;
use crate::{ImplicationMode, OptimizeStats};

/// Strengthens check bounds in place; returns how many checks changed.
///
/// Iterates to a fixpoint (strengthening one check can enable
/// strengthening an earlier one), which converges quickly because bounds
/// only decrease within the finite set of program bounds.
pub fn strengthen(f: &mut Function, mode: ImplicationMode, stats: &mut OptimizeStats) -> usize {
    let mut log = JustLog::new();
    strengthen_logged(f, mode, stats, &mut log)
}

/// [`strengthen`], recording one [`Event::Strengthened`] per rewrite.
pub fn strengthen_logged(
    f: &mut Function,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
) -> usize {
    strengthen_ctx(f, mode, stats, log, &mut PassContext::new())
}

/// [`strengthen_logged`] over a shared [`PassContext`].
pub fn strengthen_ctx(
    f: &mut Function,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> usize {
    // strengthening substitutes a same-family implication; without
    // within-family implications the transformation is a no-op
    if mode != ImplicationMode::All {
        return 0;
    }
    let mut total = 0;
    for _round in 0..8 {
        let changed = strengthen_round(f, stats, log, ctx);
        total += changed;
        if changed == 0 {
            break;
        }
        // bounds were rewritten in place: statement-derived analyses of
        // the next round's universe must be rebuilt
        ctx.invalidate(Invalidation::Statements);
    }
    total
}

fn strengthen_round(
    f: &mut Function,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> usize {
    let u = Universe::build_ctx(f, ImplicationMode::All, ctx);
    if u.is_empty() {
        return 0;
    }
    let sol = solve(f, &Antic::new(f, &u));
    stats.dataflow_iterations += sol.iterations;
    let mut changed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        // walk backward so each check sees the anticipatability fact that
        // holds immediately after it
        let mut fact = sol.exit[b.index()].clone();
        let block = f.block_mut(b);
        for s in block.stmts.iter_mut().rev() {
            if let Stmt::Check(c) = s {
                if c.is_unconditional() {
                    let id = u.id(&c.cond).expect("check in universe");
                    let fam = u.family_of[id];
                    // strongest anticipatable bound in the same family
                    let mut best = c.cond.bound();
                    for d in fact.iter() {
                        if u.family_of[d] == fam {
                            best = best.min(u.checks[d].bound());
                        }
                    }
                    if best < c.cond.bound() {
                        let from = c.cond.clone();
                        c.cond = c.cond.with_bound(best);
                        log.push(Event::Strengthened {
                            block: b,
                            from,
                            to: c.cond.clone(),
                        });
                        changed += 1;
                    }
                }
            }
            antic_step(&u, &mut fact, s);
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::eliminate;
    use nascent_frontend::compile;
    use nascent_ir::pretty::checks_to_strings;

    /// The paper's Figure 1: strengthening C1 to C3 then eliminating.
    #[test]
    fn figure1_c_strengthen_then_eliminate() {
        let mut p = compile(
            "program fig1\n integer a(5:10)\n integer n\n n = 4\n a(2*n) = 0\n a(2*n - 1) = 1\nend\n",
        )
        .unwrap();
        let mut stats = OptimizeStats::default();
        let f = &mut p.functions[0];
        let strengthened = strengthen(f, ImplicationMode::All, &mut stats);
        assert_eq!(strengthened, 1, "C1 strengthened to C3's bound");
        let removed = eliminate(f, ImplicationMode::All, &mut stats);
        // C4 (implied by C2) and the original C3 (implied by strengthened
        // C1) both go: Figure 1(c) keeps exactly two checks
        assert_eq!(removed, 2);
        assert_eq!(f.check_count(), 2);
        let checks = checks_to_strings(f);
        // remaining: the strengthened lower check (-2n <= -6) and C2
        assert!(checks.iter().any(|(_, s)| s.contains("<= -6")));
        assert!(checks.iter().any(|(_, s)| s.contains("<= 10")));
    }

    #[test]
    fn strengthening_stops_at_kills() {
        // n redefined between the two accesses: nothing to strengthen
        let mut p = compile(
            "program p\n integer a(5:10)\n integer n\n n = 4\n a(2*n) = 0\n n = 3\n a(2*n - 1) = 1\nend\n",
        )
        .unwrap();
        let mut stats = OptimizeStats::default();
        let s = strengthen(&mut p.functions[0], ImplicationMode::All, &mut stats);
        assert_eq!(s, 0);
    }

    #[test]
    fn branch_blocks_strengthening() {
        // the stronger check happens on only one branch: not anticipatable
        let mut p = compile(
            "program p
 integer a(1:10)
 integer i, c
 i = 5
 c = 0
 a(i) = 0
 if (c > 0) then
  a(i - 2) = 0
 endif
end
",
        )
        .unwrap();
        let mut stats = OptimizeStats::default();
        let s = strengthen(&mut p.functions[0], ImplicationMode::All, &mut stats);
        assert_eq!(s, 0);
    }

    #[test]
    fn non_all_modes_are_noops() {
        let mut p = compile(
            "program fig1\n integer a(5:10)\n integer n\n n = 4\n a(2*n) = 0\n a(2*n - 1) = 1\nend\n",
        )
        .unwrap();
        let mut stats = OptimizeStats::default();
        assert_eq!(
            strengthen(&mut p.functions[0], ImplicationMode::None, &mut stats),
            0
        );
    }
}
