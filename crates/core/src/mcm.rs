//! The Markstein–Cocke–Markstein baseline (SIGPLAN '82), as characterized
//! in the paper's §5: "an algorithm that is like a restricted form of
//! preheader check insertion; the only checks that it considers for
//! preheader insertion are the checks present in articulation nodes in
//! the loop body (because these nodes post-dominate the loop entry nodes
//! and dominate the loop exit nodes) and which have simple range
//! expressions."
//!
//! The paper's own conclusion invites this comparison: "it would be
//! interesting to implement the Markstein et al. algorithm in Nascent to
//! compare its effectiveness with the loop-limit substitution algorithm".
//! This module provides that comparison (see the `extensions` binary):
//!
//! * candidates come only from *articulation* blocks — blocks that
//!   dominate the loop's latch **and** post-dominate the loop's body
//!   entry (i.e. execute exactly once per iteration), instead of the
//!   data-flow anticipatability used by `LI`/`LLS`;
//! * only *simple* range expressions are hoisted: `±v (+ constant)` for
//!   `v` the loop's basic induction variable or a loop invariant.

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_ir::{Check, CheckExpr, Function, Stmt};

use crate::justify::{Event, JustLog};
use crate::preheader::substitute_limit_for;

/// Runs the restricted (MCM) preheader insertion over all loops, inner to
/// outer. Returns the number of checks hoisted.
pub fn hoist_mcm(f: &mut Function) -> usize {
    let mut log = JustLog::new();
    hoist_mcm_logged(f, &mut log)
}

/// [`hoist_mcm`], recording [`Event::Hoisted`] per preheader insertion
/// and [`Event::HoistCovered`] per articulation-block check it deletes.
pub fn hoist_mcm_logged(f: &mut Function, log: &mut JustLog) -> usize {
    hoist_mcm_ctx(f, log, &mut PassContext::new())
}

/// [`hoist_mcm_logged`] over a shared [`PassContext`].
pub fn hoist_mcm_ctx(f: &mut Function, log: &mut JustLog, ctx: &mut PassContext) -> usize {
    ctx.ensure_preheaders(f);
    let dom = ctx.dominators(f);
    let pdom = ctx.post_dominators(f);
    let forest = ctx.loop_forest(f);
    let mut hoisted = 0;
    for l in forest.inner_to_outer() {
        let info = forest.loop_info(l).clone();
        let Some(preheader) = info.preheader else {
            continue;
        };
        let Some(body_entry) = info.body_entry else {
            continue;
        };
        let [latch] = info.latches[..] else { continue };
        let Some(iv) = info.iv.clone() else { continue };
        let Some(guard) = iv.entry_guard() else {
            continue;
        };
        let guards = match guard.constant_verdict() {
            Some(true) => vec![],
            Some(false) => continue,
            None => vec![guard],
        };
        // articulation blocks: execute exactly once per iteration
        let articulation: Vec<_> = info
            .blocks
            .iter()
            .copied()
            .filter(|&b| dom.dominates(b, latch) && pdom.postdominates(b, body_entry))
            .collect();
        let mut moved: Vec<(CheckExpr, CheckExpr)> = Vec::new(); // (original, hoisted)
        for &b in &articulation {
            for s in &f.block(b).stmts {
                let Stmt::Check(c) = s else { continue };
                if !c.is_unconditional() || !is_simple(&c.cond) {
                    continue;
                }
                let hoisted_expr = if info.is_invariant(c.cond.form()) {
                    Some(c.cond.clone())
                } else {
                    substitute_limit_for(&info, &c.cond)
                };
                if let Some(h) = hoisted_expr {
                    if !moved.iter().any(|(o, _)| o == &c.cond) {
                        moved.push((c.cond.clone(), h));
                    }
                }
            }
        }
        // insert in the preheader, delete the covered occurrences
        for (_, h) in &moved {
            log.push(Event::Hoisted {
                preheader,
                guards: guards.clone(),
                cond: h.clone(),
            });
            f.block_mut(preheader)
                .stmts
                .push(Stmt::Check(Check::conditional(guards.clone(), h.clone())));
            hoisted += 1;
        }
        for &b in &articulation {
            let stmts = std::mem::take(&mut f.block_mut(b).stmts);
            f.block_mut(b).stmts = stmts
                .into_iter()
                .filter(|s| {
                    let deleted = matches!(s, Stmt::Check(c)
                        if c.is_unconditional()
                            && moved.iter().any(|(o, _)| o == &c.cond));
                    if deleted {
                        let Stmt::Check(c) = s else { unreachable!() };
                        let (_, h) = moved
                            .iter()
                            .find(|(o, _)| o == &c.cond)
                            .expect("deleted check has a moved pair");
                        log.push(Event::HoistCovered {
                            block: b,
                            check: c.cond.clone(),
                            preheader,
                            by: h.clone(),
                        });
                    }
                    !deleted
                })
                .collect();
        }
    }
    if hoisted > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    hoisted
}

/// MCM's "simple range expressions": a single degree-1 variable with
/// coefficient ±1 (any constant folds into the range constant).
fn is_simple(c: &CheckExpr) -> bool {
    matches!(c.form().as_single_var(), Some((_, 1 | -1, _)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::eliminate;
    use crate::{ImplicationMode, OptimizeStats};
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};
    use nascent_ir::validate::assert_valid;

    fn mcm(src: &str) -> (nascent_ir::Program, usize) {
        let mut p = compile(src).unwrap();
        let mut stats = OptimizeStats::default();
        let mut h = 0;
        for i in 0..p.functions.len() {
            h += hoist_mcm(&mut p.functions[i]);
            eliminate(&mut p.functions[i], ImplicationMode::All, &mut stats);
        }
        assert_valid(&p);
        (p, h)
    }

    #[test]
    fn hoists_simple_checks_from_straightline_body() {
        let src =
            "program p\n integer a(1:50)\n integer i\n do i = 1, 50\n a(i) = i\n enddo\nend\n";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, h) = mcm(src);
        assert_eq!(h, 2);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert!(opt.dynamic_checks <= 2);
    }

    #[test]
    fn skips_checks_in_branches() {
        // the access is inside a branch: not an articulation node
        let src = "program p
 integer a(1:50)
 integer i
 do i = 1, 50
  if (mod(i, 2) == 0) then
   a(i) = i
  endif
 enddo
 print a(2)
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, h) = mcm(src);
        assert_eq!(h, 0);
        let opt = run(&p, &Limits::default()).unwrap();
        // the in-loop checks all remain (the elimination step may fold the
        // trailing constant-subscript access, nothing more)
        assert!(opt.dynamic_checks + 2 >= naive.dynamic_checks);
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn skips_complex_range_expressions_that_lls_handles() {
        // subscript 2*i is not "simple" for MCM but is linear for LLS
        let src = "program p
 integer a(1:100)
 integer i
 do i = 1, 50
  a(2 * i) = i
 enddo
end
";
        let (_, h) = mcm(src);
        assert_eq!(h, 0, "MCM must skip coefficient-2 subscripts");
        let mut p2 = compile(src).unwrap();
        let h2 = crate::preheader::hoist(
            &mut p2.functions[0],
            crate::preheader::HoistKind::InvariantAndLinear,
        );
        assert!(h2 >= 2, "LLS handles what MCM cannot");
    }

    #[test]
    fn mcm_preserves_trap_semantics() {
        let src = "program p\n integer a(1:10)\n integer i, s\n s = 0\n do i = 1, 12\n s = s + a(i)\n enddo\n print s\nend\n";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, _) = mcm(src);
        let opt = run(&p, &Limits::default()).unwrap();
        let nt = naive.trap.expect("naive traps");
        let ot = opt.trap.expect("optimized traps");
        assert!(ot.at_progress <= nt.at_progress);
    }
}
