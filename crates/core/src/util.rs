//! A small fixed-capacity bit set used as the data-flow fact over the
//! check universe.

/// Fixed-capacity bit set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over a universe of `len` elements.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.clear_tail();
        s
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Universe size.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts an element.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes an element.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share an element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of elements set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::empty(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::empty(70);
        let mut b = BitSet::empty(70);
        a.insert(3);
        a.insert(65);
        b.insert(65);
        b.insert(69);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn full_masks_tail() {
        let f = BitSet::full(65);
        assert_eq!(f.count(), 65);
        assert!(f.contains(64));
        assert!(!BitSet::empty(0).intersects(&BitSet::empty(0)));
    }
}
