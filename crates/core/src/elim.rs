//! Step 4: availability-based elimination of redundant checks.
//!
//! A check `C` is redundant when checks as strong as `C` are available at
//! the point where `C` occurs (paper §3, step 4). Conditional checks can
//! be eliminated too (dropping a check that is implied is safe whether or
//! not its guard would have fired), but they never make other checks
//! redundant.

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::dataflow::solve;
use nascent_ir::{Function, Stmt};

use crate::dataflow::{avail_step, Avail};
use crate::justify::{Event, JustLog};
use crate::universe::Universe;
use crate::{ImplicationMode, OptimizeStats};

/// Removes every check that is implied by available checks.
/// Returns the number of checks removed.
pub fn eliminate(f: &mut Function, mode: ImplicationMode, stats: &mut OptimizeStats) -> usize {
    let mut log = JustLog::new();
    eliminate_logged(f, mode, stats, &mut log)
}

/// [`eliminate`], recording one [`Event::Eliminated`] per removed check
/// that names an available check implying it.
pub fn eliminate_logged(
    f: &mut Function,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
) -> usize {
    eliminate_ctx(f, mode, stats, log, &mut PassContext::new())
}

/// [`eliminate_logged`] over a shared [`PassContext`].
pub fn eliminate_ctx(
    f: &mut Function,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> usize {
    let u = Universe::build_ctx(f, mode, ctx);
    stats.families += u.cig.family_count();
    stats.cig_edges += u.cig.edge_count();
    if u.is_empty() {
        return 0;
    }
    let sol = solve(f, &Avail::new(f, &u));
    stats.dataflow_iterations += sol.iterations;
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut fact = sol.entry[b.index()].clone();
        let block = f.block_mut(b);
        let mut kept = Vec::with_capacity(block.stmts.len());
        for s in std::mem::take(&mut block.stmts) {
            if let Stmt::Check(c) = &s {
                let id = u.id(&c.cond).expect("check in universe");
                if fact.intersects(&u.implied_by[id]) {
                    let because = fact
                        .iter()
                        .find(|&d| u.implied_by[id].contains(d))
                        .expect("intersecting witness");
                    log.push(Event::Eliminated {
                        block: b,
                        check: c.cond.clone(),
                        because: u.checks[because].clone(),
                    });
                    removed += 1;
                    continue; // redundant: drop, do not apply its gen
                }
            }
            avail_step(&u, &mut fact, &s);
            kept.push(s);
        }
        block.stmts = kept;
    }
    if removed > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_ir::validate::assert_valid;

    fn run_elim(src: &str, mode: ImplicationMode) -> (nascent_ir::Program, usize) {
        let mut p = compile(src).unwrap();
        let mut stats = OptimizeStats::default();
        let mut removed = 0;
        let n = p.functions.len();
        for i in 0..n {
            removed += eliminate(&mut p.functions[i], mode, &mut stats);
        }
        assert_valid(&p);
        (p, removed)
    }

    #[test]
    fn figure1_b_elimination() {
        // Figure 1(a) -> (b): C4 (2n <= 11) is implied by C2 (2n <= 10)
        let (p, removed) = run_elim(
            "program fig1\n integer a(5:10)\n integer n\n n = 4\n a(2*n) = 0\n a(2*n - 1) = 1\nend\n",
            ImplicationMode::All,
        );
        assert_eq!(removed, 1);
        assert_eq!(p.check_count(), 3);
    }

    #[test]
    fn no_implications_blocks_figure1() {
        let (_, removed) = run_elim(
            "program fig1\n integer a(5:10)\n integer n\n n = 4\n a(2*n) = 0\n a(2*n - 1) = 1\nend\n",
            ImplicationMode::None,
        );
        assert_eq!(removed, 0);
    }

    #[test]
    fn identical_checks_eliminate_under_any_mode() {
        let src = "program p\n integer a(1:10)\n integer i\n i = 2\n a(i) = 0\n a(i) = 1\nend\n";
        for mode in [
            ImplicationMode::All,
            ImplicationMode::CrossFamilyOnly,
            ImplicationMode::None,
        ] {
            let (_, removed) = run_elim(src, mode);
            assert_eq!(removed, 2, "mode {mode:?}");
        }
    }

    #[test]
    fn redefinition_blocks_elimination() {
        let (_, removed) = run_elim(
            "program p\n integer a(1:10)\n integer i\n i = 2\n a(i) = 0\n i = 3\n a(i) = 1\nend\n",
            ImplicationMode::All,
        );
        assert_eq!(removed, 0);
    }

    #[test]
    fn merge_requires_both_paths() {
        // check only on one branch: not available at the join
        let (_, removed) = run_elim(
            "program p
 integer a(1:10)
 integer i, c
 i = 2
 c = 0
 if (c > 0) then
  a(i) = 0
 else
  c = 1
 endif
 a(i) = 1
end
",
            ImplicationMode::All,
        );
        assert_eq!(removed, 0);
    }

    #[test]
    fn merge_with_both_paths_checked_eliminates() {
        let (p, removed) = run_elim(
            "program p
 integer a(1:10)
 integer i, c
 i = 2
 c = 0
 if (c > 0) then
  a(i) = 0
 else
  a(i) = 5
 endif
 a(i) = 1
end
",
            ImplicationMode::All,
        );
        assert_eq!(removed, 2); // the pair after the join
        assert_eq!(p.check_count(), 4);
    }

    #[test]
    fn stronger_check_covers_weaker_across_subscripts() {
        // a(i+1) checked first: i <= 9 and -i <= 0; then a(i): i <= 10 and
        // -i <= -1. Upper of a(i) is implied; lower is NOT (-i <= -1 is
        // stronger than -i <= 0).
        let (_, removed) = run_elim(
            "program p\n integer a(1:10)\n integer i\n i = 3\n a(i+1) = 0\n a(i) = 1\nend\n",
            ImplicationMode::All,
        );
        assert_eq!(removed, 1);
    }

    #[test]
    fn loop_invariant_check_redundant_on_second_iteration_is_kept() {
        // availability merge at the header kills the check (not available
        // on the entry path before first execution): NI alone cannot hoist
        let (p, removed) = run_elim(
            "program p\n integer a(1:10)\n integer k, i\n k = 5\n do i = 1, 10\n a(k) = i\n enddo\nend\n",
            ImplicationMode::All,
        );
        // back-edge makes the check available at the header from the latch
        // side, but not from the preheader side: intersection empty
        assert_eq!(removed, 0);
        assert_eq!(p.check_count(), 2);
    }
}
