//! Human-readable optimization reports.
//!
//! The paper's step 5 requires compile-time-false checks to be "reported
//! to the programmer"; this module generalizes that into a diff-style
//! report of what the optimizer did to a function's checks: per family,
//! how many occurrences existed before and remain after, which
//! conditional checks now guard loops, and which checks were proven
//! violated.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use nascent_ir::{Function, LinForm, Program, Stmt};

/// Check census of one function: occurrences per family with the
/// strongest and weakest bound seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// `family form -> (occurrences, strongest bound, weakest bound)`.
    pub families: BTreeMap<LinForm, (usize, i64, i64)>,
    /// Number of conditional (`Cond-check`) statements.
    pub conditional: usize,
    /// Number of `TRAP` statements (provably violated checks).
    pub traps: usize,
}

/// Takes the check census of a function.
pub fn census(f: &Function) -> Census {
    let mut out = Census::default();
    for b in &f.blocks {
        for s in &b.stmts {
            match s {
                Stmt::Check(c) => {
                    if !c.is_unconditional() {
                        out.conditional += 1;
                    }
                    let key = c.cond.family_key().clone();
                    let e = out
                        .families
                        .entry(key)
                        .or_insert((0, c.cond.bound(), c.cond.bound()));
                    e.0 += 1;
                    e.1 = e.1.min(c.cond.bound());
                    e.2 = e.2.max(c.cond.bound());
                }
                Stmt::Trap { .. } => out.traps += 1,
                _ => {}
            }
        }
    }
    out
}

/// Renders a before/after report for a whole program. `before` and
/// `after` must be the same program pre- and post-optimization.
pub fn report(before: &Program, after: &Program) -> String {
    let mut out = String::new();
    for (fb, fa) in before.functions.iter().zip(&after.functions) {
        let cb = census(fb);
        let ca = census(fa);
        let total_before: usize = cb.families.values().map(|v| v.0).sum();
        let total_after: usize = ca.families.values().map(|v| v.0).sum();
        let _ = writeln!(
            out,
            "function {}: {} static checks -> {} ({} conditional, {} proven violations)",
            fb.name, total_before, total_after, ca.conditional, ca.traps
        );
        // families fully discharged
        let mut gone = 0;
        for (form, (n, ..)) in &cb.families {
            if !ca.families.contains_key(form) {
                gone += 1;
                if gone <= 8 {
                    let name = nascent_ir::pretty::linform_to_string(fb, form);
                    let _ = writeln!(out, "  discharged: {n} check(s) on `{name}`");
                }
            }
        }
        if gone > 8 {
            let _ = writeln!(out, "  ... and {} more discharged families", gone - 8);
        }
        // families still present
        for (form, (n, lo, hi)) in &ca.families {
            let before_n = cb.families.get(form).map_or(0, |v| v.0);
            let range = if lo == hi {
                format!("<= {lo}")
            } else {
                format!("<= {lo}..{hi}")
            };
            let name = nascent_ir::pretty::linform_to_string(fa, form);
            let _ = writeln!(out, "  remaining: `{name} {range}` x{n} (was x{before_n})");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_program, OptimizeOptions, Scheme};
    use nascent_frontend::compile;

    #[test]
    fn census_counts_families_and_bounds() {
        let p = compile(
            "program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\n a(i+3) = 0\nend\n",
        )
        .unwrap();
        let c = census(&p.functions[0]);
        // two families: {i} and {-i}; uppers have bounds 10 and 7
        assert_eq!(c.families.len(), 2);
        let upper = c
            .families
            .iter()
            .find(|(form, _)| form.coeff_of_var(nascent_ir::VarId(0)) == 1)
            .unwrap();
        assert_eq!(upper.1 .0, 2); // two occurrences
        assert_eq!(upper.1 .1, 7); // strongest
        assert_eq!(upper.1 .2, 10); // weakest
        assert_eq!(c.conditional, 0);
        assert_eq!(c.traps, 0);
    }

    #[test]
    fn report_shows_discharged_and_remaining() {
        let src = "program p
 integer a(1:100)
 integer i
 do i = 1, 50
  a(i) = i
 enddo
end
";
        let before = compile(src).unwrap();
        let mut after = compile(src).unwrap();
        optimize_program(&mut after, &OptimizeOptions::scheme(Scheme::Lls));
        let r = report(&before, &after);
        assert!(r.contains("function p"), "{r}");
        assert!(r.contains("conditional"), "{r}");
        assert!(r.contains("static checks"), "{r}");
    }

    #[test]
    fn report_flags_proven_violations() {
        let src = "program p\n integer a(1:5)\n a(9) = 1\nend\n";
        let before = compile(src).unwrap();
        let mut after = compile(src).unwrap();
        optimize_program(&mut after, &OptimizeOptions::scheme(Scheme::Ni));
        let r = report(&before, &after);
        assert!(r.contains("1 proven violations"), "{r}");
    }
}
