//! PRE-based check placement: safe-earliest (`SE`) and latest (`LNI`)
//! transformations of Knoop, Rüthing and Steffen, adapted to the check
//! domain (§2.1, §3.3).
//!
//! The safe-earliest strategy places checks as early as safety allows,
//! which the paper prefers for checks: a check defines no value, so early
//! placement costs no register pressure and makes the check available at
//! more points (turning more other checks redundant). The latest strategy
//! places checks as late as possible; the paper's `LNI` is
//! latest-not-isolated — isolation does not change dynamic check counts
//! (an isolated insertion replaces exactly the single check it covers), so
//! the latest placement is used here and the (tiny) difference is noted in
//! `DESIGN.md`.
//!
//! Insertion uses the edge predicates of the Drechsler–Stadel formulation:
//!
//! ```text
//! EARLIEST(i→j) = ANTICin(j) ∧ ¬AVAILout(i) ∧ (¬TRANSP(i) ∨ ¬ANTICin(i))
//! LATER(i→j)    = EARLIEST(i→j) ∨ (LATERIN(i) ∧ ¬ANTLOC(i))
//! LATERIN(j)    = ⋀_{i∈pred(j)} LATER(i→j)
//! INSERT(i→j)   = LATER(i→j) ∧ ¬LATERIN(j)       (latest)
//! ```
//!
//! After insertion, the regular availability-based elimination (step 4)
//! removes the original occurrences that became redundant — and, through
//! the CIG, any additionally implied checks.
//!
//! The paper's Figure 5 profitability caveat is reproduced faithfully:
//! safe-earliest insertion may increase the checks executed on paths that
//! previously performed a weaker check (see `tests::figure5`).

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::dataflow::solve;
use nascent_ir::{BlockId, Check, CheckExpr, Function, Stmt, Terminator};

use crate::dataflow::{Antic, Avail, LocalPredicates};
use crate::justify::{Event, JustLog};
use crate::universe::Universe;
use crate::util::BitSet;
use crate::{ImplicationMode, OptimizeStats};

/// Which placement to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Insert at the earliest safe points (`SE`).
    SafeEarliest,
    /// Insert at the latest points that are still as good (`LNI`).
    Latest,
}

/// Inserts checks per the placement strategy; returns the number of
/// checks inserted. Original occurrences are left for the elimination
/// step to remove.
pub fn insert(
    f: &mut Function,
    placement: Placement,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
) -> usize {
    let mut log = JustLog::new();
    insert_logged(f, placement, mode, stats, &mut log)
}

/// [`insert`], recording one [`Event::Inserted`] per placed check, naming
/// the block that actually received it (a fresh edge block when the edge
/// had to be split).
pub fn insert_logged(
    f: &mut Function,
    placement: Placement,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
) -> usize {
    insert_ctx(f, placement, mode, stats, log, &mut PassContext::new())
}

/// [`insert_logged`] over a shared [`PassContext`].
pub fn insert_ctx(
    f: &mut Function,
    placement: Placement,
    mode: ImplicationMode,
    stats: &mut OptimizeStats,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> usize {
    let u = Universe::build_ctx(f, mode, ctx);
    if u.is_empty() {
        return 0;
    }
    let antic_p = Antic::new(f, &u);
    let avail_p = Avail::new(f, &u);
    let antic = solve(f, &antic_p);
    let avail = solve(f, &avail_p);
    stats.dataflow_iterations += antic.iterations + avail.iterations;
    // the local predicates fall out of the same block summaries
    let lp = LocalPredicates::from_summaries(antic_p.summaries(), avail_p.summaries(), u.len());
    let n = u.len();

    // edge list
    let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
    for b in f.block_ids() {
        for s in f.successors(b) {
            edges.push((b, s));
        }
    }

    let earliest = |i: BlockId, j: BlockId| -> BitSet {
        let mut e = antic.entry[j.index()].clone();
        let mut not_avail = BitSet::full(n);
        not_avail.subtract(&avail.exit[i.index()]);
        e.intersect_with(&not_avail);
        // ¬TRANSP(i) ∨ ¬ANTICin(i)
        let mut guard = BitSet::full(n);
        let mut t_and_a = lp.transp[i.index()].clone();
        t_and_a.intersect_with(&antic.entry[i.index()]);
        guard.subtract(&t_and_a);
        e.intersect_with(&guard);
        e
    };

    // entry pseudo-edge: checks anticipatable at function entry
    let entry_insert: BitSet = antic.entry[f.entry.index()].clone();

    let mut insertions: Vec<(InsertPoint, BitSet)> = Vec::new();
    match placement {
        Placement::SafeEarliest => {
            if !entry_insert.is_empty() {
                insertions.push((InsertPoint::BlockStart(f.entry), entry_insert));
            }
            // mid-block earliest points: a check killed inside block b but
            // anticipated by ALL of b's successors places at b's end
            // (edge-granular EARLIEST cannot express this; it is what
            // hoists the paper's Figure 5 check above the branch)
            let mut antic_out: Vec<BitSet> = vec![BitSet::empty(n); f.blocks.len()];
            for b in f.block_ids() {
                let mut acc: Option<BitSet> = None;
                for s in f.successors(b) {
                    let e = antic.entry[s.index()].clone();
                    acc = Some(match acc {
                        None => e,
                        Some(mut a) => {
                            a.intersect_with(&e);
                            a
                        }
                    });
                }
                antic_out[b.index()] = acc.unwrap_or_else(|| BitSet::empty(n));
            }
            for b in f.block_ids() {
                let mut at_end = antic_out[b.index()].clone();
                let mut not_avail = BitSet::full(n);
                not_avail.subtract(&avail.exit[b.index()]);
                at_end.intersect_with(&not_avail);
                let mut not_transp = BitSet::full(n);
                not_transp.subtract(&lp.transp[b.index()]);
                at_end.intersect_with(&not_transp);
                if !at_end.is_empty() {
                    insertions.push((InsertPoint::BlockEnd(b), at_end));
                }
            }
            for &(i, j) in &edges {
                // only where end-of-i insertion was impossible (some other
                // successor of i does not anticipate the check)
                let mut e = earliest(i, j);
                e.subtract(&antic_out[i.index()]);
                if !e.is_empty() {
                    insertions.push((InsertPoint::Edge(i, j), e));
                }
            }
        }
        Placement::Latest => {
            // LATERIN via fixpoint over edges
            let nb = f.blocks.len();
            let mut laterin: Vec<BitSet> = vec![BitSet::full(n); nb];
            laterin[f.entry.index()] = entry_insert.clone();
            let preds = f.predecessors();
            let mut changed = true;
            while changed {
                changed = false;
                for b in f.block_ids() {
                    if b == f.entry {
                        continue;
                    }
                    let mut acc: Option<BitSet> = None;
                    for &p in &preds[b.index()] {
                        let mut later = earliest(p, b);
                        let mut thr = laterin[p.index()].clone();
                        thr.subtract(&lp.antloc[p.index()]);
                        later.union_with(&thr);
                        acc = Some(match acc {
                            None => later,
                            Some(mut a) => {
                                a.intersect_with(&later);
                                a
                            }
                        });
                    }
                    let new = acc.unwrap_or_else(|| BitSet::empty(n));
                    if new != laterin[b.index()] {
                        laterin[b.index()] = new;
                        changed = true;
                    }
                }
            }
            // INSERT(i→j) = LATER(i→j) ∧ ¬LATERIN(j)
            for &(i, j) in &edges {
                let mut later = earliest(i, j);
                let mut thr = laterin[i.index()].clone();
                thr.subtract(&lp.antloc[i.index()]);
                later.union_with(&thr);
                later.subtract(&laterin[j.index()]);
                // insert only what is actually anticipated at j
                later.intersect_with(&antic.entry[j.index()]);
                if !later.is_empty() {
                    insertions.push((InsertPoint::Edge(i, j), later));
                }
            }
            // entry block: LATERIN(entry) ∧ ANTLOC(entry)-style insertion
            let mut at_entry = laterin[f.entry.index()].clone();
            at_entry.intersect_with(&lp.antloc[f.entry.index()]);
            if !at_entry.is_empty() {
                insertions.push((InsertPoint::BlockStart(f.entry), at_entry));
            }
        }
    }

    let (inserted, split_edges) = apply_insertions(f, &u, insertions, log);
    if split_edges {
        ctx.invalidate(Invalidation::Cfg);
    } else if inserted > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    inserted
}

enum InsertPoint {
    /// Prepend to a block.
    BlockStart(BlockId),
    /// Append to a block (before the terminator).
    BlockEnd(BlockId),
    /// On a CFG edge (placed in the source block, the target block, or a
    /// freshly split edge block, whichever preserves paths).
    Edge(BlockId, BlockId),
}

/// Returns `(checks inserted, whether any edge block was split)`.
fn apply_insertions(
    f: &mut Function,
    u: &Universe,
    insertions: Vec<(InsertPoint, BitSet)>,
    log: &mut JustLog,
) -> (usize, bool) {
    let preds = f.predecessors();
    let mut inserted = 0;
    let mut split_edges = false;
    for (point, set) in insertions {
        let mut checks: Vec<CheckExpr> = set.iter().map(|i| u.checks[i].clone()).collect();
        // strongest first so elimination keeps only the strongest
        checks.sort_by_key(|c| (c.family_key().clone(), c.bound()));
        inserted += checks.len();
        match point {
            InsertPoint::BlockStart(b) => {
                let block = f.block_mut(b);
                for (k, c) in checks.into_iter().enumerate() {
                    log.push(Event::Inserted {
                        block: b,
                        check: c.clone(),
                    });
                    block.stmts.insert(k, Stmt::Check(Check::unconditional(c)));
                }
            }
            InsertPoint::BlockEnd(b) => {
                let block = f.block_mut(b);
                for c in checks {
                    log.push(Event::Inserted {
                        block: b,
                        check: c.clone(),
                    });
                    block.stmts.push(Stmt::Check(Check::unconditional(c)));
                }
            }
            InsertPoint::Edge(i, j) => {
                let target = if f.successors(i).len() == 1 {
                    // append at the end of i
                    let block = f.block_mut(i);
                    for c in checks {
                        log.push(Event::Inserted {
                            block: i,
                            check: c.clone(),
                        });
                        block.stmts.push(Stmt::Check(Check::unconditional(c)));
                    }
                    continue;
                } else if preds[j.index()].len() == 1 {
                    j
                } else {
                    split_edges = true;
                    f.split_edge(i, j)
                };
                let block = f.block_mut(target);
                for (k, c) in checks.into_iter().enumerate() {
                    log.push(Event::Inserted {
                        block: target,
                        check: c.clone(),
                    });
                    block.stmts.insert(k, Stmt::Check(Check::unconditional(c)));
                }
            }
        }
    }
    // blocks created by split_edge keep the CFG valid
    debug_assert!(f
        .blocks
        .iter()
        .all(|b| !matches!(b.term, Terminator::Jump(t) if t.index() >= f.blocks.len())));
    (inserted, split_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::eliminate;
    use crate::OptimizeStats;
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};
    use nascent_ir::validate::assert_valid;

    fn se_then_elim(src: &str) -> (nascent_ir::Program, usize, usize) {
        let mut p = compile(src).unwrap();
        let mut stats = OptimizeStats::default();
        let mut ins = 0;
        let mut rem = 0;
        for i in 0..p.functions.len() {
            ins += insert(
                &mut p.functions[i],
                Placement::SafeEarliest,
                ImplicationMode::All,
                &mut stats,
            );
            rem += eliminate(&mut p.functions[i], ImplicationMode::All, &mut stats);
        }
        assert_valid(&p);
        (p, ins, rem)
    }

    /// The paper's Figure 5: checks (i <= 10) and (i <= 6) on the two
    /// branches. Safe-earliest hoists (i <= 10) above the branch; the
    /// else path then executes two checks instead of one.
    #[test]
    fn figure5_earliest_is_not_always_profitable() {
        let src = "program fig5
 integer a(1:10)
 integer i, c
 c = 0
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  a(i + 4) = 1
 endif
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, ins, _rem) = se_then_elim(src);
        let opt = run(&p, &Limits::default()).unwrap();
        assert!(ins > 0, "SE inserted hoisted checks");
        // the else path was taken: the naive program performed 2 checks;
        // the optimized one performs the hoisted ones plus the stronger
        // else-check — reproducing the paper's profitability caveat
        // (dynamic checks do NOT decrease on this path).
        assert!(opt.dynamic_checks >= naive.dynamic_checks);
        assert_eq!(opt.output, naive.output);
        assert_eq!(opt.trap.is_some(), naive.trap.is_some());
    }

    #[test]
    fn se_hoists_partially_redundant_check() {
        // a(i) checked in the then-branch and again after the join:
        // SE makes the join check fully redundant by inserting on the
        // else path.
        let src = "program p
 integer a(1:10)
 integer i, c
 c = 1
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  c = 2
 endif
 a(i) = 3
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, ins, rem) = se_then_elim(src);
        assert!(ins >= 2);
        assert!(rem >= 2);
        let opt = run(&p, &Limits::default()).unwrap();
        // then-path now: branch checks once (hoisted or in-place), join
        // checks eliminated
        assert!(opt.dynamic_checks <= naive.dynamic_checks);
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn latest_placement_also_covers_joins() {
        let src = "program p
 integer a(1:10)
 integer i, c
 c = 1
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  c = 2
 endif
 a(i) = 3
end
";
        let mut p = compile(src).unwrap();
        let mut stats = OptimizeStats::default();
        let ins = insert(
            &mut p.functions[0],
            Placement::Latest,
            ImplicationMode::All,
            &mut stats,
        );
        let rem = eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
        assert_valid(&p);
        let opt = run(&p, &Limits::default()).unwrap();
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert!(ins >= 1);
        assert!(rem >= 1);
        assert!(opt.dynamic_checks <= naive.dynamic_checks);
    }

    #[test]
    fn straightline_program_gains_nothing() {
        let src = "program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\nend\n";
        let (p, _ins, rem) = se_then_elim(src);
        // nothing partially redundant: the two checks stay
        assert_eq!(rem + p.check_count(), 2 + _ins);
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.dynamic_checks, naive.dynamic_checks);
    }

    #[test]
    fn se_preserves_trap_semantics_not_later() {
        let src = "program p
 integer a(1:5)
 integer i, c
 c = 1
 i = 9
 if (c > 0) then
  a(i) = 1
 else
  a(i) = 2
 endif
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, _, _) = se_then_elim(src);
        let opt = run(&p, &Limits::default()).unwrap();
        let nt = naive.trap.expect("naive traps");
        let ot = opt.trap.expect("optimized traps");
        assert!(ot.at_progress <= nt.at_progress, "trap not later");
    }
}
