//! The range-check optimizer of Kolte & Wolfe, *Elimination of Redundant
//! Array Subscript Range Checks* (PLDI 1995).
//!
//! The optimizer takes a program whose array accesses carry naive
//! canonical range checks and reduces the number of checks executed at run
//! time without compromising safety, in the paper's five steps:
//!
//! 1. build the **check implication graph** ([`cig`]) over check
//!    *families* (checks sharing a range expression),
//! 2. compute **anticipatable** checks (backward data flow, [`dataflow`]),
//! 3. **insert** checks at safe and profitable points under one of seven
//!    placement schemes ([`Scheme`]),
//! 4. compute **available** checks (forward data flow) and **eliminate**
//!    redundant ones ([`elim`]),
//! 5. evaluate **compile-time** checks ([`fold`]), reporting provably
//!    violated ones as `TRAP`s.
//!
//! Checks can be built from program expressions (`PRX`) or re-expressed
//! through induction expressions (`INX`, [`inx`]), and implications can be
//! restricted for the paper's Table 3 ablation ([`ImplicationMode`]).
//!
//! # Example
//!
//! ```
//! use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};
//!
//! let mut prog = nascent_frontend::compile(
//!     "program p\n integer a(1:100)\n integer i\n do i = 1, 50\n a(i) = i\n enddo\nend\n",
//! ).unwrap();
//! let before = prog.check_count();
//! let stats = optimize_program(&mut prog, &OptimizeOptions::scheme(Scheme::Lls));
//! // loop-limit substitution hoists both checks out of the loop
//! assert!(prog.check_count() < before);
//! assert_eq!(stats.hoisted, 2);
//! ```

pub mod cig;
pub mod dataflow;
pub mod discharge;
pub mod elim;
pub mod fold;
pub mod inx;
pub mod justify;
pub mod lcm;
pub mod mcm;
pub mod preheader;
pub mod report;
pub mod strength;
pub mod universe;
pub mod util;

use nascent_ir::{Function, Program};

pub use cig::{Cig, FamilyId};
pub use justify::{DischargeReason, Event, JustLog};
pub use nascent_analysis::context::{Invalidation, PassContext, Timings};
pub use universe::Universe;

/// Check placement scheme (§3.3 and Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Redundancy elimination without any insertion of checks.
    Ni,
    /// Check strengthening (Gupta).
    Cs,
    /// Latest-not-isolated placement (lazy code motion).
    Lni,
    /// Safe-earliest placement.
    Se,
    /// Preheader insertion of loop-invariant checks only.
    Li,
    /// Preheader insertion with loop-limit substitution of linear checks.
    Lls,
    /// Loop-limit substitution followed by safe-earliest placement.
    All,
    /// Markstein–Cocke–Markstein (SIGPLAN '82): restricted preheader
    /// insertion from articulation nodes with simple range expressions —
    /// the baseline the paper's §5 proposes comparing against (not one of
    /// Table 2's seven schemes).
    Mcm,
}

impl Scheme {
    /// All seven schemes in the paper's table order.
    pub const EACH: [Scheme; 7] = [
        Scheme::Ni,
        Scheme::Cs,
        Scheme::Lni,
        Scheme::Se,
        Scheme::Li,
        Scheme::Lls,
        Scheme::All,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Ni => "NI",
            Scheme::Cs => "CS",
            Scheme::Lni => "LNI",
            Scheme::Se => "SE",
            Scheme::Li => "LI",
            Scheme::Lls => "LLS",
            Scheme::All => "ALL",
            Scheme::Mcm => "MCM",
        }
    }
}

/// How checks are constructed (§2.3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckKind {
    /// From program expressions, as the frontend emitted them.
    #[default]
    Prx,
    /// Re-expressed through induction/defining expressions first.
    Inx,
}

/// Which implications between checks are used (§4.4, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImplicationMode {
    /// All implications, within and across families.
    #[default]
    All,
    /// Only implications between different families (the paper's `LLS'`),
    /// which keeps preheader-to-body implications alive.
    CrossFamilyOnly,
    /// No implications at all (the paper's `NI'`, `SE'`): a check is
    /// redundant only if an *identical* check is available.
    None,
}

/// Whether the static-discharge pre-pass runs before placement
/// (`--discharge {on,off}`). Off by default: the paper's tables measure
/// the placement schemes alone; the discharge tier is this codebase's
/// extension on top of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Discharge {
    /// Delete checks the value-range analysis proves safe, before any
    /// scheme runs. Every deletion is logged and independently
    /// re-proved by the certifier.
    On,
    /// Leave all checks to the placement schemes.
    #[default]
    Off,
}

/// Options controlling one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Placement scheme.
    pub scheme: Scheme,
    /// PRX or INX checks.
    pub kind: CheckKind,
    /// Implication ablation.
    pub implications: ImplicationMode,
    /// Static-discharge tier.
    pub discharge: Discharge,
}

impl OptimizeOptions {
    /// Options for a scheme with PRX checks and all implications.
    pub fn scheme(scheme: Scheme) -> OptimizeOptions {
        OptimizeOptions {
            scheme,
            kind: CheckKind::default(),
            implications: ImplicationMode::default(),
            discharge: Discharge::default(),
        }
    }

    /// Same options with a different check kind.
    pub fn with_kind(mut self, kind: CheckKind) -> OptimizeOptions {
        self.kind = kind;
        self
    }

    /// Same options with a different implication mode.
    pub fn with_implications(mut self, implications: ImplicationMode) -> OptimizeOptions {
        self.implications = implications;
        self
    }

    /// Same options with a different discharge tier.
    pub fn with_discharge(mut self, discharge: Discharge) -> OptimizeOptions {
        self.discharge = discharge;
        self
    }
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions::scheme(Scheme::Lls)
    }
}

/// Statistics accumulated over one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Static checks before optimization.
    pub static_before: usize,
    /// Static checks after optimization (conditional checks included).
    pub static_after: usize,
    /// Checks inserted by PRE placement (SE/LNI), total.
    pub inserted: usize,
    /// Checks hoisted into preheaders (LI/LLS/ALL), total.
    pub hoisted: usize,
    /// Checks whose bound was strengthened in place (CS).
    pub strengthened: usize,
    /// Checks removed by availability-based elimination.
    pub eliminated_static: usize,
    /// Checks deleted by the static-discharge pre-pass.
    pub discharged: usize,
    /// Checks folded away as compile-time true.
    pub folded_true: usize,
    /// Checks proven false at compile time (replaced by `TRAP`).
    pub folded_false: usize,
    /// Check families across all functions.
    pub families: usize,
    /// Cross-family implication edges discovered.
    pub cig_edges: usize,
    /// Data-flow worklist iterations consumed.
    pub dataflow_iterations: u64,
}

impl OptimizeStats {
    fn absorb(&mut self, other: OptimizeStats) {
        self.static_before += other.static_before;
        self.static_after += other.static_after;
        self.inserted += other.inserted;
        self.hoisted += other.hoisted;
        self.strengthened += other.strengthened;
        self.eliminated_static += other.eliminated_static;
        self.discharged += other.discharged;
        self.folded_true += other.folded_true;
        self.folded_false += other.folded_false;
        self.families += other.families;
        self.cig_edges += other.cig_edges;
        self.dataflow_iterations += other.dataflow_iterations;
    }
}

/// Optimizes every function of a program in place.
pub fn optimize_program(prog: &mut Program, opts: &OptimizeOptions) -> OptimizeStats {
    let mut stats = OptimizeStats::default();
    for f in &mut prog.functions {
        stats.absorb(optimize_function(f, opts));
    }
    stats
}

/// [`optimize_program`], additionally returning merged per-analysis and
/// per-pass wall-time counters across all functions.
pub fn optimize_program_timed(
    prog: &mut Program,
    opts: &OptimizeOptions,
) -> (OptimizeStats, Timings) {
    let mut stats = OptimizeStats::default();
    let mut timings = Timings::new();
    for f in &mut prog.functions {
        let mut log = JustLog::new();
        let mut ctx = PassContext::new();
        stats.absorb(optimize_function_with(f, opts, &mut log, &mut ctx));
        timings.merge(&ctx.timings);
    }
    (stats, timings)
}

/// Optimizes one function in place.
pub fn optimize_function(f: &mut Function, opts: &OptimizeOptions) -> OptimizeStats {
    let mut log = JustLog::new();
    optimize_function_logged(f, opts, &mut log)
}

/// Optimizes every function in place, returning one justification log per
/// function (in `prog.functions` order) for translation validation.
pub fn optimize_program_logged(
    prog: &mut Program,
    opts: &OptimizeOptions,
) -> (OptimizeStats, Vec<JustLog>) {
    let (stats, logs, _) = optimize_program_logged_timed(prog, opts);
    (stats, logs)
}

/// [`optimize_program_logged`], additionally returning merged wall-time
/// counters across all functions.
pub fn optimize_program_logged_timed(
    prog: &mut Program,
    opts: &OptimizeOptions,
) -> (OptimizeStats, Vec<JustLog>, Timings) {
    let mut stats = OptimizeStats::default();
    let mut logs = Vec::with_capacity(prog.functions.len());
    let mut timings = Timings::new();
    for f in &mut prog.functions {
        let mut log = JustLog::new();
        let mut ctx = PassContext::new();
        stats.absorb(optimize_function_with(f, opts, &mut log, &mut ctx));
        timings.merge(&ctx.timings);
        logs.push(log);
    }
    (stats, logs, timings)
}

/// Optimizes one function in place, recording every decision in `log`.
pub fn optimize_function_logged(
    f: &mut Function,
    opts: &OptimizeOptions,
    log: &mut JustLog,
) -> OptimizeStats {
    optimize_function_with(f, opts, log, &mut PassContext::new())
}

/// Optimizes one function in place over a caller-provided [`PassContext`]:
/// every pass draws its analyses from the shared cache, declares its
/// invalidations, and has its wall time recorded under a stable pass name.
pub fn optimize_function_with(
    f: &mut Function,
    opts: &OptimizeOptions,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> OptimizeStats {
    let mut sp = nascent_obs::trace::span("optimize-function", "optimize");
    sp.attr("fn", f.name.as_str());
    sp.attr("scheme", opts.scheme.name());
    let mut stats = OptimizeStats {
        static_before: f.check_count(),
        ..OptimizeStats::default()
    };

    // INX mode: re-express checks through defining expressions first.
    // This is shared normalization, not an optimization decision: the
    // verifier applies the same rewrite to its reference program, so no
    // event is logged for it (DESIGN.md §7).
    if opts.kind == CheckKind::Inx {
        ctx.time_pass("inx-rewrite", |ctx| inx::rewrite_checks_ctx(f, ctx));
    }

    // static discharge tier: delete checks the value-range analysis
    // proves safe before any scheme sees them (runs after the INX
    // rewrite, so the certifier's reference — naive + same rewrite —
    // contains exactly the checks the events name)
    if opts.discharge == Discharge::On {
        stats.discharged = ctx.time_pass("discharge", |ctx| {
            discharge::discharge_checks_ctx(f, log, ctx)
        });
        if stats.discharged > 0 {
            ctx.invalidate(Invalidation::Statements);
        }
    }

    // step 3: insertion under the selected scheme
    match opts.scheme {
        Scheme::Ni => {}
        Scheme::Cs => {
            stats.strengthened = ctx.time_pass("strengthen", |ctx| {
                strength::strengthen_ctx(f, opts.implications, &mut stats, log, ctx)
            });
        }
        Scheme::Se => {
            stats.inserted = ctx.time_pass("pre-insert", |ctx| {
                lcm::insert_ctx(
                    f,
                    lcm::Placement::SafeEarliest,
                    opts.implications,
                    &mut stats,
                    log,
                    ctx,
                )
            });
        }
        Scheme::Lni => {
            stats.inserted = ctx.time_pass("pre-insert", |ctx| {
                lcm::insert_ctx(
                    f,
                    lcm::Placement::Latest,
                    opts.implications,
                    &mut stats,
                    log,
                    ctx,
                )
            });
        }
        Scheme::Li => {
            stats.hoisted = ctx.time_pass("preheader-hoist", |ctx| {
                preheader::hoist_ctx(f, preheader::HoistKind::InvariantOnly, log, ctx)
            });
        }
        Scheme::Lls => {
            stats.hoisted = ctx.time_pass("preheader-hoist", |ctx| {
                preheader::hoist_ctx(f, preheader::HoistKind::InvariantAndLinear, log, ctx)
            });
        }
        Scheme::All => {
            stats.hoisted = ctx.time_pass("preheader-hoist", |ctx| {
                preheader::hoist_ctx(f, preheader::HoistKind::InvariantAndLinear, log, ctx)
            });
            stats.inserted = ctx.time_pass("pre-insert", |ctx| {
                lcm::insert_ctx(
                    f,
                    lcm::Placement::SafeEarliest,
                    opts.implications,
                    &mut stats,
                    log,
                    ctx,
                )
            });
        }
        Scheme::Mcm => {
            stats.hoisted = ctx.time_pass("mcm-hoist", |ctx| mcm::hoist_mcm_ctx(f, log, ctx));
        }
    }

    // steps 1/2/4: availability-based elimination with the CIG
    let eliminated = ctx.time_pass("elim", |ctx| {
        elim::eliminate_ctx(f, opts.implications, &mut stats, log, ctx)
    });
    stats.eliminated_static += eliminated;

    // step 5: compile-time checks
    let (t, fa) = ctx.time_pass("fold", |_| fold::fold_constant_checks_logged(f, log));
    if t + fa > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    stats.folded_true = t;
    stats.folded_false = fa;

    stats.static_after = f.check_count();
    stats
}
