//! Static discharge: delete checks the value-range analysis proves safe.
//!
//! The paper's placement schemes decide *where* checks run; this pre-pass
//! decides which checks need to exist at all. It runs once per function,
//! after the (optional) induction-expression rewrite and before any
//! scheme, so every downstream dataflow system sees a smaller check
//! universe. A check `form <= bound` is deleted when the optimizer-side
//! value-range analysis ([`nascent_analysis::vra`]) proves it always true
//! at its site — from constants, branch conditions, loop trip counts, or
//! per-array range summaries (the subscripted-subscript case).
//!
//! Every deletion is recorded as an [`Event::Discharged`] justification.
//! The certifier re-proves each one with its *own independent*
//! value-range analysis during `--certify`, so an unsound or tampered
//! discharge is rejected by name — the pass is translation-validated,
//! not trusted.
//!
//! Only *unconditional* checks are discharged: a guarded `Cond-check`'s
//! condition holds under its guards, which the per-point environment does
//! not assume. Deleting a true check cannot change concrete behavior
//! (it traps exactly never), so the analysis environments computed on the
//! pre-deletion function remain sound while the pass walks it.

use nascent_analysis::context::PassContext;
use nascent_ir::{Function, Stmt};

use crate::justify::{DischargeReason, Event, JustLog};

/// Deletes every unconditional check the value-range analysis proves
/// always true, logging one [`Event::Discharged`] per deletion. Returns
/// the number of checks deleted. The caller invalidates the statement
/// tier when the count is non-zero.
pub fn discharge_checks_ctx(f: &mut Function, log: &mut JustLog, ctx: &mut PassContext) -> usize {
    let vra = ctx.vra(f);
    let mut discharged = 0;
    for b in f.block_ids() {
        // replay the block's transfer function once, marking deletions
        let mut env = vra.entry[b.index()].clone();
        let mut keep = vec![true; f.block(b).stmts.len()];
        for (i, s) in f.block(b).stmts.iter().enumerate() {
            if let Stmt::Check(c) = s {
                if c.is_unconditional() && env.verdict(&c.cond) == Some(true) {
                    let reason = if env.bottom {
                        DischargeReason::Unreachable
                    } else if c.cond.constant_verdict() == Some(true) {
                        DischargeReason::Constant
                    } else {
                        DischargeReason::Range
                    };
                    if nascent_obs::trace::enabled() {
                        nascent_obs::trace::instant(
                            "discharged",
                            "event",
                            vec![
                                ("block", b.index().into()),
                                ("check", c.cond.to_string().into()),
                                (
                                    "reason",
                                    match reason {
                                        DischargeReason::Unreachable => "unreachable",
                                        DischargeReason::Constant => "constant",
                                        DischargeReason::Range => "range",
                                    }
                                    .into(),
                                ),
                            ],
                        );
                    }
                    log.push(Event::Discharged {
                        block: b,
                        check: c.cond.clone(),
                        reason,
                    });
                    keep[i] = false;
                    discharged += 1;
                }
            }
            // step over every statement, deleted checks included: the
            // certifier replays its analysis on the *reference* function,
            // where the check still exists (a true check's assume is a
            // no-op on the abstract state anyway)
            env.step_with(s, &vra.load_ranges);
        }
        if keep.iter().any(|k| !k) {
            let mut it = keep.iter();
            f.block_mut(b).stmts.retain(|_| *it.next().unwrap());
        }
    }
    discharged
}
