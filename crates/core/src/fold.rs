//! Step 5: compile-time checks.
//!
//! Checks whose range expression has no symbolic terms are decided now:
//! true checks disappear, false checks become `TRAP` statements (and are
//! reported to the programmer by the optimizer's statistics). Constant
//! guards of conditional checks fold the same way.

use nascent_ir::{Function, Stmt};

use crate::justify::{Event, JustLog};

/// Folds constant checks; returns `(folded_true, folded_false)`.
pub fn fold_constant_checks(f: &mut Function) -> (usize, usize) {
    let mut log = JustLog::new();
    fold_constant_checks_logged(f, &mut log)
}

/// [`fold_constant_checks`], recording [`Event::FoldedTrue`] /
/// [`Event::FoldedFalse`] per decided check. A conditional check dropped
/// because a *guard* is constant-false needs no event: the verifier
/// recomputes the loop's entry guard and sees the coverage is vacuous.
pub fn fold_constant_checks_logged(f: &mut Function, log: &mut JustLog) -> (usize, usize) {
    let mut folded_true = 0;
    let mut folded_false = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let block = f.block_mut(b);
        let mut kept = Vec::with_capacity(block.stmts.len());
        'stmts: for s in std::mem::take(&mut block.stmts) {
            let Stmt::Check(mut c) = s else {
                kept.push(s);
                continue;
            };
            // fold constant guards
            let mut guards = Vec::with_capacity(c.guards.len());
            for g in c.guards {
                match g.constant_verdict() {
                    Some(true) => {} // guard always holds: drop it
                    Some(false) => {
                        // check never performed: drop the statement
                        folded_true += 1;
                        continue 'stmts;
                    }
                    None => guards.push(g),
                }
            }
            c.guards = guards;
            match c.cond.constant_verdict() {
                Some(true) => {
                    log.push(Event::FoldedTrue {
                        block: b,
                        check: c.cond.clone(),
                    });
                    folded_true += 1;
                }
                Some(false) if c.guards.is_empty() => {
                    log.push(Event::FoldedFalse {
                        block: b,
                        check: c.cond.clone(),
                    });
                    folded_false += 1;
                    kept.push(Stmt::Trap {
                        message: format!("range check proven false: {}", c.cond),
                    });
                }
                _ => kept.push(Stmt::Check(c)),
            }
        }
        block.stmts = kept;
    }
    (folded_true, folded_false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    #[test]
    fn constant_true_checks_vanish() {
        let mut p = compile("program p\n integer a(1:10)\n a(5) = 0\nend\n").unwrap();
        let (t, fa) = fold_constant_checks(&mut p.functions[0]);
        assert_eq!((t, fa), (2, 0));
        assert_eq!(p.check_count(), 0);
    }

    #[test]
    fn constant_false_check_becomes_trap() {
        let mut p = compile("program p\n integer a(1:10)\n a(15) = 0\nend\n").unwrap();
        let (t, fa) = fold_constant_checks(&mut p.functions[0]);
        assert_eq!((t, fa), (1, 1)); // lower is true, upper is false
        let has_trap = p.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .any(|s| matches!(s, Stmt::Trap { .. }));
        assert!(has_trap);
    }

    #[test]
    fn symbolic_checks_survive() {
        let mut p =
            compile("program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\nend\n").unwrap();
        let (t, fa) = fold_constant_checks(&mut p.functions[0]);
        assert_eq!((t, fa), (0, 0));
        assert_eq!(p.check_count(), 2);
    }

    #[test]
    fn trap_execution_matches_naive_program() {
        use nascent_interp::{run, Limits};
        let src = "program p\n integer a(1:10)\n a(15) = 0\nend\n";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let mut p = compile(src).unwrap();
        fold_constant_checks(&mut p.functions[0]);
        let folded = run(&p, &Limits::default()).unwrap();
        assert!(naive.trap.is_some());
        assert!(folded.trap.is_some());
        assert!(folded.trap.unwrap().at_progress <= naive.trap.unwrap().at_progress);
    }
}
