//! The Check Implication Graph (§3.1).
//!
//! Checks with the same range expression form a *family*; the canonical
//! form makes this structural (constants are folded into the range
//! constant, symbolic terms are sorted). Within a family checks are
//! totally ordered by range constant: smaller constant = stronger check.
//!
//! Cross-family implications are weighted edges: an edge `(F₁ → F₂, w)`
//! means `Check (F₁ ≤ c)` implies `Check (F₂ ≤ c + w)` for every `c`.
//! Parallel edges keep the minimum weight, exactly as in the paper's
//! Figure 4. Implication along paths adds weights; [`Cig::closure`]
//! computes all-pairs minimum path weights.
//!
//! Edges come from two discoveries:
//!
//! * **affine relations** `x = y + k` between uniquely defined variables
//!   ([`discover_affine_edges`]) — substituting `y + k` for `x` in a
//!   family's form maps it onto another family with a constant shift,
//!   giving edges both ways;
//! * **preheader insertion** — handled structurally by
//!   [`crate::preheader`], which the paper's Table 3 experiment found to
//!   be the only implications that matter.

use std::collections::HashMap;

use nascent_analysis::dom::Dominators;
use nascent_analysis::reach::UniqueDefs;
use nascent_ir::{Function, LinForm, Stmt, VarId};

/// Index of a family within a [`Cig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FamilyId(pub u32);

impl FamilyId {
    /// The family's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The check implication graph.
#[derive(Debug, Clone, Default)]
pub struct Cig {
    families: Vec<LinForm>,
    index: HashMap<LinForm, FamilyId>,
    /// Direct cross-family edges with minimum weights.
    edges: HashMap<(FamilyId, FamilyId), i64>,
}

impl Cig {
    /// An empty graph.
    pub fn new() -> Cig {
        Cig::default()
    }

    /// Interns a family for a (constant-free) range expression.
    ///
    /// # Panics
    ///
    /// Panics if `form` carries a non-zero constant part — family keys are
    /// the symbolic parts of canonical checks.
    pub fn family(&mut self, form: &LinForm) -> FamilyId {
        assert_eq!(form.constant_part(), 0, "family keys are constant-free");
        if let Some(&id) = self.index.get(form) {
            return id;
        }
        let id = FamilyId(self.families.len() as u32);
        self.families.push(form.clone());
        self.index.insert(form.clone(), id);
        id
    }

    /// Looks up a family without interning.
    pub fn lookup(&self, form: &LinForm) -> Option<FamilyId> {
        self.index.get(form).copied()
    }

    /// The range expression of a family.
    pub fn form(&self, f: FamilyId) -> &LinForm {
        &self.families[f.index()]
    }

    /// Number of families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Number of direct cross-family edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds (or tightens) the edge `from → to` with weight `w`:
    /// `(from ≤ c) ⟹ (to ≤ c + w)`. Parallel edges keep the minimum
    /// weight (paper §3.1).
    pub fn add_edge(&mut self, from: FamilyId, to: FamilyId, w: i64) {
        if from == to {
            return;
        }
        let entry = self.edges.entry((from, to)).or_insert(w);
        *entry = (*entry).min(w);
    }

    /// All-pairs minimum implication weights along edge paths.
    pub fn closure(&self) -> CigClosure {
        // restrict the all-pairs computation to families touching an edge
        let mut nodes: Vec<FamilyId> = Vec::new();
        for (a, b) in self.edges.keys() {
            if !nodes.contains(a) {
                nodes.push(*a);
            }
            if !nodes.contains(b) {
                nodes.push(*b);
            }
        }
        let n = nodes.len();
        let pos: HashMap<FamilyId, usize> =
            nodes.iter().enumerate().map(|(i, f)| (*f, i)).collect();
        const INF: i64 = i64::MAX / 4;
        let mut dist = vec![INF; n * n];
        for i in 0..n {
            dist[i * n + i] = 0;
        }
        for ((a, b), w) in &self.edges {
            let (i, j) = (pos[a], pos[b]);
            dist[i * n + j] = dist[i * n + j].min(*w);
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik >= INF {
                    continue;
                }
                for j in 0..n {
                    let cand = dik.saturating_add(dist[k * n + j]);
                    if cand < dist[i * n + j] {
                        dist[i * n + j] = cand;
                    }
                }
            }
        }
        // a negative self-distance would mean a check implies a strictly
        // stronger version of itself: contradictory edges. Guard by
        // clamping such components to no-implication.
        let mut negative = vec![false; n];
        for i in 0..n {
            if dist[i * n + i] < 0 {
                negative[i] = true;
            }
        }
        CigClosure {
            nodes,
            pos,
            dist,
            negative,
            n,
        }
    }
}

/// Distances at or above this are treated as "no implication": the
/// Floyd–Warshall relaxation can pull the sentinel `INF` down by small
/// negative edge weights, so a simple equality test would leak
/// near-infinite weights.
const INF_THRESHOLD: i64 = i64::MAX / 8;

/// All-pairs implication weights (see [`Cig::closure`]).
#[derive(Debug, Clone)]
pub struct CigClosure {
    nodes: Vec<FamilyId>,
    pos: HashMap<FamilyId, usize>,
    dist: Vec<i64>,
    negative: Vec<bool>,
    n: usize,
}

impl CigClosure {
    /// Minimum `w` such that `(from ≤ c) ⟹ (to ≤ c + w)` along CIG
    /// paths; `Some(0)` when `from == to`, `None` when unrelated.
    pub fn weight(&self, from: FamilyId, to: FamilyId) -> Option<i64> {
        if from == to {
            return Some(0);
        }
        let (&i, &j) = (self.pos.get(&from)?, self.pos.get(&to)?);
        if self.negative[i] || self.negative[j] {
            return None;
        }
        let d = self.dist[i * self.n + j];
        if d >= INF_THRESHOLD {
            None
        } else {
            Some(d)
        }
    }

    /// Families reachable from `from` with their weights (excluding
    /// `from` itself).
    pub fn reachable(&self, from: FamilyId) -> Vec<(FamilyId, i64)> {
        let Some(&i) = self.pos.get(&from) else {
            return Vec::new();
        };
        if self.negative[i] {
            return Vec::new();
        }
        let mut out = Vec::new();
        for j in 0..self.n {
            if j == i || self.negative[j] {
                continue;
            }
            let d = self.dist[i * self.n + j];
            if d < INF_THRESHOLD {
                out.push((self.nodes[j], d));
            }
        }
        out
    }
}

/// Discovers affine relations `x = y + k` between variables whose single
/// static definitions make the relation hold at every check that mentions
/// them, and records the induced two-way family edges in the CIG for
/// every family pair related by the substitution.
///
/// Soundness conditions (conservative):
/// * `x` has a unique definition `x = y + k` (canonical form),
/// * `y` is never defined (parameter) or uniquely defined in a block
///   dominating `x`'s definition,
/// * `x`'s definition dominates every block containing a check that
///   mentions `x`.
pub fn discover_affine_edges(
    f: &Function,
    dom: &Dominators,
    defs: &UniqueDefs,
    cig: &mut Cig,
    families_in_use: &[(FamilyId, LinForm)],
) -> usize {
    // blocks containing checks per variable
    let mut check_blocks: HashMap<VarId, Vec<nascent_ir::BlockId>> = HashMap::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Stmt::Check(c) = s {
                for v in c.vars() {
                    check_blocks.entry(v).or_default().push(b);
                }
            }
        }
    }
    // count textual defs per var to recognize never-defined vars
    let mut def_count: HashMap<VarId, usize> = HashMap::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Some(v) = s.defined_var() {
                *def_count.entry(v).or_insert(0) += 1;
            }
        }
    }

    let mut added = 0;
    for (x, site) in defs {
        let Some(rhs) = &site.rhs else { continue };
        let form = LinForm::from_expr(rhs);
        let Some((y, coeff, k)) = form.as_single_var() else {
            continue;
        };
        if coeff != 1 || y == *x {
            continue;
        }
        // y stable: never defined, or uniquely defined dominating x's def
        let y_ok = match def_count.get(&y) {
            None => true,
            Some(1) => {
                defs.get(&y)
                    .is_some_and(|ys| dom.dominates(ys.block, site.block) && ys.block != site.block)
                    || defs
                        .get(&y)
                        .is_some_and(|ys| ys.block == site.block && ys.stmt < site.stmt)
            }
            _ => false,
        };
        if !y_ok {
            continue;
        }
        // x's def must dominate every check mentioning x
        let ok = check_blocks
            .get(x)
            .map(|blocks| blocks.iter().all(|b| dom.dominates(site.block, *b)))
            .unwrap_or(true);
        if !ok {
            continue;
        }
        // map every family containing x linearly onto its substituted
        // family: form_x = a·x + rest  ≡  a·y + rest + a·k
        for (fid, fam_form) in families_in_use {
            let a = fam_form.coeff_of_var(*x);
            if a == 0 {
                continue;
            }
            let repl = LinForm::var(y).add(&LinForm::constant(k));
            let Some(subst) = fam_form.substitute_var(*x, &repl) else {
                continue;
            };
            let shift = subst.constant_part(); // = a·k
            let target_key = subst.symbolic_part();
            let target = cig.family(&target_key);
            if target == *fid {
                continue;
            }
            // (fam ≤ c) ⇔ (target + shift ≤ c) ⇔ (target ≤ c - shift)
            cig.add_edge(*fid, target, -shift);
            cig.add_edge(target, *fid, shift);
            added += 2;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_ir::VarId;

    fn form_of(v: u32) -> LinForm {
        LinForm::var(VarId(v))
    }

    #[test]
    fn families_are_interned_by_symbolic_part() {
        let mut cig = Cig::new();
        let f1 = cig.family(&form_of(0));
        let f2 = cig.family(&form_of(0));
        let f3 = cig.family(&form_of(1));
        assert_eq!(f1, f2);
        assert_ne!(f1, f3);
        assert_eq!(cig.family_count(), 2);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut cig = Cig::new();
        let a = cig.family(&form_of(0));
        let b = cig.family(&form_of(1));
        cig.add_edge(a, b, 7);
        cig.add_edge(a, b, 4);
        cig.add_edge(a, b, 9);
        let cl = cig.closure();
        assert_eq!(cl.weight(a, b), Some(4));
        assert_eq!(cl.weight(b, a), None);
    }

    #[test]
    fn figure4_example() {
        // Check (n <= 6) => Check (m <= 10): edge weight 4.
        // Then Check (n <= 1) is as strong as Check (m <= 7)
        // but not as strong as Check (m <= 3).
        let mut cig = Cig::new();
        let fn_ = cig.family(&form_of(0)); // n
        let fm = cig.family(&form_of(1)); // m
        cig.add_edge(fn_, fm, 4);
        let cl = cig.closure();
        let w = cl.weight(fn_, fm).unwrap();
        assert_eq!(w, 4); // n<=1 implies m<=5, so also m<=7, but not m<=3
    }

    #[test]
    fn path_weights_add() {
        let mut cig = Cig::new();
        let a = cig.family(&form_of(0));
        let b = cig.family(&form_of(1));
        let c = cig.family(&form_of(2));
        cig.add_edge(a, b, 2);
        cig.add_edge(b, c, -5);
        let cl = cig.closure();
        assert_eq!(cl.weight(a, c), Some(-3));
        assert_eq!(cl.weight(a, a), Some(0));
        let mut reach = cl.reachable(a);
        reach.sort();
        assert_eq!(reach, vec![(b, 2), (c, -3)]);
    }

    #[test]
    fn negative_cycles_disable_component() {
        let mut cig = Cig::new();
        let a = cig.family(&form_of(0));
        let b = cig.family(&form_of(1));
        cig.add_edge(a, b, -1);
        cig.add_edge(b, a, 0);
        let cl = cig.closure();
        assert_eq!(cl.weight(a, b), None);
        assert!(cl.reachable(a).is_empty());
        // identity still holds
        assert_eq!(cl.weight(a, a), Some(0));
    }

    #[test]
    fn negative_cycle_guard_spares_unrelated_components() {
        // a → b → c → a sums to -1: every query touching the cycle must
        // be clamped to "no implication", but an unrelated pair in the
        // same graph keeps its weights and identity still holds.
        let mut cig = Cig::new();
        let a = cig.family(&form_of(0));
        let b = cig.family(&form_of(1));
        let c = cig.family(&form_of(2));
        let d = cig.family(&form_of(3));
        let e = cig.family(&form_of(4));
        cig.add_edge(a, b, 1);
        cig.add_edge(b, c, -3);
        cig.add_edge(c, a, 1);
        cig.add_edge(d, e, 2);
        let cl = cig.closure();
        for (x, y) in [(a, b), (b, c), (c, a), (a, c), (b, a)] {
            assert_eq!(cl.weight(x, y), None, "cycle member leaked a weight");
        }
        assert!(cl.reachable(a).is_empty());
        assert_eq!(cl.weight(a, a), Some(0), "identity is weight 0 regardless");
        assert_eq!(cl.weight(d, e), Some(2), "healthy component unaffected");
        assert_eq!(cl.reachable(d), vec![(e, 2)]);
    }

    #[test]
    fn affine_edges_from_unique_defs() {
        // m = n + 4 with unique defs; checks on m and n exist
        let p = nascent_frontend::compile(
            "program p
 integer a(1:20)
 integer n, m
 n = 3
 m = n + 4
 a(n) = 1
 a(m) = 2
end
",
        )
        .unwrap();
        let f = p.main_function();
        let mut ctx = nascent_analysis::context::PassContext::new();
        let dom = ctx.dominators(f);
        let udefs = ctx.unique_defs(f);
        let mut cig = Cig::new();
        // seed with the families of all checks in the program
        let mut fams: Vec<(FamilyId, LinForm)> = Vec::new();
        for b in f.block_ids() {
            for s in &f.block(b).stmts {
                if let Stmt::Check(c) = s {
                    let key = c.cond.form().clone();
                    let id = cig.family(&key);
                    if !fams.iter().any(|(i, _)| *i == id) {
                        fams.push((id, key));
                    }
                }
            }
        }
        let added = discover_affine_edges(f, &dom, &udefs, &mut cig, &fams);
        assert!(added > 0);
        // the family {m} (from Check m <= 20) must imply family {n}
        let fm = cig.lookup(&LinForm::var(VarId(1))).unwrap();
        let fn_ = cig.lookup(&LinForm::var(VarId(0))).unwrap();
        let cl = cig.closure();
        // (m <= c) => (n <= c - 4)
        assert_eq!(cl.weight(fm, fn_), Some(-4));
        assert_eq!(cl.weight(fn_, fm), Some(4));
    }
}
