//! Preheader insertion (§3.3): the paper's `LI` (loop-invariant checks)
//! and `LLS` (loop-limit substitution of linear checks) schemes — the
//! clear winners of the paper's evaluation.
//!
//! Loops are processed inner to outer, "so that checks from inner loops
//! are hoisted to the outermost loop possible". For each loop:
//!
//! * a check anticipatable at the *beginning of the loop body* whose range
//!   expression is **invariant** in the loop is hoisted to the preheader
//!   as `Cond-check((trip ≥ 1), C)`;
//! * under `LLS`, a check whose range expression is **linear** in the
//!   loop's basic induction variable additionally undergoes *loop-limit
//!   substitution*: the induction variable is replaced by the loop bound
//!   that maximizes its signed contribution, and the substituted check is
//!   hoisted the same way;
//! * when the trip count is known positive at compile time, an ordinary
//!   (unconditional) check is inserted instead of a conditional one;
//! * hoisted conditional checks from inner preheaders are re-hoisted
//!   outward structurally: a guarded check in a block that dominates the
//!   outer loop's latch moves to the outer preheader with the outer
//!   loop's guard appended (these are exactly the preheader-to-body
//!   implications that the paper's Table 3 found to matter).
//!
//! Every check in the loop covered by a hoisted check — same family, same
//! or weaker bound, at a point where the induction variable is still
//! within its body-valid bounds — is deleted immediately; the general
//! elimination pass then cleans up anything the CIG additionally implies.

use std::collections::HashMap;

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::dataflow::solve;
use nascent_analysis::dom::Dominators;
use nascent_analysis::loops::{LoopForest, LoopId, LoopInfo};
use nascent_analysis::reach::UniqueDefs;
use nascent_ir::{BlockId, Check, CheckExpr, Function, LinForm, Stmt, VarId};

use crate::dataflow::Antic;
use crate::justify::{Event, JustLog};
use crate::universe::Universe;
use crate::ImplicationMode;

/// Which checks the preheader scheme hoists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoistKind {
    /// Only loop-invariant checks (`LI`).
    InvariantOnly,
    /// Invariant and linear checks with loop-limit substitution (`LLS`).
    InvariantAndLinear,
}

/// Runs preheader insertion over all loops of `f`, inner to outer.
/// Returns the number of checks hoisted (conditional or not).
pub fn hoist(f: &mut Function, kind: HoistKind) -> usize {
    let mut log = JustLog::new();
    hoist_logged(f, kind, &mut log)
}

/// [`hoist`], recording [`Event::Hoisted`] per preheader insertion,
/// [`Event::HoistCovered`] per in-loop check it deletes, and
/// [`Event::Rehoisted`] per guarded check moved to an outer preheader.
pub fn hoist_logged(f: &mut Function, kind: HoistKind, log: &mut JustLog) -> usize {
    hoist_ctx(f, kind, log, &mut PassContext::new())
}

/// [`hoist_logged`] over a shared [`PassContext`].
pub fn hoist_ctx(
    f: &mut Function,
    kind: HoistKind,
    log: &mut JustLog,
    ctx: &mut PassContext,
) -> usize {
    ctx.ensure_preheaders(f);
    let dom = ctx.dominators(f);
    let forest = ctx.loop_forest(f);
    let mut hoisted = 0;
    for l in forest.inner_to_outer() {
        hoisted += hoist_loop(f, ctx, &dom, &forest, l, kind, log);
    }
    hoisted
}

/// Substitutes uniquely defined variables (typically the frontend's
/// loop-limit temporaries, `%lim = n`) through their defining expressions
/// when the result is evaluable at the end of block `at`: every variable
/// of the replacement must be never-defined or uniquely defined in a
/// block dominating (or equal to) `at`. Repeats to a fixpoint so chains
/// resolve.
fn normalize_form(
    f: &Function,
    dom: &Dominators,
    udefs: &UniqueDefs,
    at: BlockId,
    form: &LinForm,
) -> LinForm {
    let stable = |w: VarId| -> bool {
        match udefs.get(&w) {
            Some(site) => site.block == at || dom.dominates(site.block, at),
            // not uniquely defined: acceptable only if never defined at all
            None => f
                .blocks
                .iter()
                .all(|b| b.stmts.iter().all(|s| s.defined_var() != Some(w))),
        }
    };
    let mut cur = form.clone();
    for _ in 0..8 {
        let mut changed = false;
        for v in cur.vars() {
            let Some(site) = udefs.get(&v) else { continue };
            // already evaluable in place: leave it
            if site.block == at || dom.dominates(site.block, at) {
                continue;
            }
            let Some(rhs) = &site.rhs else { continue };
            let r = LinForm::from_expr(rhs);
            if r.uses_var(v) || !r.vars().iter().all(|w| stable(*w)) {
                continue;
            }
            if let Some(next) = cur.substitute_var(v, &r) {
                cur = next;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    cur
}

/// Normalizes a check expression for evaluation at the end of `at`.
fn normalize_check(
    f: &Function,
    dom: &Dominators,
    udefs: &UniqueDefs,
    at: BlockId,
    ce: &CheckExpr,
) -> CheckExpr {
    let form = normalize_form(f, dom, udefs, at, ce.form());
    CheckExpr::new(form, ce.bound())
}

fn hoist_loop(
    f: &mut Function,
    ctx: &mut PassContext,
    dom: &Dominators,
    forest: &LoopForest,
    l: LoopId,
    kind: HoistKind,
    log: &mut JustLog,
) -> usize {
    let info = forest.loop_info(l).clone();
    let Some(preheader) = info.preheader else {
        return 0;
    };
    let Some(body_entry) = info.body_entry else {
        return 0;
    };

    // ---- candidates: unconditional checks anticipatable at body entry ----
    let u = Universe::build_ctx(f, ImplicationMode::All, ctx);
    let antic = solve(f, &Antic::new(f, &u));
    let at_body = &antic.entry[body_entry.index()];

    // hoisting is only profitable for checks that actually occur inside
    // the loop ("checks from inner loops are hoisted"); a check whose
    // occurrences all lie past the loop exit may be anticipatable at the
    // body entry (it is executed after the loop on every path) but
    // hoisting it would add work
    let mut occurs_in_loop = crate::util::BitSet::empty(u.len());
    for &b in &info.blocks {
        for s in &f.block(b).stmts {
            if let Stmt::Check(c) = s {
                if c.is_unconditional() {
                    if let Some(id) = u.id(&c.cond) {
                        occurs_in_loop.insert(id);
                    }
                }
            }
        }
    }

    // guard expressing "the loop executes at least once"
    let guard = info.iv.as_ref().and_then(|iv| iv.entry_guard());

    // per original family: the strongest candidate and its substitution
    struct Candidate {
        family: LinForm,
        bound: i64,
        hoisted: CheckExpr,
        linear: bool,
    }
    let mut cands: HashMap<LinForm, Candidate> = HashMap::new();
    for id in at_body.iter() {
        if !occurs_in_loop.contains(id) {
            continue;
        }
        let cond = &u.checks[id];
        let (hoisted_expr, linear) = if info.is_invariant(cond.form()) {
            (cond.clone(), false)
        } else if kind == HoistKind::InvariantAndLinear {
            match substitute_limit(&info, cond) {
                Some(h) => (h, true),
                None => continue,
            }
        } else {
            continue;
        };
        let key = cond.family_key().clone();
        let entry = cands.entry(key.clone());
        match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                if cond.bound() < o.get().bound {
                    *o.get_mut() = Candidate {
                        family: key,
                        bound: cond.bound(),
                        hoisted: hoisted_expr,
                        linear,
                    };
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Candidate {
                    family: key,
                    bound: cond.bound(),
                    hoisted: hoisted_expr,
                    linear,
                });
            }
        }
    }

    // hoisting (even of an invariant check) needs the loop-entry guard,
    // unless the guard is a compile-time tautology
    let guard_list: Option<Vec<CheckExpr>> = match &guard {
        Some(g) => match g.constant_verdict() {
            Some(true) => Some(vec![]),
            Some(false) => None, // loop provably never runs: hoist nothing
            None => Some(vec![g.clone()]),
        },
        None => None,
    };

    let mut count = 0;
    if let Some(guards) = guard_list {
        let mut ordered: Vec<&Candidate> = cands.values().collect();
        ordered.sort_by(|a, b| (&a.family, a.bound).cmp(&(&b.family, b.bound)));
        for c in &ordered {
            log.push(Event::Hoisted {
                preheader,
                guards: guards.clone(),
                cond: c.hoisted.clone(),
            });
            let check = Check::conditional(guards.clone(), c.hoisted.clone());
            f.block_mut(preheader).stmts.push(Stmt::Check(check));
            count += 1;
        }
        // delete covered checks inside the loop
        let latch = info.latches.first().copied();
        let iv_var = info.iv.as_ref().map(|iv| iv.var);
        for &b in &info.blocks {
            let block = f.block_mut(b);
            let mut iv_defined = false;
            let mut kept = Vec::with_capacity(block.stmts.len());
            for s in std::mem::take(&mut block.stmts) {
                let covered = match &s {
                    Stmt::Check(c) if c.is_unconditional() => ordered.iter().find(|cand| {
                        c.cond.family_key() == &cand.family
                            && c.cond.bound() >= cand.bound
                            && !(cand.linear && Some(b) == latch && iv_defined)
                    }),
                    _ => None,
                };
                if let Some(cand) = covered {
                    let Stmt::Check(c) = &s else { unreachable!() };
                    log.push(Event::HoistCovered {
                        block: b,
                        check: c.cond.clone(),
                        preheader,
                        by: cand.hoisted.clone(),
                    });
                    count += 0; // deletion accounted via elimination stats
                } else {
                    kept.push(s);
                }
                if let Some(last) = kept.last() {
                    if last.defined_var().is_some() && last.defined_var() == iv_var {
                        iv_defined = true;
                    }
                }
            }
            block.stmts = kept;
        }
    }

    if count > 0 {
        // checks were inserted and covered occurrences deleted: statement
        // positions shifted under the cached unique-defs/SSA results
        ctx.invalidate(Invalidation::Statements);
    }

    // ---- structural re-hoist of guarded checks from dominated blocks ----
    let moved = rehoist_guarded(f, ctx, dom, &info, preheader, &guard, log);
    if moved > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    count + moved
}

/// Public form of the loop-limit substitution for the restricted MCM
/// scheme (see the private `substitute_limit`).
pub fn substitute_limit_for(info: &LoopInfo, cond: &CheckExpr) -> Option<CheckExpr> {
    substitute_limit(info, cond)
}

/// Loop-limit substitution: replace the induction variable by the bound
/// that maximizes its signed contribution, giving a check that covers all
/// body-valid values (§3.3, Figure 6).
fn substitute_limit(info: &LoopInfo, cond: &CheckExpr) -> Option<CheckExpr> {
    let coeff = info.linear_in_iv(cond.form())?;
    let iv = info.iv.as_ref()?;
    let bound_form = if coeff > 0 {
        iv.upper.as_ref()?
    } else {
        iv.lower.as_ref()?
    };
    let substituted = cond.form().substitute_var(iv.var, bound_form)?;
    Some(CheckExpr::new(substituted, cond.bound()))
}

/// Moves guarded checks (conditional checks inserted when processing
/// inner loops) outward: a guarded check in a block dominating the loop's
/// latch, whose guards are invariant and whose check is invariant (or
/// linear, substituted), moves to this loop's preheader with this loop's
/// entry guard appended.
fn rehoist_guarded(
    f: &mut Function,
    ctx: &mut PassContext,
    dom: &Dominators,
    info: &LoopInfo,
    preheader: BlockId,
    guard: &Option<CheckExpr>,
    log: &mut JustLog,
) -> usize {
    let [latch] = info.latches[..] else { return 0 };
    let outer_guard = match guard {
        Some(g) => match g.constant_verdict() {
            Some(true) => None,
            Some(false) => return 0,
            None => Some(g.clone()),
        },
        None => return 0,
    };
    let udefs = ctx.unique_defs(f);
    let mut moved: Vec<Check> = Vec::new();
    for &b in &info.blocks {
        if b == info.header || !dom.dominates(b, latch) {
            continue;
        }
        let stmts = std::mem::take(&mut f.block_mut(b).stmts);
        let mut kept = Vec::with_capacity(stmts.len());
        for s in stmts {
            let Stmt::Check(c) = &s else {
                kept.push(s);
                continue;
            };
            if c.is_unconditional() {
                kept.push(s);
                continue;
            }
            // normalize loop-limit temporaries away so the forms become
            // evaluable (and recognizable as invariant) at the preheader
            let guards: Vec<CheckExpr> = c
                .guards
                .iter()
                .map(|g| normalize_check(f, dom, &udefs, preheader, g))
                .collect();
            let cond = normalize_check(f, dom, &udefs, preheader, &c.cond);
            let guards_invariant = guards.iter().all(|g| info.is_invariant(g.form()));
            if !guards_invariant {
                kept.push(s);
                continue;
            }
            let new_cond = if info.is_invariant(cond.form()) {
                Some(cond)
            } else {
                substitute_limit(info, &cond)
                    .map(|c| normalize_check(f, dom, &udefs, preheader, &c))
            };
            match new_cond {
                Some(cond) => {
                    let mut guards = guards;
                    if let Some(g) = &outer_guard {
                        guards.push(normalize_check(f, dom, &udefs, preheader, g));
                    }
                    log.push(Event::Rehoisted {
                        preheader,
                        guards: guards.clone(),
                        cond: cond.clone(),
                        from_block: b,
                        original: c.clone(),
                    });
                    moved.push(Check::conditional(guards, cond));
                }
                None => kept.push(s),
            }
        }
        f.block_mut(b).stmts = kept;
    }
    let n = moved.len();
    for c in moved {
        f.block_mut(preheader).stmts.push(Stmt::Check(c));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::eliminate;
    use crate::fold::fold_constant_checks;
    use crate::OptimizeStats;
    use nascent_frontend::compile;
    use nascent_interp::{run, Limits};
    use nascent_ir::validate::assert_valid;

    fn lls(src: &str) -> (nascent_ir::Program, usize) {
        let mut p = compile(src).unwrap();
        let mut hoisted = 0;
        let mut stats = OptimizeStats::default();
        for i in 0..p.functions.len() {
            hoisted += hoist(&mut p.functions[i], HoistKind::InvariantAndLinear);
            eliminate(&mut p.functions[i], ImplicationMode::All, &mut stats);
            fold_constant_checks(&mut p.functions[i]);
        }
        assert_valid(&p);
        (p, hoisted)
    }

    /// The paper's Figure 6: invariant check on k and linear check on j
    /// both leave the loop as conditional checks in the preheader.
    #[test]
    fn figure6_preheader_insertion() {
        let src = "program fig6
 integer a(1:10)
 integer j, k, n
 n = 4
 k = 7
 do j = 1, 2 * n
  a(k) = a(j) + 1
 enddo
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, hoisted) = lls(src);
        assert!(hoisted >= 3, "k's two checks and j's upper at least");
        // the loop body performs no checks anymore
        let opt = run(&p, &Limits::default()).unwrap();
        assert!(opt.dynamic_checks <= 4, "only preheader checks remain");
        assert!(naive.dynamic_checks >= 32);
        assert_eq!(opt.output, naive.output);
        assert_eq!(opt.trap.is_some(), naive.trap.is_some());
    }

    #[test]
    fn zero_trip_loop_checks_suppressed_by_guard() {
        // n = 0: the loop never runs; guarded checks must not fire even
        // though k is out of range
        let src = "program p
 integer a(1:10)
 integer j, k, n
 n = 0
 k = 99
 do j = 1, n
  a(k) = 0
 enddo
 print 1
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        assert!(naive.trap.is_none());
        let (p, _h) = lls(src);
        let opt = run(&p, &Limits::default()).unwrap();
        assert!(opt.trap.is_none(), "guard must suppress hoisted checks");
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn li_hoists_invariant_but_not_linear() {
        let src = "program p
 integer a(1:10)
 integer j, k, n
 n = 4
 k = 7
 do j = 1, n
  a(k) = a(j) + 1
 enddo
end
";
        let mut p = compile(src).unwrap();
        let h = hoist(&mut p.functions[0], HoistKind::InvariantOnly);
        assert_eq!(h, 2, "only k's two invariant checks hoist under LI");
        let mut stats = OptimizeStats::default();
        eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
        assert_valid(&p);
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let opt = run(&p, &Limits::default()).unwrap();
        // j's checks remain in the loop: 2 per iteration; k's are hoisted
        assert_eq!(opt.output, naive.output);
        assert!(opt.dynamic_checks < naive.dynamic_checks);
        assert!(opt.dynamic_checks >= 8);
    }

    #[test]
    fn nested_loops_hoist_to_outermost() {
        let src = "program p
 integer a(1:100, 1:100)
 integer i, j, n
 n = 50
 do i = 1, n
  do j = 1, n
   a(i, j) = i + j
  enddo
 enddo
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, hoisted) = lls(src);
        assert!(hoisted >= 4);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        // 2500 accesses * 4 checks naive vs a handful of hoisted checks
        assert_eq!(naive.dynamic_checks, 10_000);
        assert!(
            opt.dynamic_checks <= 2 + 2 * 50,
            "outer checks hoisted fully, got {}",
            opt.dynamic_checks
        );
    }

    #[test]
    fn triangular_loop_limit_substitution() {
        // inner limit depends on the outer IV: inner hoist uses it as an
        // invariant bound; re-hoisting out of the outer loop substitutes
        let src = "program p
 integer a(1:60)
 integer i, j, n
 n = 10
 do i = 1, n
  do j = 1, i
   a(i + j) = 1
  enddo
 enddo
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, _h) = lls(src);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert_eq!(opt.trap.is_some(), naive.trap.is_some());
        assert!(opt.dynamic_checks < naive.dynamic_checks);
    }

    #[test]
    fn trap_still_detected_and_not_later() {
        // j runs to 12 against a(1:10): naive traps at j = 11; LLS's
        // hoisted check traps before the loop — never later
        let src = "program p
 integer a(1:10)
 integer j, s
 s = 0
 do j = 1, 12
  s = s + a(j)
 enddo
 print s
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, _) = lls(src);
        let opt = run(&p, &Limits::default()).unwrap();
        let nt = naive.trap.expect("naive traps");
        let ot = opt.trap.expect("optimized must trap too");
        assert!(ot.at_progress <= nt.at_progress);
    }

    #[test]
    fn negative_step_loop_hoists() {
        let src = "program p
 integer a(1:20)
 integer j, n
 n = 20
 do j = n, 1, -1
  a(j) = j
 enddo
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, hoisted) = lls(src);
        assert!(hoisted >= 2);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert!(opt.dynamic_checks <= 2);
    }

    #[test]
    fn conditional_check_in_branch_not_hoisted() {
        // the access is conditional inside the loop: not anticipatable at
        // body entry, must stay put
        let src = "program p
 integer a(1:10)
 integer j, k
 k = 12
 do j = 1, 10
  if (j == 20) then
   a(k) = 0
  endif
 enddo
 print 5
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        assert!(naive.trap.is_none(), "branch never taken");
        let (p, _) = lls(src);
        let opt = run(&p, &Limits::default()).unwrap();
        assert!(
            opt.trap.is_none(),
            "hoisting a non-anticipatable check would trap wrongly"
        );
        assert_eq!(opt.output, naive.output);
    }

    #[test]
    fn while_loop_with_iv_hoists_linear_checks() {
        let src = "program p
 integer a(1:50)
 integer i, n
 n = 40
 i = 1
 while (i <= n)
  a(i) = i
  i = i + 1
 endwhile
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let (p, hoisted) = lls(src);
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output);
        assert!(hoisted >= 2);
        assert!(opt.dynamic_checks < naive.dynamic_checks / 10);
    }
}
