//! Availability and anticipatability of checks (§3.2).
//!
//! Both are instances of the generic solver in [`nascent_analysis`] over
//! [`BitSet`] facts:
//!
//! * **availability** — forward, meet = intersection. A check statement
//!   generates the check *and everything it implies* (CIG closure); a
//!   definition of any symbol in a check's range expression kills it.
//! * **anticipatability** — backward, meet = intersection. A check
//!   statement generates the check and its weaker *family* members only,
//!   which guarantees a check is never inserted above a definition of one
//!   of its symbols.
//!
//! Conditional checks (`Cond-check`) generate nothing: their check is
//! performed only when the guard holds, so neither availability nor
//! anticipatability may assume it.

use nascent_analysis::dataflow::{Direction, Problem};
use nascent_ir::{BlockId, Function, Stmt};

use crate::universe::Universe;
use crate::util::BitSet;

/// Forward availability problem over the check universe.
pub struct Avail<'a> {
    /// The universe.
    pub u: &'a Universe,
}

impl Problem for Avail<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> BitSet {
        BitSet::empty(self.u.len())
    }

    fn top(&self) -> BitSet {
        BitSet::full(self.u.len())
    }

    fn meet(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut out = a.clone();
        out.intersect_with(b);
        out
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &BitSet) -> BitSet {
        let mut fact = fact.clone();
        for s in &f.block(b).stmts {
            avail_step(self.u, &mut fact, s);
        }
        fact
    }
}

/// Applies one statement to an availability fact (forward order).
pub fn avail_step(u: &Universe, fact: &mut BitSet, s: &Stmt) {
    match s {
        Stmt::Check(c) => {
            if c.is_unconditional() {
                if let Some(id) = u.id(&c.cond) {
                    fact.union_with(&u.gen_avail[id]);
                }
            }
        }
        Stmt::Trap { .. } => {
            // execution stops; anything is vacuously available after
            *fact = BitSet::full(u.len());
        }
        _ => {
            if let Some(v) = s.defined_var() {
                if let Some(kills) = u.kill_of.get(&v) {
                    fact.subtract(kills);
                }
            }
        }
    }
}

/// Backward anticipatability problem over the check universe.
pub struct Antic<'a> {
    /// The universe.
    pub u: &'a Universe,
}

impl Problem for Antic<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        BitSet::empty(self.u.len())
    }

    fn top(&self) -> BitSet {
        BitSet::full(self.u.len())
    }

    fn meet(&self, a: &BitSet, b: &BitSet) -> BitSet {
        let mut out = a.clone();
        out.intersect_with(b);
        out
    }

    fn transfer(&self, f: &Function, b: BlockId, fact: &BitSet) -> BitSet {
        let mut fact = fact.clone();
        for s in f.block(b).stmts.iter().rev() {
            antic_step(self.u, &mut fact, s);
        }
        fact
    }
}

/// Applies one statement to an anticipatability fact (reverse order).
pub fn antic_step(u: &Universe, fact: &mut BitSet, s: &Stmt) {
    match s {
        Stmt::Check(c) => {
            if c.is_unconditional() {
                if let Some(id) = u.id(&c.cond) {
                    fact.union_with(&u.gen_antic[id]);
                }
            }
        }
        Stmt::Trap { .. } => {
            // nothing after a trap executes; any insertion before it is safe
            *fact = BitSet::full(u.len());
        }
        _ => {
            if let Some(v) = s.defined_var() {
                if let Some(kills) = u.kill_of.get(&v) {
                    fact.subtract(kills);
                }
            }
        }
    }
}

/// The per-block local predicates lazy code motion needs.
#[derive(Debug, Clone)]
pub struct LocalPredicates {
    /// `antloc[b]` — checks locally anticipatable at the entry of `b`.
    pub antloc: Vec<BitSet>,
    /// `comp[b]` — checks locally available at the exit of `b`.
    pub comp: Vec<BitSet>,
    /// `transp[b]` — checks transparent through `b` (no kill).
    pub transp: Vec<BitSet>,
}

/// Computes the local predicates for every block.
pub fn local_predicates(f: &Function, u: &Universe) -> LocalPredicates {
    let n = f.blocks.len();
    let mut antloc = Vec::with_capacity(n);
    let mut comp = Vec::with_capacity(n);
    let mut transp = Vec::with_capacity(n);
    for b in f.block_ids() {
        let mut a = BitSet::empty(u.len());
        for s in f.block(b).stmts.iter().rev() {
            antic_step(u, &mut a, s);
        }
        antloc.push(a);
        let mut c = BitSet::empty(u.len());
        for s in &f.block(b).stmts {
            avail_step(u, &mut c, s);
        }
        comp.push(c);
        let mut t = BitSet::full(u.len());
        for s in &f.block(b).stmts {
            if let Some(v) = s.defined_var() {
                if let Some(kills) = u.kill_of.get(&v) {
                    t.subtract(kills);
                }
            }
        }
        transp.push(t);
    }
    LocalPredicates {
        antloc,
        comp,
        transp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImplicationMode;
    use nascent_analysis::dataflow::solve;
    use nascent_frontend::compile;

    fn prep(src: &str) -> (Function, Universe) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let u = Universe::build(&f, ImplicationMode::All);
        (f, u)
    }

    #[test]
    fn availability_flows_forward_and_dies_at_kill() {
        let (f, u) = prep(
            "program p\n integer a(1:10)\n integer i\n i = 1\n a(i) = 0\n i = 2\n a(i) = 0\nend\n",
        );
        let sol = solve(&f, &Avail { u: &u });
        // everything in one block; walk manually
        let mut fact = BitSet::empty(u.len());
        let mut alive_after_first_store = 0;
        let mut alive_at_end = 0;
        for s in &f.block(f.entry).stmts {
            avail_step(&u, &mut fact, s);
            if matches!(s, Stmt::Store { .. }) {
                if alive_after_first_store == 0 {
                    alive_after_first_store = fact.count();
                }
                alive_at_end = fact.count();
            }
        }
        assert!(alive_after_first_store >= 2);
        // the i = 2 in between killed the first pair
        assert!(alive_at_end >= 2);
        let _ = sol;
    }

    #[test]
    fn anticipatability_merges_with_intersection() {
        // the two branches check different families; nothing common is
        // anticipatable before the branch
        let (f, u) = prep(
            "program p
 integer a(1:10), b(1:20)
 integer i, c
 i = 1
 c = 0
 if (c > 0) then
  a(i) = 0
 else
  b(i) = 0
 endif
end
",
        );
        let sol = solve(&f, &Antic { u: &u });
        // at the entry block exit (= before the branch) the lower check
        // (-i <= -1) is common to both arms and must be anticipatable;
        // the upper checks differ (10 vs 20): (i <= 20) is implied by
        // (i <= 10) but antic merges within family: i<=20 is weaker, and
        // each arm generates its own family-weaker set. Upper family of a
        // and b are the SAME family {i}! bounds 10 and 20. The a-arm
        // generates {i<=10, i<=20}; the b-arm {i<=20}. Intersection keeps
        // i<=20.
        let exit_fact = &sol.exit[f.entry.index()];
        let lower = u
            .checks
            .iter()
            .position(|c| c.bound() == -1)
            .expect("lower check");
        let upper20 = u.checks.iter().position(|c| c.bound() == 20).unwrap();
        let upper10 = u.checks.iter().position(|c| c.bound() == 10).unwrap();
        assert!(exit_fact.contains(lower));
        assert!(exit_fact.contains(upper20));
        assert!(!exit_fact.contains(upper10));
    }

    #[test]
    fn local_predicates_shape() {
        let (f, u) = prep("program p\n integer a(1:10)\n integer i\n i = 3\n a(i) = 0\nend\n");
        let lp = local_predicates(&f, &u);
        let e = f.entry.index();
        // checks follow the def of i in the block: they are locally
        // available at exit, but NOT locally anticipatable at entry
        // (the def of i kills them walking backward).
        assert_eq!(lp.comp[e].count(), u.len());
        assert!(lp.antloc[e].is_empty());
        assert!(lp.transp[e].is_empty()); // i defined: kills both checks
    }
}
