//! INX checks: re-expressing range checks through defining (induction)
//! expressions (§2.3).
//!
//! The paper builds `INX-Checks` from the induction expressions that
//! SSA-based induction-variable analysis associates with subscripts, so
//! that derived induction variables (`j = i + 1`, `k = i + 3`) land in the
//! *same* family as their base variable and invariant subscripts are
//! recognized even when assigned inside the loop.
//!
//! We realize this as a sound forward-substitution rewrite of each check's
//! range expression:
//!
//! * **same-block**: if the reaching definition of a variable `v` in the
//!   check is an assignment in the same block and none of the definition's
//!   right-hand-side variables are redefined in between, substitute;
//! * **global**: if `v` has a unique static definition that dominates the
//!   check, and the definition's right-hand-side variables are themselves
//!   stable (never defined, or uniquely defined dominating it),
//!   substitute.
//!
//! Substitution is repeated to a fixpoint, chasing chains like
//! `j = i + 1; k = j + 2`. Basic induction variables are untouched (their
//! definitions are cyclic, hence not unique-dominating), so checks end up
//! expressed in base IVs and loop invariants — the INX effect. The checks
//! stay at their original sites, so trap timing is unchanged.

use std::collections::HashMap;

use nascent_analysis::context::{Invalidation, PassContext};
use nascent_analysis::reach::reaching_in_block;
use nascent_ir::{CheckExpr, Function, LinForm, Stmt, VarId};

/// Rewrites every check's range expression through defining expressions.
/// Returns the number of substitutions applied.
pub fn rewrite_checks(f: &mut Function) -> usize {
    rewrite_checks_ctx(f, &mut PassContext::new())
}

/// [`rewrite_checks`] over a shared [`PassContext`].
pub fn rewrite_checks_ctx(f: &mut Function, ctx: &mut PassContext) -> usize {
    let dom = ctx.dominators(f);
    let udefs = ctx.unique_defs(f);
    let mut def_count: HashMap<VarId, usize> = HashMap::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Some(v) = s.defined_var() {
                *def_count.entry(v).or_insert(0) += 1;
            }
        }
    }
    let mut params_defined: Vec<VarId> = Vec::new();
    for p in &f.params {
        if let nascent_ir::Param::Scalar(v) = p {
            params_defined.push(*v);
        }
    }
    // a variable is "stable" if its value can never change after its
    // unique def: never textually defined and not a parameter being
    // reassigned (parameters without textual defs are stable too)
    let stable_from = |v: VarId, site_block: nascent_ir::BlockId, site_stmt: usize| -> bool {
        match def_count.get(&v) {
            None => true, // never defined: constant zero or parameter
            Some(1) => udefs.get(&v).is_some_and(|d| {
                d.block != site_block && dom.dominates(d.block, site_block)
                    || (d.block == site_block && d.stmt < site_stmt)
            }),
            _ => false,
        }
    };

    let mut applied = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        for i in 0..f.block(b).stmts.len() {
            for _round in 0..8 {
                let Stmt::Check(c) = &f.block(b).stmts[i] else {
                    break;
                };
                let mut replaced = false;
                let form = c.cond.form().clone();
                for v in form.vars() {
                    // same-block reaching definition
                    let subst: Option<LinForm> = if let Some(site) = reaching_in_block(f, b, i, v) {
                        let rhs = site.rhs.as_ref().map(LinForm::from_expr);
                        match rhs {
                            Some(r)
                                if r.vars()
                                    .iter()
                                    .all(|w| !redefined_between(f, b, site.stmt + 1, i, *w)) =>
                            {
                                Some(r)
                            }
                            _ => None,
                        }
                    } else if let Some(site) = udefs.get(&v) {
                        // global unique def dominating the check
                        let dominates = site.block != b && dom.dominates(site.block, b);
                        if dominates {
                            site.rhs.as_ref().map(LinForm::from_expr).filter(|r| {
                                r.vars()
                                    .iter()
                                    .all(|w| stable_from(*w, site.block, site.stmt))
                            })
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    let Some(r) = subst else { continue };
                    // avoid self-substitution loops (v on its own rhs)
                    if r.uses_var(v) {
                        continue;
                    }
                    if let Some(new_form) = c.cond.form().substitute_var(v, &r) {
                        let new_cond = CheckExpr::new(new_form, c.cond.bound());
                        if let Stmt::Check(c) = &mut f.block_mut(b).stmts[i] {
                            c.cond = new_cond;
                        }
                        applied += 1;
                        replaced = true;
                        break;
                    }
                }
                if !replaced {
                    break;
                }
            }
        }
    }
    if applied > 0 {
        ctx.invalidate(Invalidation::Statements);
    }
    applied
}

fn redefined_between(
    f: &Function,
    b: nascent_ir::BlockId,
    from: usize,
    to: usize,
    v: VarId,
) -> bool {
    f.block(b).stmts[from..to]
        .iter()
        .any(|s| s.defined_var() == Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;
    use nascent_ir::pretty::checks_to_strings;

    #[test]
    fn same_block_definition_substituted() {
        // j = i + 1 then a(j): checks become checks on i
        let mut p = compile(
            "program p\n integer a(1:10)\n integer i, j\n i = 1\n j = i + 1\n a(j) = 0\nend\n",
        )
        .unwrap();
        let n = rewrite_checks(&mut p.functions[0]);
        assert!(n > 0);
        let checks = checks_to_strings(&p.functions[0]);
        // after substituting j = i+1 and then i = 1, checks are constant
        assert!(checks.iter().all(|(_, s)| !s.contains('j')));
    }

    #[test]
    fn derived_ivs_unify_into_base_family() {
        let mut p = compile(
            "program p
 integer a(1:10), b(1:12)
 integer i, j, k
 do i = 1, 9
  j = i + 1
  k = i + 3
  a(j) = 0
  b(k) = 0
 enddo
end
",
        )
        .unwrap();
        rewrite_checks(&mut p.functions[0]);
        let u = crate::universe::Universe::build(&p.functions[0], crate::ImplicationMode::All);
        // all four upper/lower checks now mention only i: two families
        let mut fams: Vec<_> = u.family_of.clone();
        fams.sort();
        fams.dedup();
        assert_eq!(fams.len(), 2, "checks unified into {{i}} and {{-i}}");
    }

    #[test]
    fn loop_iv_is_not_substituted() {
        let mut p = compile(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 9\n a(i) = 0\n enddo\nend\n",
        )
        .unwrap();
        let n = rewrite_checks(&mut p.functions[0]);
        assert_eq!(n, 0);
    }

    #[test]
    fn intervening_redefinition_blocks_substitution() {
        let mut p = compile(
            "program p\n integer a(1:10)\n integer i, j\n i = 1\n j = i + 1\n i = 9\n a(j) = 0\nend\n",
        )
        .unwrap();
        // j's def rhs uses i which is redefined before the check: the
        // same-block rule must refuse (j = i+1 at check time means old i)
        let before = checks_to_strings(&p.functions[0]);
        rewrite_checks(&mut p.functions[0]);
        let after = checks_to_strings(&p.functions[0]);
        assert_eq!(before, after);
    }

    #[test]
    fn rewriting_preserves_execution() {
        use nascent_interp::{run, Limits};
        let src = "program p
 integer a(1:10)
 integer i, j, s
 s = 0
 do i = 1, 8
  j = i + 2
  a(j) = j
  s = s + a(j)
 enddo
 print s
end
";
        let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
        let mut p = compile(src).unwrap();
        rewrite_checks(&mut p.functions[0]);
        nascent_ir::validate::assert_valid(&p);
        let rewritten = run(&p, &Limits::default()).unwrap();
        assert_eq!(naive.output, rewritten.output);
        assert_eq!(naive.dynamic_checks, rewritten.dynamic_checks);
        assert_eq!(naive.trap, rewritten.trap);
    }

    #[test]
    fn invariant_exposed_inside_loop() {
        // k = n * 2 assigned inside the loop: PRX checks on k are killed
        // each iteration; INX rewriting exposes the invariant form 2n
        let mut p = compile(
            "program p
 integer a(1:100)
 integer i, k, n
 n = 10
 do i = 1, 5
  k = n * 2
  a(k) = i
 enddo
end
",
        )
        .unwrap();
        rewrite_checks(&mut p.functions[0]);
        let checks = checks_to_strings(&p.functions[0]);
        // the checks no longer mention k (VarId 1): substitution chases
        // k -> 2n and then n -> 10, leaving constant checks that step 5
        // folds away entirely
        assert!(checks.iter().all(|(_, s)| !s.contains("v1")));
        let mut f = p.functions[0].clone();
        let (t, fa) = crate::fold::fold_constant_checks(&mut f);
        assert_eq!((t, fa), (2, 0));
    }
}
