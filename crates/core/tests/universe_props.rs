//! Property tests for the check universe and implication machinery: the
//! implication relation must agree with arithmetic truth, be transitive
//! under the `All` mode, and the elimination pass must be a
//! dynamic-check-monotone, behavior-preserving transformation.
#![cfg(feature = "proptest-tests")]
// Entire file is property-based; gated so `--no-default-features`
// builds without the vendored proptest shim.

use nascent_frontend::compile;
use nascent_rangecheck::{universe::Universe, ImplicationMode};
use nascent_suite::{random_program, GenConfig};
use proptest::prelude::*;

/// Evaluate a canonical check under an integer environment.
fn eval_check(c: &nascent_ir::CheckExpr, env: &[i64]) -> bool {
    let mut acc = 0i64;
    for (t, coeff) in c.form().terms() {
        let mut prod = 1i64;
        for a in t.atoms() {
            match a {
                nascent_ir::Atom::Var(v) => prod = prod.wrapping_mul(env[v.index()]),
                nascent_ir::Atom::Opaque(_) => return true, // skip opaque cases
            }
        }
        acc = acc.wrapping_add(coeff.wrapping_mul(prod));
    }
    acc <= c.bound()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Whenever the universe says check c implies check d, arithmetic
    /// agrees: every environment satisfying c satisfies d.
    #[test]
    fn implication_masks_agree_with_arithmetic(
        seed in 0u64..3000,
        env in prop::collection::vec(-30i64..30, 12),
    ) {
        let src = random_program(seed, &GenConfig::default());
        let prog = compile(&src).unwrap();
        for f in &prog.functions {
            let u = Universe::build(f, ImplicationMode::All);
            if env.len() < f.vars.len() {
                continue;
            }
            for c in 0..u.len() {
                for d in u.gen_avail[c].iter() {
                    if eval_check(&u.checks[c], &env) {
                        prop_assert!(
                            eval_check(&u.checks[d], &env),
                            "{} does not imply {} at {env:?}\n{src}",
                            u.checks[c],
                            u.checks[d]
                        );
                    }
                }
            }
        }
    }

    /// The implication relation is transitive under `All`.
    #[test]
    fn implication_is_transitive(seed in 0u64..1500) {
        let src = random_program(seed, &GenConfig::default());
        let prog = compile(&src).unwrap();
        for f in &prog.functions {
            let u = Universe::build(f, ImplicationMode::All);
            for a in 0..u.len() {
                for b in u.gen_avail[a].iter() {
                    for c in u.gen_avail[b].iter() {
                        prop_assert!(
                            u.gen_avail[a].contains(c),
                            "{} => {} => {} but not transitively",
                            u.checks[a],
                            u.checks[b],
                            u.checks[c]
                        );
                    }
                }
            }
        }
    }

    /// `implied_by` is the exact transpose of `gen_avail`.
    #[test]
    fn implied_by_is_the_transpose(seed in 0u64..1500) {
        let src = random_program(seed, &GenConfig::default());
        let prog = compile(&src).unwrap();
        for f in &prog.functions {
            for mode in [
                ImplicationMode::All,
                ImplicationMode::CrossFamilyOnly,
                ImplicationMode::None,
            ] {
                let u = Universe::build(f, mode);
                for c in 0..u.len() {
                    for d in u.gen_avail[c].iter() {
                        prop_assert!(u.implied_by[d].contains(c));
                    }
                    for d in u.implied_by[c].iter() {
                        prop_assert!(u.gen_avail[d].contains(c));
                    }
                }
            }
        }
    }

    /// The antic gen set never leaves the family and never strengthens.
    #[test]
    fn antic_gen_stays_in_family_and_weakens(seed in 0u64..1500) {
        let src = random_program(seed, &GenConfig::default());
        let prog = compile(&src).unwrap();
        for f in &prog.functions {
            let u = Universe::build(f, ImplicationMode::All);
            for c in 0..u.len() {
                for d in u.gen_antic[c].iter() {
                    prop_assert_eq!(u.family_of[c], u.family_of[d]);
                    prop_assert!(u.checks[c].bound() <= u.checks[d].bound());
                }
            }
        }
    }

    /// Kill masks cover exactly the checks whose forms mention the var.
    #[test]
    fn kill_masks_are_exact(seed in 0u64..1500) {
        let src = random_program(seed, &GenConfig::default());
        let prog = compile(&src).unwrap();
        for f in &prog.functions {
            let u = Universe::build(f, ImplicationMode::All);
            for (i, c) in u.checks.iter().enumerate() {
                for v in c.vars() {
                    prop_assert!(u.kill_of[&v].contains(i));
                }
            }
            for (v, mask) in &u.kill_of {
                for i in mask.iter() {
                    prop_assert!(u.checks[i].vars().contains(v));
                }
            }
        }
    }
}
