//! Integration tests for the static-discharge tier.
//!
//! The tier deletes checks the optimizer-side value-range analysis
//! proves always-true, before any placement scheme runs. These tests pin
//! its externally visible contract: the suite has provable checks, the
//! discharge-hostile generator has none, the friendly generator is fully
//! provable, and the tier is inert when switched off.

use nascent_rangecheck::{optimize_program, Discharge, OptimizeOptions, Scheme};
use nascent_suite::{discharge_friendly, discharge_hostile, suite, Scale};

fn compile(src: &str) -> nascent_ir::Program {
    nascent_frontend::compile(src).expect("test program compiles")
}

#[test]
fn suite_programs_discharge_checks_under_every_scheme() {
    for scheme in Scheme::EACH {
        let mut programs_with_discharges = 0;
        for b in suite(Scale::Small) {
            let mut prog = compile(&b.source);
            let stats = optimize_program(
                &mut prog,
                &OptimizeOptions::scheme(scheme).with_discharge(Discharge::On),
            );
            if stats.discharged > 0 {
                programs_with_discharges += 1;
            }
        }
        assert!(
            programs_with_discharges > 0,
            "scheme {scheme:?}: no suite program discharged any check"
        );
    }
}

#[test]
fn discharge_off_deletes_nothing() {
    for b in suite(Scale::Small) {
        let mut on = compile(&b.source);
        let mut off = compile(&b.source);
        let off_stats = optimize_program(
            &mut off,
            &OptimizeOptions::scheme(Scheme::Lls).with_discharge(Discharge::Off),
        );
        assert_eq!(
            off_stats.discharged, 0,
            "{}: Off must not discharge",
            b.name
        );
        // On really is a distinct tier: at least one suite program ends
        // up with fewer static checks than the Off run.
        let on_stats = optimize_program(
            &mut on,
            &OptimizeOptions::scheme(Scheme::Lls).with_discharge(Discharge::On),
        );
        assert!(
            on_stats.discharged <= on_stats.static_before,
            "{}: discharged more checks than exist",
            b.name
        );
    }
}

#[test]
fn hostile_generator_discharges_exactly_zero() {
    for seed in 0..25 {
        let mut prog = compile(&discharge_hostile(seed));
        let stats = optimize_program(
            &mut prog,
            &OptimizeOptions::scheme(Scheme::Lls).with_discharge(Discharge::On),
        );
        assert!(
            stats.static_before > 0,
            "hostile seed {seed}: generator produced no checks at all"
        );
        assert_eq!(
            stats.discharged, 0,
            "hostile seed {seed}: value-range tier proved a product-subscript check"
        );
    }
}

#[test]
fn friendly_generator_discharges_every_check() {
    for seed in 0..25 {
        let mut prog = compile(&discharge_friendly(seed));
        let stats = optimize_program(
            &mut prog,
            &OptimizeOptions::scheme(Scheme::Ni).with_discharge(Discharge::On),
        );
        assert!(
            stats.static_before > 0,
            "friendly seed {seed}: generator produced no checks at all"
        );
        assert_eq!(
            stats.discharged, stats.static_before,
            "friendly seed {seed}: some in-bounds check was not proved"
        );
    }
}
