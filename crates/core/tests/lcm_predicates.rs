//! Structural tests for the lazy-code-motion placement on hand-crafted
//! CFGs, checking *where* checks land (not just dynamic counts).

use nascent_frontend::compile;
use nascent_interp::{run, Limits};
use nascent_ir::{pretty::checks_to_strings, Stmt, Terminator};
use nascent_rangecheck::{
    elim::eliminate,
    lcm::{insert, Placement},
    ImplicationMode, OptimizeStats,
};

fn checks_in_block(f: &nascent_ir::Function, b: nascent_ir::BlockId) -> usize {
    f.block(b).stmts.iter().filter(|s| s.is_check()).count()
}

/// Diamond where both arms access the same element and the join accesses
/// it again: SE must leave exactly one pair on each arm-entry path and
/// none at the join.
#[test]
fn se_diamond_full_redundancy() {
    let src = "program p
 integer a(1:10)
 integer i, c
 c = 1
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  a(i) = 2
 endif
 a(i) = 3
end
";
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    insert(
        &mut p.functions[0],
        Placement::SafeEarliest,
        ImplicationMode::All,
        &mut stats,
    );
    eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    let f = &p.functions[0];
    // total static checks after: exactly 2 (one pair before the branch)
    assert_eq!(f.check_count(), 2, "{:?}", checks_to_strings(f));
    // and they sit in the entry block (before the branch)
    assert_eq!(checks_in_block(f, f.entry), 2);
    // behavior preserved
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    assert_eq!(opt.dynamic_checks, 2);
    assert_eq!(naive.dynamic_checks, 4);
}

/// One-armed redundancy: the check after the join is partially redundant;
/// SE inserts on the empty arm so the join check dies.
#[test]
fn se_one_armed_partial_redundancy() {
    let src = "program p
 integer a(1:10)
 integer i, c
 c = 0
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  c = 5
 endif
 a(i) = 3
end
";
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    let ins = insert(
        &mut p.functions[0],
        Placement::SafeEarliest,
        ImplicationMode::All,
        &mut stats,
    );
    let removed = eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    assert!(ins >= 2, "else arm needs the pair inserted");
    assert!(removed >= 2, "join pair becomes fully redundant");
    // dynamically: exactly one pair executes on either path
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.dynamic_checks, 2);
}

/// Latest placement must not sink checks past their use and must still
/// cover the join.
#[test]
fn latest_covers_without_regressing() {
    let src = "program p
 integer a(1:10)
 integer i, c
 c = 0
 i = 2
 if (c > 0) then
  a(i) = 1
 else
  c = 5
 endif
 a(i) = 3
end
";
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    insert(
        &mut p.functions[0],
        Placement::Latest,
        ImplicationMode::All,
        &mut stats,
    );
    eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    nascent_ir::validate::assert_valid(&p);
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    assert!(opt.dynamic_checks <= naive.dynamic_checks);
}

/// A kill (redefinition of the subscript variable) inside one arm blocks
/// hoisting above the branch: SE must keep per-arm placement.
#[test]
fn kill_in_arm_blocks_hoisting() {
    let src = "program p
 integer a(1:10)
 integer i, c
 c = 1
 i = 2
 if (c > 0) then
  i = 3
  a(i) = 1
 else
  a(i) = 2
 endif
end
";
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    insert(
        &mut p.functions[0],
        Placement::SafeEarliest,
        ImplicationMode::All,
        &mut stats,
    );
    eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    let f = &p.functions[0];
    // nothing may sit before the branch: the then-arm redefines i
    assert_eq!(checks_in_block(f, f.entry), 0, "{:?}", checks_to_strings(f));
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    assert_eq!(opt.dynamic_checks, naive.dynamic_checks);
}

/// Loops: SE alone cannot hoist a loop-varying check out of the loop
/// (no conditional checks in PRE), reproducing the paper's observation
/// that preheader insertion is strictly stronger there.
#[test]
fn se_does_not_hoist_out_of_loops() {
    let src = "program p
 integer a(1:10)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
end
";
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    insert(
        &mut p.functions[0],
        Placement::SafeEarliest,
        ImplicationMode::All,
        &mut stats,
    );
    eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(
        opt.dynamic_checks, naive.dynamic_checks,
        "SE has no conditional checks; the loop checks must stay"
    );
}

/// Edge splitting keeps the CFG structurally valid on a branch-dense
/// program.
#[test]
fn edge_splits_remain_valid() {
    let src = "program p
 integer a(1:20)
 integer i, c
 c = 2
 i = 5
 if (c > 0) then
  if (c > 1) then
   a(i) = 1
  endif
 else
  a(i + 1) = 2
 endif
 a(i + 2) = 3
 if (c > 2) then
  a(i) = 4
 endif
end
";
    let naive = run(&compile(src).unwrap(), &Limits::default()).unwrap();
    let mut p = compile(src).unwrap();
    let mut stats = OptimizeStats::default();
    insert(
        &mut p.functions[0],
        Placement::SafeEarliest,
        ImplicationMode::All,
        &mut stats,
    );
    eliminate(&mut p.functions[0], ImplicationMode::All, &mut stats);
    nascent_ir::validate::assert_valid(&p);
    // no dangling blocks: every block's terminator targets exist and the
    // program still runs identically
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    assert!(opt.dynamic_checks <= naive.dynamic_checks);
    // sanity on shape: at least one split block (jump-only) or prepend
    let f = &p.functions[0];
    let _ = f
        .blocks
        .iter()
        .filter(|b| b.stmts.iter().all(Stmt::is_check) && matches!(b.term, Terminator::Jump(_)))
        .count();
}
