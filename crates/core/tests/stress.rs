//! Scale and stress tests: the optimizer must stay fast and sound on
//! programs far larger than the benchmark suite.

use std::fmt::Write as _;
use std::time::Instant;

use nascent_frontend::compile;
use nascent_interp::{run, Limits};
use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};

/// k loops x k distinct accesses: the check universe grows as k².
fn wide_program(k: usize) -> String {
    let n = 4 * k + 8;
    let mut src = String::new();
    let _ = writeln!(src, "program wide");
    let _ = writeln!(src, " integer a({n})");
    let _ = writeln!(src, " integer i");
    for li in 0..k {
        let _ = writeln!(src, " do i = 1, {}", n - k - 1);
        for ai in 0..k {
            let _ = writeln!(src, "  a(i + {}) = i + {li}", ai + 1);
        }
        let _ = writeln!(src, " enddo");
    }
    let _ = writeln!(src, " print a(1)");
    let _ = writeln!(src, "end");
    src
}

/// Deep nesting: d nested loops around one access.
fn deep_program(d: usize) -> String {
    let mut src = String::new();
    let _ = writeln!(src, "program deep");
    let _ = writeln!(src, " integer a(1:{})", 2 * d + 2);
    let vars: Vec<String> = (0..d).map(|i| format!("i{i}")).collect();
    let _ = writeln!(src, " integer {}", vars.join(", "));
    for v in &vars {
        let _ = writeln!(src, " do {v} = 1, 2");
    }
    let sum = vars.join(" + ");
    let _ = writeln!(src, "  a({sum}) = 1");
    for _ in &vars {
        let _ = writeln!(src, " enddo");
    }
    let _ = writeln!(src, " print a({d})");
    let _ = writeln!(src, "end");
    src
}

#[test]
fn wide_universe_optimizes_quickly_and_soundly() {
    let src = wide_program(24); // 576 accesses, >1k distinct checks
    let prog = compile(&src).unwrap();
    let naive = run(&prog, &Limits::default()).unwrap();
    for scheme in [Scheme::Ni, Scheme::Lls, Scheme::All] {
        let t0 = Instant::now();
        let mut p = prog.clone();
        optimize_program(&mut p, &OptimizeOptions::scheme(scheme));
        let took = t0.elapsed();
        assert!(
            took.as_secs_f64() < 20.0,
            "{scheme:?} took {took:?} on the wide program"
        );
        let opt = run(&p, &Limits::default()).unwrap();
        assert_eq!(opt.output, naive.output, "{scheme:?}");
        assert!(opt.dynamic_checks <= naive.dynamic_checks);
    }
}

#[test]
fn deep_nesting_hoists_to_the_top() {
    let src = deep_program(8);
    let prog = compile(&src).unwrap();
    let naive = run(&prog, &Limits::default()).unwrap();
    let mut p = prog.clone();
    optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Lls));
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    // 2^8 = 256 iterations * 2 checks naive; hoisting multiplies the
    // subscript's IV terms outward level by level
    // 2^8 iterations * 2 checks + the final print's own 2 checks
    assert_eq!(naive.dynamic_checks, 514);
    assert!(
        opt.dynamic_checks < naive.dynamic_checks / 4,
        "got {}",
        opt.dynamic_checks
    );
}

#[test]
fn many_functions_compile_and_optimize() {
    // 60 subroutines, each with its own loop
    let mut src = String::new();
    for i in 0..60 {
        let _ = writeln!(src, "subroutine s{i}(n, a)");
        let _ = writeln!(src, " integer n, j");
        let _ = writeln!(src, " real a(1:n)");
        let _ = writeln!(src, " do j = 1, n");
        let _ = writeln!(src, "  a(j) = a(j) + {i}.5");
        let _ = writeln!(src, " enddo");
        let _ = writeln!(src, "end");
    }
    let _ = writeln!(src, "program many");
    let _ = writeln!(src, " real a(1:40)");
    for i in 0..60 {
        let _ = writeln!(src, " call s{i}(40, a)");
    }
    let _ = writeln!(src, " print a(1)");
    let _ = writeln!(src, "end");
    let prog = compile(&src).unwrap();
    let naive = run(&prog, &Limits::default()).unwrap();
    let mut p = prog.clone();
    let stats = optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Lls));
    assert!(stats.hoisted >= 120, "two checks per subroutine loop");
    let opt = run(&p, &Limits::default()).unwrap();
    assert_eq!(opt.output, naive.output);
    assert!(opt.dynamic_checks <= 122);
    assert_eq!(naive.dynamic_checks, 60 * 40 * 4 + 2);
}
