//! Shared-context equivalence: running the pass pipeline over one shared
//! [`PassContext`] (analyses cached and selectively invalidated between
//! passes) must produce exactly the same program as running each pass
//! with its own fresh context (every analysis recomputed from scratch).
//! Any divergence means an invalidation tier is too weak.

use nascent_analysis::context::PassContext;
use nascent_ir::pretty::DisplayFunction;
use nascent_rangecheck::{
    elim, fold, inx, mcm, preheader, strength, CheckKind, ImplicationMode, JustLog,
    OptimizeOptions, OptimizeStats, Scheme,
};
use nascent_suite::{suite, Scale};

/// LLS-style pipeline (INX rewrite, preheader hoist, eliminate, fold),
/// every pass sharing `ctx`.
fn pipeline_shared(f: &mut nascent_ir::Function, ctx: &mut PassContext) {
    let mut stats = OptimizeStats::default();
    let mut log = JustLog::new();
    inx::rewrite_checks_ctx(f, ctx);
    strength::strengthen_ctx(f, ImplicationMode::All, &mut stats, &mut log, ctx);
    preheader::hoist_ctx(f, preheader::HoistKind::InvariantAndLinear, &mut log, ctx);
    mcm::hoist_mcm_ctx(f, &mut log, ctx);
    elim::eliminate_ctx(f, ImplicationMode::All, &mut stats, &mut log, ctx);
    fold::fold_constant_checks(f);
}

/// The same pipeline through the convenience wrappers, each of which
/// builds a fresh context (i.e. recomputes every analysis).
fn pipeline_fresh(f: &mut nascent_ir::Function) {
    let mut stats = OptimizeStats::default();
    inx::rewrite_checks(f);
    strength::strengthen(f, ImplicationMode::All, &mut stats);
    preheader::hoist(f, preheader::HoistKind::InvariantAndLinear);
    mcm::hoist_mcm(f);
    elim::eliminate(f, ImplicationMode::All, &mut stats);
    fold::fold_constant_checks(f);
}

#[test]
fn shared_context_pipeline_matches_fresh_contexts() {
    for b in suite(Scale::Small) {
        let prog = nascent_frontend::compile(&b.source).expect("benchmark compiles");
        for f in &prog.functions {
            let mut shared = f.clone();
            let mut ctx = PassContext::new();
            pipeline_shared(&mut shared, &mut ctx);
            assert_eq!(
                ctx.timings.stale_detections, 0,
                "{}: a pass mutated the CFG without declaring it",
                b.name
            );

            let mut fresh = f.clone();
            pipeline_fresh(&mut fresh);

            assert_eq!(
                DisplayFunction(&shared).to_string(),
                DisplayFunction(&fresh).to_string(),
                "{}: shared-context and fresh-context pipelines diverged",
                b.name
            );
        }
    }
}

#[test]
fn full_optimizer_agrees_across_schemes_and_kinds() {
    // optimize_program drives the shared-context pipeline internally;
    // compare its observable behavior (the optimized IR) across two
    // independent runs to ensure cached state never leaks between
    // functions or configurations.
    for b in suite(Scale::Small).into_iter().take(4) {
        for scheme in [Scheme::Ni, Scheme::Se, Scheme::Lls, Scheme::All] {
            for kind in [CheckKind::Prx, CheckKind::Inx] {
                let opts = OptimizeOptions::scheme(scheme).with_kind(kind);
                let mut p1 = nascent_frontend::compile(&b.source).unwrap();
                let mut p2 = nascent_frontend::compile(&b.source).unwrap();
                let (s1, t1) = nascent_rangecheck::optimize_program_timed(&mut p1, &opts);
                let (s2, t2) = nascent_rangecheck::optimize_program_timed(&mut p2, &opts);
                assert_eq!(s1, s2, "{} {scheme:?} {kind:?}: stats diverged", b.name);
                for (f1, f2) in p1.functions.iter().zip(&p2.functions) {
                    assert_eq!(
                        DisplayFunction(f1).to_string(),
                        DisplayFunction(f2).to_string(),
                        "{} {scheme:?} {kind:?}",
                        b.name
                    );
                }
                assert_eq!(t1.stale_detections, 0, "{} {scheme:?}", b.name);
                assert_eq!(t2.stale_detections, 0, "{} {scheme:?}", b.name);
            }
        }
    }
}
