//! Translation validation of one optimization run.
//!
//! The optimizer emits a [`JustLog`] — one structured event per decision.
//! The verifier treats that log as an *advisory certificate*: nothing in
//! it is trusted. Every claim is re-checked from scratch against the
//! final (optimized) CFG using independently recomputed facts:
//!
//! * availability is re-solved on the **optimized** function over a check
//!   universe built from the **reference** function (widened with every
//!   check the log or the optimized code mentions), so an `Eliminated`
//!   event must name a witness that really is available at the deleted
//!   check's site in the final code;
//! * anticipatability is re-solved on the **reference** function, so an
//!   `Inserted` or `Strengthened` check must be implied by a check the
//!   original program performs on every path from the insertion point;
//! * hoists are re-derived from a fresh loop analysis of the optimized
//!   CFG: entry guards are recomputed from the loop's induction variable,
//!   invariance and loop-limit substitution are replayed, and the hoisted
//!   condition must correspond to a check anticipated at the loop body
//!   entry of the reference;
//! * the value-range analysis ([`crate::vra`]) independently discharges
//!   checks it can prove always-true.
//!
//! The two directions of trap equivalence:
//!
//! * **no missed traps** — every check of the reference program is either
//!   still performed (a check at the same aligned point implies it) or
//!   justified by a re-checked event chain;
//! * **no spurious traps** — every check or `TRAP` of the optimized
//!   program is either matched by a reference check at the same point or
//!   justified (inserted-but-anticipated, hoisted with recomputed guards,
//!   folded from a proven-false check, …).
//!
//! Alignment uses the pipeline's structural guarantee that no pass ever
//! modifies a non-check statement: shared blocks must carry identical
//! non-check statement sequences, and checks are compared per *gap* — the
//! position between two consecutive non-check statements. Blocks the
//! optimizer added (preheaders, split edges) may contain only checks and
//! traps and are mapped to a reference point by following their jump
//! chain to the first shared block.
//!
//! Every failed obligation becomes a [`Diagnostic`] naming the check, the
//! block, and the gap, plus the implication that could not be discharged.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use nascent_analysis::context::PassContext;
use nascent_analysis::dataflow::{solve, Solution};
use nascent_analysis::dom::Dominators;
use nascent_analysis::loops::{LoopForest, LoopInfo};
use nascent_analysis::reach::UniqueDefs;
use nascent_ir::{BlockId, Check, CheckExpr, Function, LinForm, Program, Stmt, Terminator, VarId};
use nascent_rangecheck::dataflow::{antic_step, avail_step, Antic, Avail};
use nascent_rangecheck::util::BitSet;
use nascent_rangecheck::{inx, CheckKind, Discharge, Event, JustLog, OptimizeOptions, Universe};

use crate::vra::{self, Vra};

/// One failed proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Display form of the check the obligation is about.
    pub check: String,
    /// Block the obligation is anchored at.
    pub block: BlockId,
    /// Gap index within the block (position between non-check statements).
    pub gap: usize,
    /// Why the obligation could not be discharged.
    pub reason: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b{}/gap {}: check `{}`: {}",
            self.block.index(),
            self.gap,
            self.check,
            self.reason
        )
    }
}

/// The result of certifying one function (or, summed, one program).
#[derive(Debug, Clone, Default)]
pub struct Certificate {
    /// Total proof obligations examined (reference checks that must not be
    /// lost + optimized checks/traps that must not trap spuriously).
    pub obligations: usize,
    /// Obligations discharged through a re-checked justification event
    /// (the rest were discharged structurally or by VRA alone).
    pub discharged_by_log: usize,
    /// Reference checks the value-range analysis proves always-true at
    /// their original site, independent of the log.
    pub vra_discharged: usize,
    /// `Discharged` events examined (direction C: each must name a real
    /// reference check the trusted VRA re-proves at its site).
    pub discharge_events: usize,
    /// `Discharged` events rejected (tampered, relocated, or claiming an
    /// unprovable verdict). Counted in `diagnostics` too.
    pub discharge_rejected: usize,
    /// Failed obligations. Empty means the optimization run is certified.
    pub diagnostics: Vec<Diagnostic>,
}

impl Certificate {
    /// True when every obligation was discharged.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Accumulates another function's certificate into this one.
    pub fn absorb(&mut self, other: Certificate) {
        self.obligations += other.obligations;
        self.discharged_by_log += other.discharged_by_log;
        self.vra_discharged += other.vra_discharged;
        self.discharge_events += other.discharge_events;
        self.discharge_rejected += other.discharge_rejected;
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(
                f,
                "certified: {} obligations ({} via justification log, {} statically discharged by VRA)",
                self.obligations, self.discharged_by_log, self.vra_discharged
            )?;
            if self.discharge_events > 0 {
                write!(f, "; {} discharge events re-proved", self.discharge_events)?;
            }
            Ok(())
        } else {
            write!(
                f,
                "REJECTED: {} of {} obligations failed",
                self.diagnostics.len(),
                self.obligations
            )
        }
    }
}

/// How one obligation was discharged.
enum Cover {
    /// A check at the same aligned point settles it structurally.
    Direct,
    /// A justification event, re-checked, settles it.
    Log,
    /// The value-range analysis alone settles it.
    Vra,
}

/// Certifies a whole optimization run: `naive` is the program as compiled
/// (before optimization), `optimized` the result, `logs` one log per
/// function in `naive.functions` order. Under [`CheckKind::Inx`] the
/// reference first receives the same induction-expression rewrite — that
/// normalization is shared by optimizer and verifier, not a decision that
/// needs justification (DESIGN.md §7).
pub fn certify_program(
    naive: &Program,
    optimized: &Program,
    logs: &[JustLog],
    opts: &OptimizeOptions,
) -> Certificate {
    let mut sp = nascent_obs::trace::span("certify", "verify");
    sp.attr("functions", naive.functions.len());
    let mut cert = Certificate::default();
    if naive.functions.len() != optimized.functions.len() || naive.functions.len() != logs.len() {
        cert.diagnostics.push(Diagnostic {
            check: "<program>".into(),
            block: BlockId(0),
            gap: 0,
            reason: format!(
                "function count mismatch: {} reference, {} optimized, {} logs",
                naive.functions.len(),
                optimized.functions.len(),
                logs.len()
            ),
        });
        return cert;
    }
    let mut reference = naive.clone();
    if opts.kind == CheckKind::Inx {
        for f in &mut reference.functions {
            inx::rewrite_checks(f);
        }
    }
    for (i, log) in logs.iter().enumerate() {
        cert.absorb(certify_function(
            &reference.functions[i],
            &optimized.functions[i],
            log,
            opts,
        ));
    }
    cert
}

/// Certifies one function pair. `reference` must already carry the shared
/// INX normalization when the optimizer ran with [`CheckKind::Inx`] (use
/// [`certify_program`] for that).
pub fn certify_function(
    reference: &Function,
    optimized: &Function,
    log: &JustLog,
    opts: &OptimizeOptions,
) -> Certificate {
    let mut cert = Certificate::default();
    if optimized.blocks.len() < reference.blocks.len() {
        cert.diagnostics.push(Diagnostic {
            check: "<function>".into(),
            block: BlockId(0),
            gap: 0,
            reason: "optimized function has fewer blocks than the reference".into(),
        });
        return cert;
    }

    // universe on the reference, widened with everything the optimized
    // code or the log mentions, so every implication query resolves
    let mut extra: Vec<CheckExpr> = log.mentioned_checks();
    for b in optimized.block_ids() {
        for s in &optimized.block(b).stmts {
            if let Stmt::Check(c) = s {
                extra.push(c.cond.clone());
                extra.extend(c.guards.iter().cloned());
            }
        }
    }
    // the trusted side recomputes every analysis itself: two fresh
    // per-function contexts (one per CFG), fully independent of whatever
    // the untrusted optimizer cached during its run
    let mut ref_ctx = PassContext::new();
    let mut opt_ctx = PassContext::new();
    let u = Universe::build_with_extra_ctx(reference, opts.implications, &extra, &mut ref_ctx);
    // summaries are per-(function, universe): Antic is summarized over the
    // reference CFG, Avail over the optimized one, sharing the universe
    let ref_antic = solve(reference, &Antic::new(reference, &u));
    let opt_avail = solve(optimized, &Avail::new(optimized, &u));

    let ctx = Ctx {
        ref_f: reference,
        opt_f: optimized,
        log,
        u,
        ref_antic,
        opt_avail,
        vra_ref: vra::analyze_with(reference, &mut ref_ctx),
        vra_opt: vra::analyze_with(optimized, &mut opt_ctx),
        forest: opt_ctx.loop_forest(optimized),
        dom: opt_ctx.dominators(optimized),
        udefs: opt_ctx.unique_defs(optimized),
        shared: reference.blocks.len(),
    };

    // structural alignment of shared blocks
    let mut aligned = vec![true; ctx.shared];
    for (bi, ok) in aligned.iter_mut().enumerate() {
        let b = BlockId(bi as u32);
        let rn: Vec<&Stmt> = ctx
            .ref_f
            .block(b)
            .stmts
            .iter()
            .filter(|s| !is_item(s))
            .collect();
        let on: Vec<&Stmt> = ctx
            .opt_f
            .block(b)
            .stmts
            .iter()
            .filter(|s| !is_item(s))
            .collect();
        if rn.len() != on.len() || rn.iter().zip(&on).any(|(a, c)| a != c) {
            cert.diagnostics.push(Diagnostic {
                check: "<block>".into(),
                block: b,
                gap: 0,
                reason: "non-check statement sequences diverge between reference and optimized"
                    .into(),
            });
            *ok = false;
        }
    }

    // direction A: every reference check is covered
    for (bi, ok) in aligned.iter().enumerate() {
        if !ok {
            continue;
        }
        let b = BlockId(bi as u32);
        let mut gap = 0;
        for (idx, s) in ctx.ref_f.block(b).stmts.iter().enumerate() {
            if !is_item(s) {
                gap += 1;
                continue;
            }
            let Stmt::Check(c) = s else { continue };
            if !c.is_unconditional() {
                continue; // the reference is naive: only unconditional checks
            }
            cert.obligations += 1;
            if ctx.vra_ref.at(ctx.ref_f, b, idx).verdict(&c.cond) == Some(true) {
                cert.vra_discharged += 1;
            }
            let mut visited = HashSet::new();
            match ctx.cover_ref_check(b, gap, Some(idx), &c.cond, 16, &mut visited) {
                Ok(Cover::Log) => cert.discharged_by_log += 1,
                Ok(_) => {}
                Err(reason) => cert.diagnostics.push(Diagnostic {
                    check: c.cond.to_string(),
                    block: b,
                    gap,
                    reason: format!("reference check not covered: {reason}"),
                }),
            }
        }
    }

    // direction B: every optimized check or trap is justified
    for b in ctx.opt_f.block_ids() {
        let bi = b.index();
        if bi < ctx.shared && !aligned[bi] {
            continue;
        }
        if bi >= ctx.shared {
            // optimizer-created block: checks and traps only
            if ctx.opt_f.block(b).stmts.iter().any(|s| !is_item(s)) {
                cert.diagnostics.push(Diagnostic {
                    check: "<block>".into(),
                    block: b,
                    gap: 0,
                    reason: "optimizer-created block contains a non-check statement".into(),
                });
                continue;
            }
        }
        let mut gap = 0;
        for (idx, s) in ctx.opt_f.block(b).stmts.iter().enumerate() {
            match s {
                Stmt::Check(c) => {
                    cert.obligations += 1;
                    match ctx.justify_opt_check(b, gap, idx, c) {
                        Ok(Cover::Log) => cert.discharged_by_log += 1,
                        Ok(_) => {}
                        Err(reason) => cert.diagnostics.push(Diagnostic {
                            check: c.cond.to_string(),
                            block: b,
                            gap,
                            reason: format!("optimized check not justified: {reason}"),
                        }),
                    }
                }
                Stmt::Trap { .. } => {
                    cert.obligations += 1;
                    match ctx.justify_trap(b, gap, idx) {
                        Ok(Cover::Log) => cert.discharged_by_log += 1,
                        Ok(_) => {}
                        Err(reason) => cert.diagnostics.push(Diagnostic {
                            check: "TRAP".into(),
                            block: b,
                            gap,
                            reason: format!("trap not justified: {reason}"),
                        }),
                    }
                }
                _ => gap += 1,
            }
        }
    }

    // direction C: every `Discharged` event names a real reference check
    // the trusted VRA re-proves at its site. Direction A alone cannot
    // catch a tampered or relocated event — its VRA fallback would cover
    // the deletion without consulting the log — so the events themselves
    // are obligations: an event pointing at a nonexistent site or an
    // unprovable check means the optimizer's justification was forged.
    for e in log.events.iter() {
        let Event::Discharged { block, check, .. } = e else {
            continue;
        };
        cert.obligations += 1;
        cert.discharge_events += 1;
        let reject = |cert: &mut Certificate, reason: String| {
            cert.discharge_rejected += 1;
            cert.diagnostics.push(Diagnostic {
                check: check.to_string(),
                block: *block,
                gap: 0,
                reason,
            });
        };
        if opts.discharge == Discharge::Off {
            reject(
                &mut cert,
                "discharge event logged but the discharge tier is off".into(),
            );
            continue;
        }
        if block.index() >= ctx.shared {
            reject(
                &mut cert,
                format!(
                    "discharge event names b{}, outside the reference function",
                    block.index()
                ),
            );
            continue;
        }
        let proved = ctx
            .ref_f
            .block(*block)
            .stmts
            .iter()
            .enumerate()
            .any(|(idx, s)| match s {
                Stmt::Check(c) if c.is_unconditional() && &c.cond == check => {
                    ctx.vra_ref.at(ctx.ref_f, *block, idx).verdict(check) == Some(true)
                }
                _ => false,
            });
        if !proved {
            reject(
                &mut cert,
                "discharge not re-proved: no matching reference check at this block \
                 has a provably-true verdict under the trusted value-range analysis"
                    .into(),
            );
        }
    }

    cert
}

/// True for statements that participate in gap alignment (everything the
/// optimizer may add or remove).
fn is_item(s: &Stmt) -> bool {
    matches!(s, Stmt::Check(_) | Stmt::Trap { .. })
}

/// Guard-list equivalence modulo constant-true guards (which the fold
/// pass drops from conditional checks).
fn guards_match(actual: &[CheckExpr], expected: &[CheckExpr]) -> bool {
    expected
        .iter()
        .all(|g| actual.contains(g) || g.constant_verdict() == Some(true))
        && actual.iter().all(|g| expected.contains(g))
}

/// Replay of the loop-limit substitution rule (§3.3): the induction
/// variable is replaced by the bound that maximizes its signed
/// contribution, so the substituted check covers every body-valid value.
fn substitute_limit(info: &LoopInfo, cond: &CheckExpr) -> Option<CheckExpr> {
    let coeff = info.linear_in_iv(cond.form())?;
    let iv = info.iv.as_ref()?;
    let bound_form = if coeff > 0 {
        iv.upper.as_ref()?
    } else {
        iv.lower.as_ref()?
    };
    let substituted = cond.form().substitute_var(iv.var, bound_form)?;
    Some(CheckExpr::new(substituted, cond.bound()))
}

struct Ctx<'a> {
    ref_f: &'a Function,
    opt_f: &'a Function,
    log: &'a JustLog,
    u: Universe,
    ref_antic: Solution<BitSet>,
    opt_avail: Solution<BitSet>,
    vra_ref: Vra,
    vra_opt: Vra,
    forest: Arc<LoopForest>,
    dom: Arc<Dominators>,
    udefs: Arc<UniqueDefs>,
    shared: usize,
}

impl Ctx<'_> {
    fn implies(&self, c: &CheckExpr, d: &CheckExpr) -> bool {
        self.u.implies_checks(c, d) == Some(true)
    }

    /// Availability fact on the **optimized** function at the end of gap
    /// `g` of block `b` (checks within the gap included: they execute at
    /// the same program progress as anything else in the gap).
    fn avail_at_gap(&self, b: BlockId, g: usize) -> BitSet {
        let mut fact = self.opt_avail.entry[b.index()].clone();
        let mut nc = 0;
        for s in &self.opt_f.block(b).stmts {
            if is_item(s) {
                avail_step(&self.u, &mut fact, s);
            } else {
                if nc == g {
                    break;
                }
                avail_step(&self.u, &mut fact, s);
                nc += 1;
            }
        }
        fact
    }

    /// Anticipatability fact on the **reference** function at the start of
    /// gap `g` of block `b` (the gap's own checks included).
    fn antic_at_gap(&self, b: BlockId, g: usize) -> BitSet {
        let stmts = &self.ref_f.block(b).stmts;
        let n_nc = stmts.iter().filter(|s| !is_item(s)).count();
        let mut fact = self.ref_antic.exit[b.index()].clone();
        let mut seen = 0;
        for s in stmts.iter().rev() {
            if is_item(s) {
                if n_nc - seen >= g {
                    antic_step(&self.u, &mut fact, s);
                }
            } else {
                if n_nc - 1 - seen < g {
                    break;
                }
                antic_step(&self.u, &mut fact, s);
                seen += 1;
            }
        }
        fact
    }

    /// Unconditional optimized checks present in gap `g` of block `b`,
    /// plus whether the gap (or an earlier one) holds a `TRAP`.
    fn opt_gap_contents(&self, b: BlockId, g: usize) -> (Vec<&CheckExpr>, bool) {
        let mut checks = Vec::new();
        let mut trapped = false;
        let mut nc = 0;
        for s in &self.opt_f.block(b).stmts {
            match s {
                Stmt::Check(c) if nc == g && c.is_unconditional() => checks.push(&c.cond),
                Stmt::Trap { .. } if nc <= g => trapped = true,
                _ if !is_item(s) => {
                    if nc == g {
                        break;
                    }
                    nc += 1;
                }
                _ => {}
            }
        }
        (checks, trapped)
    }

    /// Reference checks present in gap `g` of block `b`.
    fn ref_gap_checks(&self, b: BlockId, g: usize) -> Vec<&CheckExpr> {
        let mut checks = Vec::new();
        let mut nc = 0;
        for s in &self.ref_f.block(b).stmts {
            match s {
                Stmt::Check(c) if nc == g && c.is_unconditional() => checks.push(&c.cond),
                _ if !is_item(s) => {
                    if nc == g {
                        break;
                    }
                    nc += 1;
                }
                _ => {}
            }
        }
        checks
    }

    /// Follows jump chains from an optimizer-created block to the first
    /// shared block, which provides the reference point for its checks.
    fn map_new_block(&self, b: BlockId) -> Option<BlockId> {
        let mut cur = b;
        let mut seen = HashSet::new();
        while cur.index() >= self.shared {
            if !seen.insert(cur) {
                return None;
            }
            match &self.opt_f.block(cur).term {
                Terminator::Jump(t) => cur = *t,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Loops plausibly preheadered by `ph`: direct match, or the header is
    /// reachable from `ph` by a short jump chain (edge splitting may have
    /// interposed check-only blocks).
    fn loops_for_preheader(&self, ph: BlockId) -> Vec<&LoopInfo> {
        let mut chain = vec![ph];
        let mut cur = ph;
        for _ in 0..8 {
            match &self.opt_f.block(cur).term {
                Terminator::Jump(t) if !chain.contains(t) => {
                    chain.push(*t);
                    cur = *t;
                }
                _ => break,
            }
        }
        self.forest
            .loops
            .iter()
            .filter(|l| {
                l.preheader == Some(ph)
                    || l.preheader.is_some_and(|p| chain.contains(&p))
                    || chain.contains(&l.header)
            })
            .collect()
    }

    /// Replay of the optimizer's loop-limit-temporary normalization: a
    /// uniquely defined variable whose definition does not dominate `at`
    /// is substituted by its defining expression when that expression is
    /// evaluable at the end of `at`. Sound to replay on the final CFG:
    /// no pass after hoisting adds variable definitions, and added blocks
    /// preserve dominance among original blocks.
    fn normalize_form(&self, at: BlockId, form: &LinForm) -> LinForm {
        let stable = |w: VarId| -> bool {
            match self.udefs.get(&w) {
                Some(site) => site.block == at || self.dom.dominates(site.block, at),
                None => self
                    .opt_f
                    .blocks
                    .iter()
                    .all(|b| b.stmts.iter().all(|s| s.defined_var() != Some(w))),
            }
        };
        let mut cur = form.clone();
        for _ in 0..8 {
            let mut changed = false;
            for v in cur.vars() {
                let Some(site) = self.udefs.get(&v) else {
                    continue;
                };
                if site.block == at || self.dom.dominates(site.block, at) {
                    continue;
                }
                let Some(rhs) = &site.rhs else { continue };
                let r = LinForm::from_expr(rhs);
                if r.uses_var(v) || !r.vars().iter().all(|w| stable(*w)) {
                    continue;
                }
                if let Some(next) = cur.substitute_var(v, &r) {
                    cur = next;
                    changed = true;
                    break;
                }
            }
            if !changed {
                break;
            }
        }
        cur
    }

    fn normalize_check(&self, at: BlockId, ce: &CheckExpr) -> CheckExpr {
        CheckExpr::new(self.normalize_form(at, ce.form()), ce.bound())
    }

    // ---------------- direction A: no missed traps ----------------

    fn cover_ref_check(
        &self,
        b: BlockId,
        g: usize,
        ref_idx: Option<usize>,
        c: &CheckExpr,
        depth: u32,
        visited: &mut HashSet<CheckExpr>,
    ) -> Result<Cover, String> {
        let (present, trapped) = self.opt_gap_contents(b, g);
        // an unconditional trap at (or before) the same gap means the
        // optimized program stops at the same progress the check would
        // have been reached: nothing can be missed past it
        if trapped {
            return Ok(Cover::Direct);
        }
        if present.iter().any(|x| self.implies(x, c)) {
            return Ok(Cover::Direct);
        }
        if depth == 0 || !visited.insert(c.clone()) {
            return Err("justification chain too deep or cyclic".into());
        }
        let mut tried = Vec::new();
        for e in &self.log.events {
            match e {
                Event::Eliminated {
                    block,
                    check,
                    because,
                } if *block == b && check == c => {
                    if !self.implies(because, c) {
                        tried.push(format!("`{because}` does not imply `{c}`"));
                        continue;
                    }
                    match self.u.id(because) {
                        Some(id) if self.avail_at_gap(b, g).contains(id) => return Ok(Cover::Log),
                        _ => tried.push(format!(
                            "witness `{because}` not available at the deleted site"
                        )),
                    }
                }
                Event::Strengthened { block, from, to } if *block == b && from == c => {
                    if !self.implies(to, c) {
                        tried.push(format!("strengthened `{to}` does not imply `{c}`"));
                        continue;
                    }
                    match self.cover_ref_check(b, g, None, to, depth - 1, visited) {
                        Ok(_) => return Ok(Cover::Log),
                        Err(r) => tried.push(format!("strengthened `{to}` uncovered: {r}")),
                    }
                }
                Event::FoldedTrue { block, check } if *block == b && check == c => {
                    if c.constant_verdict() == Some(true) {
                        return Ok(Cover::Log);
                    }
                    if let Some(idx) = ref_idx {
                        if self.vra_ref.at(self.ref_f, b, idx).verdict(c) == Some(true) {
                            return Ok(Cover::Log);
                        }
                    }
                    tried.push(format!("folded-true `{c}` is not provably true"));
                }
                Event::HoistCovered {
                    block,
                    check,
                    preheader,
                    by,
                } if *block == b && check == c => {
                    match self.verify_hoist_cover(b, g, c, *preheader, by) {
                        Ok(()) => return Ok(Cover::Log),
                        Err(r) => tried.push(format!("hoist cover by `{by}` fails: {r}")),
                    }
                }
                Event::Discharged { block, check, .. } if *block == b && check == c => {
                    // the recorded reason is advisory; the trusted VRA
                    // must re-prove the verdict at the original site
                    if let Some(idx) = ref_idx {
                        if self.vra_ref.at(self.ref_f, b, idx).verdict(c) == Some(true) {
                            return Ok(Cover::Log);
                        }
                    }
                    tried.push(format!("discharged `{c}` is not provably in-bounds"));
                }
                _ => {}
            }
        }
        // VRA fallback: the check can never fail at its original site
        if let Some(idx) = ref_idx {
            if self.vra_ref.at(self.ref_f, b, idx).verdict(c) == Some(true) {
                return Ok(Cover::Vra);
            }
        }
        if tried.is_empty() {
            Err("no covering check in the gap and no justification event".into())
        } else {
            Err(tried.join("; "))
        }
    }

    /// Re-checks a `HoistCovered` claim: the deleted in-loop check must be
    /// covered by the preheader check under the invariance or loop-limit
    /// substitution rule, with the induction variable still at a
    /// body-valid value at the deleted site, and the preheader check must
    /// itself exist (or be accounted for).
    fn verify_hoist_cover(
        &self,
        b: BlockId,
        g: usize,
        c: &CheckExpr,
        ph: BlockId,
        by: &CheckExpr,
    ) -> Result<(), String> {
        let loops = self.loops_for_preheader(ph);
        if loops.is_empty() {
            return Err(format!("no loop has preheader b{}", ph.index()));
        }
        let mut last = String::from("no candidate loop matches");
        for info in loops {
            if !info.blocks.contains(&b) {
                last = format!("b{} is not in the loop body", b.index());
                continue;
            }
            let Some(iv) = &info.iv else {
                last = "loop has no recognized induction variable".into();
                continue;
            };
            let Some(ge) = iv.entry_guard() else {
                last = "loop has no computable entry guard".into();
                continue;
            };
            let expected = match ge.constant_verdict() {
                Some(true) => vec![],
                // the loop provably never runs: the deleted check was
                // unreachable, coverage is vacuous
                Some(false) => return Ok(()),
                None => vec![ge],
            };
            let covers = if info.is_invariant(c.form()) {
                by.family_key() == c.family_key() && by.bound() <= c.bound()
            } else if info.linear_in_iv(c.form()).is_some() {
                // the substitution only covers sites where the induction
                // variable still holds a body-valid value: reject if it
                // was redefined earlier in this block
                let iv_redefined = self
                    .ref_f
                    .block(b)
                    .stmts
                    .iter()
                    .filter(|s| !is_item(s))
                    .take(g)
                    .any(|s| s.defined_var() == Some(iv.var));
                if iv_redefined {
                    last = "induction variable redefined before the deleted check".into();
                    false
                } else {
                    match substitute_limit(info, c) {
                        Some(subst) => {
                            by.family_key() == subst.family_key() && by.bound() <= subst.bound()
                        }
                        None => {
                            last = "loop-limit substitution not applicable".into();
                            false
                        }
                    }
                }
            } else {
                last = "deleted check neither invariant nor linear in the loop".into();
                false
            };
            if covers {
                return self.resolve_cond_check(ph, &expected, by, 8);
            }
            if last == "no candidate loop matches" {
                last = format!("`{by}` does not cover `{c}` under the hoist rules");
            }
        }
        Err(last)
    }

    /// The hoisted conditional check claimed at `ph` must be present there
    /// with matching guards — or its absence must itself be justified
    /// (eliminated with an available witness, folded as constant-true,
    /// vacuous because a guard is constant-false, or re-hoisted outward).
    fn resolve_cond_check(
        &self,
        ph: BlockId,
        expected_guards: &[CheckExpr],
        cond: &CheckExpr,
        depth: u32,
    ) -> Result<(), String> {
        if depth == 0 {
            return Err("re-hoist chain too deep".into());
        }
        if expected_guards
            .iter()
            .any(|gd| gd.constant_verdict() == Some(false))
        {
            return Ok(()); // guard can never hold: the check never fires
        }
        for s in &self.opt_f.block(ph).stmts {
            if let Stmt::Check(c) = s {
                if &c.cond == cond && guards_match(&c.guards, expected_guards) {
                    return Ok(());
                }
            }
        }
        for e in &self.log.events {
            match e {
                Event::Eliminated {
                    block,
                    check,
                    because,
                } if *block == ph && check == cond && self.implies(because, cond) => {
                    // the conditional check sat at the end of the
                    // preheader: use the fact after the whole block
                    let stmts = &self.opt_f.block(ph).stmts;
                    let n_nc = stmts.iter().filter(|s| !is_item(s)).count();
                    if let Some(id) = self.u.id(because) {
                        if self.avail_at_gap(ph, n_nc).contains(id) {
                            return Ok(());
                        }
                    }
                }
                Event::FoldedTrue { block, check }
                    if *block == ph && check == cond && cond.constant_verdict() == Some(true) =>
                {
                    return Ok(());
                }
                Event::FoldedFalse { block, check }
                    if *block == ph
                        && check == cond
                        && cond.constant_verdict() == Some(false)
                        && self
                            .opt_f
                            .block(ph)
                            .stmts
                            .iter()
                            .any(|s| matches!(s, Stmt::Trap { .. })) =>
                {
                    // the hoisted check folded into an unconditional trap:
                    // every execution through the preheader traps before
                    // the covered in-loop site, so coverage is vacuous
                    // (the trap itself is a separate obligation)
                    return Ok(());
                }
                Event::Rehoisted {
                    preheader,
                    guards,
                    cond: moved_cond,
                    from_block,
                    original,
                } if *from_block == ph
                    && &original.cond == cond
                    && guards_match(&original.guards, expected_guards) =>
                {
                    self.verify_rehoist(*preheader, guards, moved_cond, *from_block, original)?;
                    return self.resolve_cond_check(*preheader, guards, moved_cond, depth - 1);
                }
                _ => {}
            }
        }
        Err(format!(
            "hoisted check `{cond}` not found in preheader b{} and its absence is unjustified",
            ph.index()
        ))
    }

    /// Re-checks a `Rehoisted` event by replaying the optimizer's rewrite:
    /// normalization of loop-limit temporaries, invariance of the guards,
    /// invariance-or-substitution of the condition, and the outer entry
    /// guard appended.
    fn verify_rehoist(
        &self,
        preheader: BlockId,
        eguards: &[CheckExpr],
        econd: &CheckExpr,
        from_block: BlockId,
        original: &Check,
    ) -> Result<(), String> {
        let loops = self.loops_for_preheader(preheader);
        if loops.is_empty() {
            return Err(format!("no loop has preheader b{}", preheader.index()));
        }
        let mut last = String::from("no candidate loop matches the re-hoist");
        for info in loops {
            let [latch] = info.latches[..] else {
                last = "loop has multiple latches".into();
                continue;
            };
            if !info.blocks.contains(&from_block) || from_block == info.header {
                last = format!("b{} is not a hoistable body block", from_block.index());
                continue;
            }
            if !self.dom.dominates(from_block, latch) {
                last = format!("b{} does not dominate the latch", from_block.index());
                continue;
            }
            let outer = match &info.iv {
                Some(iv) => match iv.entry_guard() {
                    Some(gd) => match gd.constant_verdict() {
                        Some(true) => None,
                        Some(false) => {
                            last = "outer loop provably never runs".into();
                            continue;
                        }
                        None => Some(gd),
                    },
                    None => {
                        last = "outer loop has no computable entry guard".into();
                        continue;
                    }
                },
                None => {
                    last = "outer loop has no induction variable".into();
                    continue;
                }
            };
            let nguards: Vec<CheckExpr> = original
                .guards
                .iter()
                .map(|gd| self.normalize_check(preheader, gd))
                .collect();
            if !nguards.iter().all(|gd| info.is_invariant(gd.form())) {
                last = "a guard is not invariant in the outer loop".into();
                continue;
            }
            let ncond = self.normalize_check(preheader, &original.cond);
            let expect_cond = if info.is_invariant(ncond.form()) {
                Some(ncond.clone())
            } else {
                substitute_limit(info, &ncond).map(|c| self.normalize_check(preheader, &c))
            };
            let Some(expect_cond) = expect_cond else {
                last = "condition neither invariant nor substitutable in the outer loop".into();
                continue;
            };
            if &expect_cond != econd {
                last = format!("rewritten condition should be `{expect_cond}`, log says `{econd}`");
                continue;
            }
            let mut expect_guards = nguards;
            if let Some(gd) = outer {
                expect_guards.push(self.normalize_check(preheader, &gd));
            }
            if !guards_match(eguards, &expect_guards) {
                last = "rewritten guards do not match the recomputed guard list".into();
                continue;
            }
            return Ok(());
        }
        Err(last)
    }

    // ---------------- direction B: no spurious traps ----------------

    fn justify_opt_check(
        &self,
        b: BlockId,
        g: usize,
        idx: usize,
        check: &Check,
    ) -> Result<Cover, String> {
        // reference point: same (block, gap) for shared blocks, the entry
        // of the first shared jump-successor for optimizer-created blocks
        let (ant_b, ant_g) = if b.index() < self.shared {
            (b, g)
        } else {
            match self.map_new_block(b) {
                Some(s) => (s, 0),
                None => {
                    return Err(
                        "optimizer-created block does not reach a shared block by jumps".into(),
                    )
                }
            }
        };
        // a reference check at the same point that implies this one means
        // the reference traps whenever this check does
        if self
            .ref_gap_checks(ant_b, ant_g)
            .iter()
            .any(|c| self.implies(c, &check.cond))
        {
            return Ok(Cover::Direct);
        }
        let mut tried = Vec::new();
        if check.is_unconditional() {
            let inserted = self.log.events.iter().any(|e| {
                matches!(e, Event::Inserted { block, check: x } if *block == b && x == &check.cond)
                    || matches!(e, Event::Strengthened { block, to, .. } if *block == b && to == &check.cond)
            });
            if inserted {
                let fact = self.antic_at_gap(ant_b, ant_g);
                if fact
                    .iter()
                    .any(|d| self.implies(&self.u.checks[d], &check.cond))
                {
                    return Ok(Cover::Log);
                }
                tried.push(format!(
                    "inserted check not anticipated at b{}/gap {}",
                    ant_b.index(),
                    ant_g
                ));
            }
        }
        // hoisted (possibly with all guards folded away) or re-hoisted
        match self.justify_cond_at(b, &check.guards, &check.cond, 8) {
            Ok(()) => return Ok(Cover::Log),
            Err(r) => tried.push(r),
        }
        // VRA fallback on the optimized function: a check that can never
        // fail can never trap spuriously
        if self.vra_opt.at(self.opt_f, b, idx).verdict(&check.cond) == Some(true) {
            return Ok(Cover::Vra);
        }
        Err(tried.join("; "))
    }

    /// Justifies a conditional (or guard-folded) check at `b`: it is a
    /// hoist into this preheader (recomputed guards and an anticipated
    /// origin at the loop body entry), or a re-hoist whose origin is
    /// justified recursively.
    fn justify_cond_at(
        &self,
        b: BlockId,
        guards: &[CheckExpr],
        cond: &CheckExpr,
        depth: u32,
    ) -> Result<(), String> {
        if depth == 0 {
            return Err("re-hoist justification chain too deep".into());
        }
        let mut tried = Vec::new();
        match self.verify_hoist(b, guards, cond) {
            Ok(()) => return Ok(()),
            Err(r) => tried.push(r),
        }
        for e in &self.log.events {
            if let Event::Rehoisted {
                preheader,
                guards: eg,
                cond: ec,
                from_block,
                original,
            } = e
            {
                if *preheader == b && ec == cond && guards_match(guards, eg) {
                    match self
                        .verify_rehoist(*preheader, eg, ec, *from_block, original)
                        .and_then(|()| {
                            self.justify_cond_at(
                                *from_block,
                                &original.guards,
                                &original.cond,
                                depth - 1,
                            )
                        }) {
                        Ok(()) => return Ok(()),
                        Err(r) => tried.push(format!("re-hoist from b{}: {r}", from_block.index())),
                    }
                }
            }
        }
        Err(tried.join("; "))
    }

    /// Re-checks a hoist into preheader `b`: the guards must equal the
    /// recomputed loop entry guard, and the condition must correspond —
    /// as an invariant or by loop-limit substitution — to a check the
    /// reference anticipates at the loop's body entry.
    fn verify_hoist(
        &self,
        b: BlockId,
        guards: &[CheckExpr],
        cond: &CheckExpr,
    ) -> Result<(), String> {
        let loops = self.loops_for_preheader(b);
        if loops.is_empty() {
            return Err(format!("b{} is not a loop preheader", b.index()));
        }
        let mut last = String::from("no candidate loop certifies the hoist");
        for info in loops {
            let Some(iv) = &info.iv else {
                last = "loop has no recognized induction variable".into();
                continue;
            };
            let Some(ge) = iv.entry_guard() else {
                last = "loop has no computable entry guard".into();
                continue;
            };
            let expected = match ge.constant_verdict() {
                Some(true) => vec![],
                Some(false) => {
                    last = "loop provably never runs yet a check was hoisted for it".into();
                    continue;
                }
                None => vec![ge],
            };
            if !guards_match(guards, &expected) {
                last = "guards do not match the recomputed loop entry guard".into();
                continue;
            }
            let Some(be) = info.body_entry else {
                last = "loop has no unique body entry".into();
                continue;
            };
            if be.index() >= self.shared {
                last = "loop body entry is not a shared block".into();
                continue;
            }
            let fact = &self.ref_antic.entry[be.index()];
            for d in fact.iter() {
                let dc = &self.u.checks[d];
                if (dc == cond && info.is_invariant(cond.form()))
                    || substitute_limit(info, dc).as_ref() == Some(cond)
                {
                    return Ok(());
                }
            }
            last = format!(
                "`{cond}` does not correspond to any check anticipated at the loop body entry"
            );
        }
        Err(last)
    }

    /// A `TRAP` is justified when it replaced a check proven false at
    /// compile time — and that check is one the reference performs (or
    /// anticipates) at the same point, so the reference traps here too.
    fn justify_trap(&self, b: BlockId, g: usize, idx: usize) -> Result<Cover, String> {
        // unreachable trap: nothing to justify
        if self.vra_opt.at(self.opt_f, b, idx).bottom {
            return Ok(Cover::Vra);
        }
        let (ant_b, ant_g) = if b.index() < self.shared {
            (b, g)
        } else {
            match self.map_new_block(b) {
                Some(s) => (s, 0),
                None => {
                    return Err(
                        "optimizer-created block does not reach a shared block by jumps".into(),
                    )
                }
            }
        };
        for e in &self.log.events {
            let Event::FoldedFalse { block, check } = e else {
                continue;
            };
            if *block != b || check.constant_verdict() != Some(false) {
                continue;
            }
            if self
                .ref_gap_checks(ant_b, ant_g)
                .iter()
                .any(|c| self.implies(c, check))
            {
                return Ok(Cover::Log);
            }
            let fact = self.antic_at_gap(ant_b, ant_g);
            if fact.iter().any(|d| self.implies(&self.u.checks[d], check)) {
                return Ok(Cover::Log);
            }
            // a hoisted check whose guards all folded constant-true and
            // whose condition folded constant-false: the unconditional
            // trap fires exactly when the certified conditional check
            // would have
            if self.justify_cond_at(b, &[], check, 8).is_ok() {
                return Ok(Cover::Log);
            }
        }
        Err("no folded-false justification matches this trap".into())
    }
}
