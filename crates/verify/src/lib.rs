//! Static safety certifier for the range-check optimizer.
//!
//! Two cooperating passes (see DESIGN.md §2 row 17):
//!
//! * [`vra`] — symbolic value-range analysis: an SSA-based interval
//!   analysis over [`nascent_ir::LinForm`] bounds that proves a
//!   canonical check `form <= bound` true, false, or unknown.
//! * [`validate`] — translation validation: independently re-checks the
//!   justification log emitted by `nascent_rangecheck::optimize_function`
//!   against the optimized CFG, using VRA plus a from-scratch
//!   availability recomputation. Any uncovered obligation becomes a
//!   structured [`Diagnostic`] naming the check, the location, and the
//!   failed implication.

pub mod vra;

mod validate;

pub use validate::{certify_function, certify_program, Certificate, Diagnostic};
