//! Symbolic value-range analysis over canonical check forms.
//!
//! A forward data-flow analysis that tracks, per scalar variable, a
//! constant interval and optional *symbolic* bounds (a [`LinForm`] known
//! to be `>=` or `<=` the variable). Facts come from assignments, from
//! performed (unconditional) checks, from branch conditions on each CFG
//! edge, and from induction-variable trip-count facts at loop body
//! entries (the body-valid `lower <= iv <= upper` range computed by
//! `nascent_analysis::loops`). Loop heads are widened so the fixpoint
//! terminates.
//!
//! The analysis answers one question: is a canonical check
//! `form <= bound` provably true, provably false, or unknown at a
//! program point ([`Env::verdict`]).
//!
//! Like the optimizer's data-flow systems, `Call` statements are assumed
//! not to modify the caller's scalars (the frontend passes scalars by
//! value); `Load` makes the target unknown. All interval arithmetic is
//! *checked*: an overflowing bound degrades to "unbounded" rather than
//! wrapping, because the concrete semantics wrap and a wrapped abstract
//! bound would be unsound.

use std::collections::HashMap;

use nascent_ir::{
    Atom, BinOp, CheckExpr, Expr, Function, LinForm, Stmt, Term, Terminator, UnOp, VarId,
};

/// A (possibly half-open) constant interval. `None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interval {
    /// Greatest known constant lower bound.
    pub lo: Option<i64>,
    /// Least known constant upper bound.
    pub hi: Option<i64>,
}

impl Interval {
    /// The unbounded interval.
    pub fn top() -> Interval {
        Interval::default()
    }

    /// True when the interval contains no value.
    pub fn is_empty(self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).map(|(a, b)| a.min(b)),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.max(b)),
        }
    }
}

/// Recursion budget for chasing symbolic bounds in [`Env::verdict`].
const SYM_DEPTH: u32 = 3;

/// The abstract state at one program point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Env {
    intervals: HashMap<VarId, Interval>,
    /// `v <= form` facts.
    sym_upper: HashMap<VarId, LinForm>,
    /// `form <= v` facts.
    sym_lower: HashMap<VarId, LinForm>,
    /// Unreachable state (e.g. after a `TRAP` or a contradiction).
    pub bottom: bool,
}

impl Env {
    /// The unconstrained, reachable state.
    pub fn top() -> Env {
        Env::default()
    }

    /// The unreachable state.
    pub fn unreachable() -> Env {
        Env {
            bottom: true,
            ..Env::default()
        }
    }

    /// The interval currently known for `v`.
    pub fn interval(&self, v: VarId) -> Interval {
        self.intervals.get(&v).copied().unwrap_or_default()
    }

    fn set_interval(&mut self, v: VarId, i: Interval) {
        if i == Interval::top() {
            self.intervals.remove(&v);
        } else {
            self.intervals.insert(v, i);
        }
    }

    /// Forgets symbolic bounds that mention `v` (on either side).
    fn kill_sym_mentioning(&mut self, v: VarId) {
        self.sym_upper
            .retain(|var, form| *var != v && !form.uses_var(v));
        self.sym_lower
            .retain(|var, form| *var != v && !form.uses_var(v));
    }

    /// Join (control-flow merge). Bottom is the identity.
    pub fn join(&self, other: &Env) -> Env {
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        let mut intervals = HashMap::new();
        for (v, i) in &self.intervals {
            let j = i.join(other.interval(*v));
            if j != Interval::top() {
                intervals.insert(*v, j);
            }
        }
        let keep_equal = |a: &HashMap<VarId, LinForm>, b: &HashMap<VarId, LinForm>| {
            a.iter()
                .filter(|(v, f)| b.get(v) == Some(f))
                .map(|(v, f)| (*v, f.clone()))
                .collect::<HashMap<_, _>>()
        };
        Env {
            intervals,
            sym_upper: keep_equal(&self.sym_upper, &other.sym_upper),
            sym_lower: keep_equal(&self.sym_lower, &other.sym_lower),
            bottom: false,
        }
    }

    /// Widens `self` against the previous fixpoint state: any interval
    /// endpoint that changed goes to unbounded, and symbolic facts not
    /// present identically in both are dropped.
    fn widen_against(&mut self, prev: &Env) {
        if self.bottom || prev.bottom {
            return;
        }
        let vars: Vec<VarId> = self.intervals.keys().copied().collect();
        for v in vars {
            let cur = self.interval(v);
            let old = prev.interval(v);
            let w = Interval {
                lo: if cur.lo == old.lo { cur.lo } else { None },
                hi: if cur.hi == old.hi { cur.hi } else { None },
            };
            self.set_interval(v, w);
        }
        self.sym_upper
            .retain(|v, f| prev.sym_upper.get(v) == Some(f));
        self.sym_lower
            .retain(|v, f| prev.sym_lower.get(v) == Some(f));
    }

    /// Best constant upper bound on the value of `form`, chasing symbolic
    /// bounds up to `depth` substitutions.
    fn upper(&self, form: &LinForm, depth: u32) -> Option<i64> {
        let mut acc: i64 = form.constant_part();
        for (t, c) in form.terms() {
            let var_bound = match t.atoms() {
                [Atom::Var(v)] => {
                    if c > 0 {
                        self.var_upper(*v, depth)
                    } else {
                        self.var_lower(*v, depth)
                    }
                }
                _ => None, // opaque or degree > 1: unbounded
            };
            acc = acc.checked_add(var_bound?.checked_mul(c)?)?;
        }
        Some(acc)
    }

    /// Best constant lower bound on the value of `form`.
    fn lower(&self, form: &LinForm, depth: u32) -> Option<i64> {
        self.upper(&form.neg(), depth)?.checked_neg()
    }

    fn var_upper(&self, v: VarId, depth: u32) -> Option<i64> {
        let mut best = self.interval(v).hi;
        if depth > 0 {
            if let Some(f) = self.sym_upper.get(&v) {
                if let Some(b) = self.upper(f, depth - 1) {
                    best = Some(best.map_or(b, |x| x.min(b)));
                }
            }
        }
        best
    }

    fn var_lower(&self, v: VarId, depth: u32) -> Option<i64> {
        let mut best = self.interval(v).lo;
        if depth > 0 {
            if let Some(f) = self.sym_lower.get(&v) {
                if let Some(b) = self.lower(f, depth - 1) {
                    best = Some(best.map_or(b, |x| x.max(b)));
                }
            }
        }
        best
    }

    /// Decides a canonical check at this point: `Some(true)` when
    /// `form <= bound` always holds here (vacuously so at an unreachable
    /// point), `Some(false)` when it never holds, `None` when unknown.
    pub fn verdict(&self, check: &CheckExpr) -> Option<bool> {
        if self.bottom {
            return Some(true);
        }
        if let Some(hi) = self.upper(check.form(), SYM_DEPTH) {
            if hi <= check.bound() {
                return Some(true);
            }
        }
        if let Some(lo) = self.lower(check.form(), SYM_DEPTH) {
            if lo > check.bound() {
                return Some(false);
            }
        }
        None
    }

    /// Records the fact `form <= bound` (a passed check or a taken
    /// branch).
    pub fn assume_le(&mut self, form: &LinForm, bound: i64) {
        if self.bottom {
            return;
        }
        if form.is_constant() {
            if form.constant_part() > bound {
                self.bottom = true;
            }
            return;
        }
        // refine each degree-1 variable using bounds on the other terms
        let targets: Vec<(VarId, i64)> = form
            .terms()
            .filter_map(|(t, c)| match t.atoms() {
                [Atom::Var(v)] => Some((*v, c)),
                _ => None,
            })
            .collect();
        for (v, c) in targets {
            // c*v <= bound - rest, where rest = form - c*v
            let mut rest = form.clone();
            rest.add_term(Term::var(v), -c);
            if let Some(rest_lo) = self.lower(&rest, SYM_DEPTH) {
                if let Some(num) = bound.checked_sub(rest_lo) {
                    let mut iv = self.interval(v);
                    if c > 0 {
                        let b = num.div_euclid(c);
                        iv.hi = Some(iv.hi.map_or(b, |x| x.min(b)));
                    } else {
                        // c < 0:  v >= ceil(num / c)
                        let b = -num.div_euclid(-c);
                        iv.lo = Some(iv.lo.map_or(b, |x| x.max(b)));
                    }
                    if iv.is_empty() {
                        self.bottom = true;
                        return;
                    }
                    self.set_interval(v, iv);
                }
            }
            // symbolic refinement for unit coefficients
            if c == 1 {
                // v <= bound - rest
                let ub = LinForm::constant(bound).sub(&rest);
                if !ub.uses_var(v) {
                    self.sym_upper.insert(v, ub);
                }
            } else if c == -1 {
                // rest - bound <= v
                let lb = rest.sub(&LinForm::constant(bound));
                if !lb.uses_var(v) {
                    self.sym_lower.insert(v, lb);
                }
            }
        }
    }

    /// Transfer function for one statement.
    pub fn step(&mut self, s: &Stmt) {
        if self.bottom {
            return;
        }
        match s {
            Stmt::Assign { var, value } => {
                let form = LinForm::from_expr(value);
                // evaluate the rhs in the *pre* state
                let iv = Interval {
                    lo: self.lower(&form, SYM_DEPTH),
                    hi: self.upper(&form, SYM_DEPTH),
                };
                self.kill_sym_mentioning(*var);
                self.set_interval(*var, iv);
                // record the symbolic equality when the rhs is affine in
                // other plain variables only
                if !form.uses_var(*var)
                    && form
                        .terms()
                        .all(|(t, _)| matches!(t.atoms(), [Atom::Var(_)]))
                {
                    self.sym_upper.insert(*var, form.clone());
                    self.sym_lower.insert(*var, form);
                }
            }
            Stmt::Load { var, .. } => {
                self.kill_sym_mentioning(*var);
                self.set_interval(*var, Interval::top());
            }
            Stmt::Check(c) => {
                if c.is_unconditional() {
                    // execution continues only when the check passed
                    self.assume_le(c.cond.form(), c.cond.bound());
                }
            }
            Stmt::Trap { .. } => {
                self.bottom = true;
            }
            Stmt::Store { .. } | Stmt::Call { .. } | Stmt::Emit(_) => {}
        }
    }

    /// Refines by a branch condition known to have the given truth value.
    pub fn assume_cond(&mut self, cond: &Expr, truth: bool) {
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.assume_cond(inner, !truth),
            Expr::Binary(BinOp::And, a, b) if truth => {
                self.assume_cond(a, true);
                self.assume_cond(b, true);
            }
            Expr::Binary(BinOp::Or, a, b) if !truth => {
                self.assume_cond(a, false);
                self.assume_cond(b, false);
            }
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let d = LinForm::from_expr(l).sub(&LinForm::from_expr(r));
                let op = if truth { *op } else { negated(*op) };
                match op {
                    BinOp::Le => self.assume_le(&d, 0),
                    BinOp::Lt => self.assume_le(&d, -1),
                    BinOp::Ge => self.assume_le(&d.neg(), 0),
                    BinOp::Gt => self.assume_le(&d.neg(), -1),
                    BinOp::Eq => {
                        self.assume_le(&d, 0);
                        self.assume_le(&d.neg(), 0);
                    }
                    _ => {} // Ne carries no convex information
                }
            }
            _ => {}
        }
    }
}

/// The comparison that holds when `op` does not.
fn negated(op: BinOp) -> BinOp {
    match op {
        BinOp::Le => BinOp::Gt,
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Per-block entry states of one function. Trip-count facts are already
/// folded into each body entry's state.
#[derive(Debug)]
pub struct Vra {
    /// `entry[b.index()]` — the abstract state on entry to block `b`.
    pub entry: Vec<Env>,
}

impl Vra {
    /// The state just before statement `stmt` of block `b`.
    pub fn at(&self, f: &Function, b: nascent_ir::BlockId, stmt: usize) -> Env {
        let mut env = self.entry[b.index()].clone();
        for s in f.block(b).stmts.iter().take(stmt) {
            env.step(s);
        }
        env
    }
}

/// Number of fact changes at one block before widening kicks in.
const WIDEN_AFTER: u32 = 2;

/// Hard iteration backstop; on overrun every remaining fact degrades to
/// top, which is sound (verdicts just become "unknown" more often).
fn iteration_cap(f: &Function) -> u32 {
    (f.blocks.len() as u32 + 8) * 16
}

/// Runs the analysis to a fixpoint over `f`.
pub fn analyze(f: &Function) -> Vra {
    analyze_with(f, &mut nascent_analysis::context::PassContext::new())
}

/// [`analyze`] drawing the loop forest from a shared
/// [`nascent_analysis::context::PassContext`] instead of recomputing it.
pub fn analyze_with(f: &Function, ctx: &mut nascent_analysis::context::PassContext) -> Vra {
    // trip-count facts: the body-valid iv range of each loop
    let forest = ctx.loop_forest(f);
    let mut loop_facts: HashMap<usize, Vec<(LinForm, i64)>> = HashMap::new();
    for info in &forest.loops {
        let (Some(body), Some(iv)) = (info.body_entry, info.iv.as_ref()) else {
            continue;
        };
        let facts = loop_facts.entry(body.index()).or_default();
        if let Some(up) = &iv.upper {
            // iv - upper <= 0
            facts.push((LinForm::var(iv.var).sub(up), 0));
        }
        if let Some(lo) = &iv.lower {
            // lower - iv <= 0
            facts.push((lo.sub(&LinForm::var(iv.var)), 0));
        }
    }

    let n = f.blocks.len();
    let mut entry: Vec<Env> = vec![Env::unreachable(); n];
    entry[f.entry.index()] = Env::top();
    let mut changes: Vec<u32> = vec![0; n];
    let mut work: Vec<usize> = vec![f.entry.index()];
    let mut budget = iteration_cap(f);

    while let Some(bi) = work.pop() {
        if budget == 0 {
            // backstop: degrade every reachable block to top and stop
            for e in entry.iter_mut() {
                if !e.bottom {
                    *e = Env::top();
                }
            }
            break;
        }
        budget -= 1;
        let b = nascent_ir::BlockId(bi as u32);
        let mut env = entry[bi].clone();
        for s in &f.block(b).stmts {
            env.step(s);
        }
        let out: Vec<(usize, Env)> = match &f.block(b).term {
            Terminator::Jump(t) => vec![(t.index(), env)],
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let mut te = env.clone();
                te.assume_cond(cond, true);
                let mut ee = env;
                ee.assume_cond(cond, false);
                vec![(then_bb.index(), te), (else_bb.index(), ee)]
            }
            Terminator::Return => vec![],
        };
        for (succ, e) in out {
            let mut joined = entry[succ].join(&e);
            if changes[succ] >= WIDEN_AFTER {
                joined.widen_against(&entry[succ]);
            }
            // trip-count facts are stable per block: re-asserting them
            // after the join (and after widening) keeps them in the
            // stored entry state without disturbing termination
            if let Some(facts) = loop_facts.get(&succ) {
                for (form, bound) in facts {
                    joined.assume_le(form, *bound);
                }
            }
            if joined != entry[succ] {
                changes[succ] += 1;
                entry[succ] = joined;
                if !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }
    }
    Vra { entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nascent_frontend::compile;

    fn vra_of(src: &str) -> (Function, Vra) {
        let p = compile(src).unwrap();
        let f = p.main_function().clone();
        let v = analyze(&f);
        (f, v)
    }

    /// Verdicts at every unconditional check site, in program order.
    fn check_verdicts(f: &Function, vra: &Vra) -> Vec<Option<bool>> {
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (i, s) in f.block(b).stmts.iter().enumerate() {
                if let Stmt::Check(c) = s {
                    if c.is_unconditional() {
                        out.push(vra.at(f, b, i).verdict(&c.cond));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn constant_assignment_discharges_checks() {
        let (f, vra) = vra_of("program p\n integer a(1:10)\n integer i\n i = 3\n a(i) = 0\nend\n");
        assert_eq!(check_verdicts(&f, &vra), vec![Some(true), Some(true)]);
    }

    #[test]
    fn out_of_bounds_constant_is_proven_false() {
        let (f, vra) = vra_of("program p\n integer a(1:10)\n integer i\n i = 15\n a(i) = 0\nend\n");
        let verdicts = check_verdicts(&f, &vra);
        // the lower check (1 <= 15) holds, the upper (15 <= 10) never does
        assert!(verdicts.contains(&Some(false)));
        assert!(verdicts.contains(&Some(true)));
    }

    #[test]
    fn loop_iv_range_discharges_body_checks() {
        let (f, vra) = vra_of(
            "program p\n integer a(1:10)\n integer i\n do i = 1, 10\n a(i) = i\n enddo\nend\n",
        );
        let verdicts = check_verdicts(&f, &vra);
        assert_eq!(verdicts.len(), 2);
        assert!(
            verdicts.iter().all(|v| *v == Some(true)),
            "trip-count facts prove both body checks: {verdicts:?}"
        );
    }

    #[test]
    fn symbolic_loop_bound_stays_unknown() {
        let (f, vra) = vra_of(
            "program p
 integer a(1:10)
 integer i, n
 n = 20
 do i = 1, n
  a(i) = i
 enddo
end
",
        );
        let verdicts = check_verdicts(&f, &vra);
        // the lower check (1 <= i) is provable from the trip-count fact;
        // the upper (i <= 10) must NOT be claimed true, since n = 20 makes
        // late iterations trap
        assert!(verdicts.contains(&Some(true)));
        assert!(!verdicts.iter().all(|v| *v == Some(true)));
    }

    #[test]
    fn branch_refinement_narrows_both_edges() {
        let (f, vra) = vra_of(
            "program p
 integer a(1:10)
 integer i
 i = 0
 if (i < 5) then
  a(i + 1) = 1
 else
  a(i) = 2
 endif
end
",
        );
        let verdicts = check_verdicts(&f, &vra);
        // then-branch: i in [0,0], checks on i+1 hold; the else branch is
        // statically unreachable (0 < 5), so its checks hold vacuously
        assert!(verdicts.iter().all(|v| *v == Some(true)), "{verdicts:?}");
    }

    #[test]
    fn widening_terminates_on_accumulators() {
        let (f, vra) = vra_of(
            "program p
 integer a(1:100)
 integer i, n, s
 n = 50
 s = 0
 do i = 1, n
  s = s + i
  a(i) = s
 enddo
 print s
end
",
        );
        assert_eq!(vra.entry.len(), f.blocks.len());
    }

    #[test]
    fn verdict_agrees_with_constant_folding() {
        for (src, expected) in [
            ("program p\n integer a(1:10)\n a(5) = 0\nend\n", Some(true)),
            (
                "program p\n integer a(1:10)\n a(15) = 0\nend\n",
                Some(false),
            ),
        ] {
            let (f, vra) = vra_of(src);
            let mut seen = 0;
            for b in f.block_ids() {
                for (i, s) in f.block(b).stmts.iter().enumerate() {
                    if let Stmt::Check(c) = s {
                        if c.cond.constant_verdict() == expected {
                            let env = vra.at(&f, b, i);
                            assert_eq!(
                                env.verdict(&c.cond),
                                expected,
                                "VRA must agree with fold on {}",
                                c.cond
                            );
                            seen += 1;
                        }
                    }
                }
            }
            assert!(seen > 0, "no constant check found in {src:?}");
        }
    }
}
