//! End-to-end certification tests: the verifier must accept every
//! optimization run the pipeline produces on the benchmark suite, and
//! must reject runs whose justifications have been tampered with.

use nascent_frontend::compile;
use nascent_ir::Stmt;
use nascent_rangecheck::{
    optimize_program_logged, CheckKind, Discharge, Event, ImplicationMode, OptimizeOptions, Scheme,
};
use nascent_suite::test_suite;
use nascent_verify::certify_program;

/// One compile+optimize+certify round trip — the driver's glue, shared
/// with `nascentc verify` and the `nascentd` `/certify` endpoint.
fn certify_source(src: &str, opts: &OptimizeOptions) -> nascent_verify::Certificate {
    nascent_driver::certify_source(src, opts).expect("source compiles")
}

/// Every scheme × check kind × implication mode on the full ten-program
/// suite certifies with zero uncovered obligations.
#[test]
fn certifier_accepts_all_schemes_on_the_suite() {
    let suite = test_suite();
    for scheme in Scheme::EACH {
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            for implications in [
                ImplicationMode::All,
                ImplicationMode::CrossFamilyOnly,
                ImplicationMode::None,
            ] {
                let opts = OptimizeOptions::scheme(scheme)
                    .with_kind(kind)
                    .with_implications(implications);
                for bench in &suite {
                    let cert = certify_source(&bench.source, &opts);
                    assert!(
                        cert.ok(),
                        "{} under {}/{:?}/{:?} rejected:\n{}",
                        bench.name,
                        scheme.name(),
                        kind,
                        implications,
                        cert.diagnostics
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                    assert!(
                        cert.obligations > 0,
                        "{} produced no obligations",
                        bench.name
                    );
                }
            }
        }
    }
}

/// The MCM baseline also certifies: its articulation-block hoists are a
/// restriction of the preheader hoist the verifier replays.
#[test]
fn certifier_accepts_mcm_baseline_on_the_suite() {
    let opts = OptimizeOptions::scheme(Scheme::Mcm);
    for bench in &test_suite() {
        let cert = certify_source(&bench.source, &opts);
        assert!(
            cert.ok(),
            "{} under MCM rejected:\n{}",
            bench.name,
            cert.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Subscripts the range analysis cannot discharge: `n` and `k` are
/// degree-2 products (opaque to intervals), and the two-variable form
/// `n + k` defeats the symbolic-bound chase, so the only way to certify
/// the check elimination is through the justification log.
const OPAQUE_REDUNDANT: &str = "program p
 integer a(1:100)
 integer m, n, k
 m = 7
 n = m * m
 k = m * m
 a(n + k + 1) = 1
 a(n + k) = 0
end
";

/// Deleting a check without logging the decision is caught, and the
/// diagnostic names the lost check and its site.
#[test]
fn rejects_unjustified_check_deletion() {
    let opts = OptimizeOptions::scheme(Scheme::Ni).with_implications(ImplicationMode::None);
    let naive = compile(OPAQUE_REDUNDANT).unwrap();
    let mut opt = naive.clone();
    let (_, logs) = optimize_program_logged(&mut opt, &opts);
    assert!(certify_program(&naive, &opt, &logs, &opts).ok());

    // hand-delete the first unconditional check anywhere in the program
    let mut deleted = None;
    'outer: for f in &mut opt.functions {
        for b in &mut f.blocks {
            for (i, s) in b.stmts.iter().enumerate() {
                if let Stmt::Check(c) = s {
                    if c.is_unconditional() {
                        deleted = Some(c.cond.clone());
                        b.stmts.remove(i);
                        break 'outer;
                    }
                }
            }
        }
    }
    let deleted = deleted.expect("program has a check to delete");

    let cert = certify_program(&naive, &opt, &logs, &opts);
    assert!(!cert.ok(), "unjustified deletion must be rejected");
    let d = &cert.diagnostics[0];
    assert_eq!(
        d.check,
        deleted.to_string(),
        "diagnostic names the lost check"
    );
    assert!(
        d.reason.contains("not covered"),
        "diagnostic explains the failure: {d}"
    );
}

/// Tampering with an `Eliminated` event's witness — claiming the check
/// was implied by one that does not imply it — is caught.
#[test]
fn rejects_tampered_elimination_witness() {
    let opts = OptimizeOptions::scheme(Scheme::Ni).with_implications(ImplicationMode::All);
    let naive = compile(OPAQUE_REDUNDANT).unwrap();
    let mut opt = naive.clone();
    let (_, mut logs) = optimize_program_logged(&mut opt, &opts);
    assert!(certify_program(&naive, &opt, &logs, &opts).ok());

    // weaken one witness until it no longer implies the deleted check
    let mut tampered = None;
    'outer: for log in &mut logs {
        for e in &mut log.events {
            if let Event::Eliminated { check, because, .. } = e {
                *because = because.with_bound(because.bound().saturating_add(1000));
                tampered = Some(check.clone());
                break 'outer;
            }
        }
    }
    let tampered = tampered.expect("run eliminated at least one check");

    let cert = certify_program(&naive, &opt, &logs, &opts);
    assert!(!cert.ok(), "tampered witness must be rejected");
    let d = cert
        .diagnostics
        .iter()
        .find(|d| d.check == tampered.to_string())
        .expect("diagnostic names the check whose justification was tampered");
    assert!(
        d.reason.contains("does not imply") || d.reason.contains("not available"),
        "diagnostic explains the failed implication: {d}"
    );
}

/// Relocating an `Eliminated` event to the wrong block leaves the real
/// deletion site uncovered.
#[test]
fn rejects_relocated_elimination_event() {
    let opts = OptimizeOptions::scheme(Scheme::Ni).with_implications(ImplicationMode::All);
    let naive = compile(OPAQUE_REDUNDANT).unwrap();
    let mut opt = naive.clone();
    let (_, mut logs) = optimize_program_logged(&mut opt, &opts);

    let mut moved = false;
    'outer: for log in &mut logs {
        for e in &mut log.events {
            if let Event::Eliminated { block, .. } = e {
                *block = nascent_ir::BlockId(block.index() as u32 + 1_000);
                moved = true;
                break 'outer;
            }
        }
    }
    assert!(moved, "run eliminated at least one check");

    let cert = certify_program(&naive, &opt, &logs, &opts);
    assert!(
        !cert.ok(),
        "relocated event must leave the deletion uncovered"
    );
}

/// A provable range violation: the hoisted upper-bound check folds to an
/// unconditional trap in the preheader. The early trap certifies (the
/// folded check is itself a justified hoist) and the deleted in-loop
/// check is vacuously covered by the dominating trap.
#[test]
fn certifier_accepts_folded_false_hoist_trap() {
    let src = "program bad
 integer a(1:5)
 integer i
 do i = 1, 9
  a(i) = i
 enddo
end
";
    for scheme in Scheme::EACH {
        let opts = OptimizeOptions::scheme(scheme);
        let cert = certify_source(src, &opts);
        assert!(
            cert.ok(),
            "trapping program under {} rejected:\n{}",
            scheme.name(),
            cert.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// With the discharge tier on, every scheme × kind × implication mode on
/// the full suite still certifies — zero uncovered obligations and zero
/// rejected discharge events — and the tier actually fires somewhere.
#[test]
fn certifier_accepts_discharge_on_across_the_matrix() {
    let suite = test_suite();
    let mut total_events = 0;
    for scheme in Scheme::EACH {
        for kind in [CheckKind::Prx, CheckKind::Inx] {
            for implications in [
                ImplicationMode::All,
                ImplicationMode::CrossFamilyOnly,
                ImplicationMode::None,
            ] {
                let opts = OptimizeOptions::scheme(scheme)
                    .with_kind(kind)
                    .with_implications(implications)
                    .with_discharge(Discharge::On);
                for bench in &suite {
                    let cert = certify_source(&bench.source, &opts);
                    assert!(
                        cert.ok(),
                        "{} under {}/{:?}/{:?} + discharge rejected:\n{}",
                        bench.name,
                        scheme.name(),
                        kind,
                        implications,
                        cert.diagnostics
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                    assert_eq!(cert.discharge_rejected, 0, "{}", bench.name);
                    total_events += cert.discharge_events;
                }
            }
        }
    }
    assert!(
        total_events > 0,
        "discharge tier never fired across the whole matrix"
    );
}

/// Every check deleted by the discharge pass on this program is provable
/// from the loop trip count alone.
const FULLY_DISCHARGEABLE: &str = "program p
 integer a(1:10)
 integer i
 do i = 1, 10
  a(i) = i
 enddo
end
";

/// Tampering with a `Discharged` event's check expression — claiming a
/// different check was discharged — is rejected with a diagnostic naming
/// the forged check.
#[test]
fn rejects_tampered_discharge_event() {
    let opts = OptimizeOptions::scheme(Scheme::Ni).with_discharge(Discharge::On);
    let naive = compile(FULLY_DISCHARGEABLE).unwrap();
    let mut opt = naive.clone();
    let (stats, mut logs) = optimize_program_logged(&mut opt, &opts);
    assert!(stats.discharged > 0, "program must exercise the tier");
    assert!(certify_program(&naive, &opt, &logs, &opts).ok());

    let mut tampered = None;
    'outer: for log in &mut logs {
        for e in &mut log.events {
            if let Event::Discharged { check, .. } = e {
                *check = check.with_bound(check.bound().saturating_add(1_000));
                tampered = Some(check.clone());
                break 'outer;
            }
        }
    }
    let tampered = tampered.expect("run discharged at least one check");

    let cert = certify_program(&naive, &opt, &logs, &opts);
    assert!(!cert.ok(), "tampered discharge event must be rejected");
    assert!(cert.discharge_rejected > 0);
    let d = cert
        .diagnostics
        .iter()
        .find(|d| d.check == tampered.to_string())
        .expect("diagnostic names the forged check");
    assert!(
        d.reason.contains("not re-proved"),
        "diagnostic explains the failed re-proof: {d}"
    );
}

/// Relocating a `Discharged` event outside the reference function is
/// rejected by name instead of being silently ignored.
#[test]
fn rejects_relocated_discharge_event() {
    let opts = OptimizeOptions::scheme(Scheme::Ni).with_discharge(Discharge::On);
    let naive = compile(FULLY_DISCHARGEABLE).unwrap();
    let mut opt = naive.clone();
    let (_, mut logs) = optimize_program_logged(&mut opt, &opts);

    let mut moved = false;
    'outer: for log in &mut logs {
        for e in &mut log.events {
            if let Event::Discharged { block, .. } = e {
                *block = nascent_ir::BlockId(block.index() as u32 + 1_000);
                moved = true;
                break 'outer;
            }
        }
    }
    assert!(moved, "run discharged at least one check");

    let cert = certify_program(&naive, &opt, &logs, &opts);
    assert!(!cert.ok(), "relocated discharge event must be rejected");
    assert!(cert.discharge_rejected > 0);
    assert!(
        cert.diagnostics
            .iter()
            .any(|d| d.reason.contains("outside the reference function")),
        "diagnostic names the bogus block"
    );
}

/// A `Discharged` event in a run whose options had the tier off is
/// itself a forgery: the optimizer could not have made that decision.
#[test]
fn rejects_discharge_event_when_tier_off() {
    let opts_on = OptimizeOptions::scheme(Scheme::Ni).with_discharge(Discharge::On);
    let naive = compile(FULLY_DISCHARGEABLE).unwrap();
    let mut opt = naive.clone();
    let (_, logs) = optimize_program_logged(&mut opt, &opts_on);
    assert!(logs.iter().any(|l| !l.events.is_empty()));

    // certify the same artifacts under discharge-off options
    let opts_off = OptimizeOptions::scheme(Scheme::Ni);
    let cert = certify_program(&naive, &opt, &logs, &opts_off);
    assert!(!cert.ok(), "discharge events under an off tier are forged");
    assert!(
        cert.diagnostics
            .iter()
            .any(|d| d.reason.contains("discharge tier is off")),
        "diagnostic explains the mode mismatch"
    );
}

/// Equality-of-strength guard: the optimizer-side and trusted value-range
/// analyses are independent implementations kept in lockstep — on every
/// unconditional check of the suite they must return the same verdict,
/// otherwise a discharge could certify on one side and fail on the other.
#[test]
fn optimizer_and_trusted_vra_agree_on_the_suite() {
    for bench in &test_suite() {
        let prog = compile(&bench.source).unwrap();
        for f in &prog.functions {
            let opt_vra = nascent_analysis::vra::analyze(f);
            let ver_vra = nascent_verify::vra::analyze(f);
            for b in f.block_ids() {
                for (i, s) in f.block(b).stmts.iter().enumerate() {
                    if let Stmt::Check(c) = s {
                        if c.is_unconditional() {
                            assert_eq!(
                                opt_vra.at(f, b, i).verdict(&c.cond),
                                ver_vra.at(f, b, i).verdict(&c.cond),
                                "{}: verdicts diverge at b{}[{}] on `{}`",
                                bench.name,
                                b.index(),
                                i,
                                c.cond
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The value-range analysis statically discharges checks on a meaningful
/// fraction of the suite (constant bounds, loop trip counts).
#[test]
fn vra_discharges_checks_on_several_suite_programs() {
    let opts = OptimizeOptions::scheme(Scheme::Ni);
    let mut programs_with_discharge = 0;
    for bench in &test_suite() {
        let cert = certify_source(&bench.source, &opts);
        assert!(cert.ok());
        if cert.vra_discharged > 0 {
            programs_with_discharge += 1;
        }
    }
    assert!(
        programs_with_discharge >= 3,
        "VRA discharged checks on only {programs_with_discharge} of 10 programs"
    );
}
