//! `parameter` (named compile-time constant) declarations.

use nascent_frontend::compile;
use nascent_interp::{run, Limits, Value};

fn run_src(src: &str) -> nascent_interp::RunResult {
    let p = compile(src).unwrap();
    nascent_ir::validate::assert_valid(&p);
    run(&p, &Limits::default()).unwrap()
}

#[test]
fn parameters_fold_into_bounds_and_expressions() {
    let r = run_src(
        "program p
 parameter n = 10
 integer a(1:n)
 integer i, s
 s = 0
 do i = 1, n
  a(i) = i * 2
  s = s + a(i)
 enddo
 print s
 print n + 1
end
",
    );
    assert_eq!(r.output, vec![Value::Int(110), Value::Int(11)]);
}

#[test]
fn negative_parameters() {
    let r = run_src(
        "program p
 parameter lo = -3
 integer a(lo:3)
 integer i
 do i = lo, 3
  a(i) = i
 enddo
 print a(lo) + a(3)
end
",
    );
    assert_eq!(r.output, vec![Value::Int(0)]);
}

#[test]
fn parameter_checks_fold_at_compile_time() {
    use nascent_rangecheck::{optimize_program, OptimizeOptions, Scheme};
    let src = "program p
 parameter n = 10
 integer a(1:n)
 a(n) = 1
 print a(n)
end
";
    let mut p = compile(src).unwrap();
    let stats = optimize_program(&mut p, &OptimizeOptions::scheme(Scheme::Ni));
    // every check involves only literals after parameter substitution
    assert_eq!(p.check_count(), 0);
    assert!(stats.folded_true >= 2);
}

#[test]
fn assigning_a_parameter_is_an_error() {
    assert!(compile("program p\n parameter n = 5\n n = 6\nend\n").is_err());
    assert!(compile(
        "program p\n parameter n = 5\n integer i\n do n = 1, 3\n i = 1\n enddo\nend\n"
    )
    .is_err());
}

#[test]
fn parameter_name_clashes_are_errors() {
    assert!(compile("program p\n parameter n = 5\n integer n\nend\n").is_err());
    assert!(compile("program p\n parameter n = 5\n parameter n = 6\nend\n").is_err());
    assert!(compile("program p\n integer n\n parameter n = 6\nend\n").is_err());
}

#[test]
fn parameter_requires_literal_value() {
    assert!(compile("program p\n parameter n = 2 + 3\nend\n").is_err());
    assert!(compile("program p\n integer m\n parameter n = m\nend\n").is_err());
}
