//! Robustness: the frontend must never panic — any input either compiles
//! or produces a positioned `CompileError`.

use nascent_frontend::compile;
#[cfg(feature = "proptest-tests")]
use nascent_frontend::{lexer, parser};
#[cfg(feature = "proptest-tests")]
use proptest::prelude::*;

#[cfg(feature = "proptest-tests")]
proptest! {
    /// Arbitrary bytes never panic the lexer.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC*") {
        let _ = lexer::lex(&s);
    }

    /// Arbitrary token soup never panics the parser.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[a-z0-9 =+\\-*/(),:<>\n]{0,200}") {
        if let Ok(tokens) = lexer::lex(&s) {
            let _ = parser::parse(&tokens);
        }
    }

    /// Near-miss programs (a valid skeleton with random statement lines
    /// spliced in) never panic the full pipeline.
    #[test]
    fn compile_total_on_near_miss_programs(
        lines in prop::collection::vec("[a-z0-9 =+\\-*/(),:<>]{0,40}", 0..8)
    ) {
        let mut src = String::from("program p\n integer x, y\n integer a(1:10)\n");
        for l in &lines {
            src.push(' ');
            src.push_str(l);
            src.push('\n');
        }
        src.push_str("end\n");
        let _ = compile(&src);
    }
}

/// A grab-bag of malformed programs that must error, not panic.
#[test]
fn malformed_programs_error_cleanly() {
    let cases = [
        "",
        "program",
        "program p",
        "program p\nend", // missing newline after end is ok?
        "end\n",
        "program p\n integer\nend\n",
        "program p\n integer a()\nend\n",
        "program p\n x =\nend\n",
        "program p\n do\nend\n",
        "program p\n if then\nend\n",
        "program p\n call\nend\n",
        "subroutine s(\nend\n",
        "program p\n integer a(1:\nend\n",
        "program p\n print\nend\n",
        "program p\n integer x\n x = ((1)\nend\n",
        "program p\n integer x\n x = 1 +\nend\n",
        "program p\n while (1)\nend\n",
    ];
    for c in cases {
        match compile(c) {
            Ok(_) => {} // a few skeletons are actually valid; fine
            Err(e) => {
                assert!(e.line >= 1, "error without a line: {e} for {c:?}");
                assert!(!e.message.is_empty());
            }
        }
    }
}

/// Error positions point at the offending line.
#[test]
fn error_lines_are_accurate() {
    let src = "program p\n integer x\n x = 1\n y = 2\nend\n";
    let err = compile(src).unwrap_err();
    assert_eq!(err.line, 4, "undeclared `y` is on line 4: {err}");
}
